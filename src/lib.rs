//! # JETS — language and system support for many-parallel-task computing
//!
//! A from-scratch Rust reproduction of *JETS* (Wozniak, Wilde, Katz; ICPP
//! 2011 / J Grid Computing 11:341–360, 2013): middleware for running very
//! large batches of short, tightly-coupled MPI jobs inside pilot-job
//! allocations, plus the Swift dataflow-language integration the paper
//! demonstrates with replica-exchange molecular dynamics.
//!
//! This facade crate re-exports the workspace's components:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`obs`] | `jets-obs` | live metrics: counters, gauges, histograms, the `/metrics` responder |
//! | [`core`] | `jets-core` | the dispatcher: worker registry, job queue, MPI-group aggregation, statistics |
//! | [`pmi`] | `jets-pmi` | the PMI process-management substrate (`mpiexec launcher=manual`) |
//! | [`mpi`] | `jets-mpi` | the sockets message-passing library tasks link against |
//! | [`worker`] | `jets-worker` | the pilot-job worker agent |
//! | [`relay`] | `jets-relay` | the hierarchical relay tier: one dispatcher connection per worker block |
//! | [`sim`] | `cluster-sim` | simulated allocations, fault injection, workloads |
//! | [`swift`] | `swiftlite` | the mini-Swift dataflow language and the JETS bridge |
//! | [`namd`] | `namd-sim` | the parallel molecular-dynamics application and REM |
//!
//! ## Quickstart
//!
//! ```
//! use jets::core::{Dispatcher, DispatcherConfig, JobStatus};
//! use jets::core::spec::{CommandSpec, JobSpec};
//! use jets::sim::{science_registry, Allocation, AllocationConfig};
//! use jets::worker::Executor;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! // 1. Start the dispatcher.
//! let dispatcher = Dispatcher::start(DispatcherConfig::default()).unwrap();
//! // 2. Boot a (simulated) allocation of 4 pilot-job workers.
//! let allocation = Allocation::start(
//!     &dispatcher.addr().to_string(),
//!     AllocationConfig::new(4),
//!     Arc::new(Executor::new(science_registry())),
//! );
//! // 3. Submit an MPI job: 4 nodes × 1 rank, barrier–sleep–barrier.
//! let job = dispatcher.submit(JobSpec::mpi(
//!     4,
//!     CommandSpec::builtin("mpi-sleep", vec!["10".into()]),
//! ));
//! assert!(dispatcher.wait_idle(Duration::from_secs(30)));
//! assert_eq!(dispatcher.job_record(job).unwrap().status, JobStatus::Succeeded);
//! dispatcher.shutdown();
//! allocation.join_all();
//! ```

pub use cluster_sim as sim;
pub use jets_core as core;
pub use jets_mpi as mpi;
pub use jets_obs as obs;
pub use jets_pmi as pmi;
pub use jets_relay as relay;
pub use jets_worker as worker;
pub use namd_sim as namd;
pub use swiftlite as swift;
