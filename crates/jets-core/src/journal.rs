//! Crash-durable write-ahead journal for the dispatcher.
//!
//! A dispatcher restarted with the same journal path must reconstruct
//! every queued job, every in-flight gang, and the quarantine ledger —
//! so each state transition appends one fixed-layout record *before*
//! the transition becomes externally visible. The format is std-only:
//! no serde on this path, just hand-packed little-endian fields behind
//! a per-record CRC, in the spirit of the planned mmap flight-recorder
//! ring.
//!
//! ## On-disk format
//!
//! ```text
//! file   := magic records*
//! magic  := "JETSWAL1"                  (8 bytes)
//! record := len:u32 crc:u32 payload     (len = payload length,
//!                                        crc = CRC-32/IEEE of payload)
//! payload := tag:u8 fields…             (fixed layout per tag; strings
//!                                        and lists are u32-length-prefixed)
//! ```
//!
//! Replay scans the longest valid prefix: the first record whose frame
//! is short (a torn tail from a crash mid-append) or whose CRC
//! mismatches (corruption) ends the scan, and [`Journal::open`]
//! truncates the file back to that prefix before appending again. A
//! torn final record is therefore expected and silent; the byte counts
//! in [`ReplaySummary`] make the loss visible to `jets journal verify`.
//!
//! ## Durability knob
//!
//! [`FsyncPolicy`] trades append latency against the crash window:
//! `Always` fsyncs every record (a crash loses nothing acknowledged),
//! `Interval` leaves syncing to the dispatcher's monitor tick (a crash
//! can lose up to one tick of records — replay still converges, jobs in
//! the gap are simply re-run), `Never` leaves it to the OS page cache.
//!
//! What the journal does *not* store: worker identities or connections.
//! Worker ids restart from 1 in a new dispatcher; the restart
//! reconciliation window re-keys surviving gangs by **task id**, which
//! [`recover`] keeps stable by resuming the task counter past the
//! journal's maximum.

use crate::spec::{CommandSpec, JobId, JobSpec, StageFile, TaskId, WorkerId};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// File magic: identifies a JETS write-ahead log, version 1.
pub const MAGIC: &[u8; 8] = b"JETSWAL1";

/// Largest payload [`scan`] accepts; anything bigger is treated as a
/// corrupt length field (ends the valid prefix) rather than an
/// allocation request.
const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// When appended records reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record: an acknowledged transition survives any
    /// crash. The safe default; each append pays one disk flush.
    Always,
    /// No fsync on append; the owner calls [`Journal::sync`] on a timer
    /// (the dispatcher's monitor tick). A crash loses at most one
    /// interval of records — replay still converges, the jobs in the
    /// gap are simply re-run from their last durable state.
    Interval,
    /// Never fsync explicitly; the OS decides. Fastest, weakest.
    Never,
}

impl FsyncPolicy {
    /// Parse a CLI spelling (`always` | `interval` | `never`).
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "interval" => Some(FsyncPolicy::Interval),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

/// One journaled state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A job was accepted (`submit_batch`); carries the full spec so
    /// replay can requeue it without any other source of truth.
    Submitted {
        /// The job.
        job: JobId,
        /// Its full specification.
        spec: JobSpec,
    },
    /// The job entered the queue with `attempts` launches already spent.
    Enqueued {
        /// The job.
        job: JobId,
        /// Launch attempts consumed before this enqueue.
        attempts: u32,
    },
    /// An attempt shipped: the gang's task ids and the workers they went
    /// to. `attempt` counts this launch (first launch = 1).
    Assigned {
        /// The job.
        job: JobId,
        /// Attempt number including this launch.
        attempt: u32,
        /// `(worker, task)` pairs of the shipped gang.
        tasks: Vec<(WorkerId, TaskId)>,
    },
    /// One gang member reported (or was declared) finished.
    TaskEnded {
        /// The job.
        job: JobId,
        /// The task that ended.
        task: TaskId,
        /// Its exit code (may be a sentinel from `spec`'s registry).
        exit_code: i32,
    },
    /// The job reached a terminal state.
    Finished {
        /// The job.
        job: JobId,
        /// Whether every task exited zero.
        success: bool,
    },
    /// A failed attempt went back to the queue with retry budget left.
    Requeued {
        /// The job.
        job: JobId,
        /// Launch attempts consumed so far.
        attempts: u32,
    },
    /// A worker name earned a quarantine strike (died mid-gang).
    QuarantineStrike {
        /// The worker's registered name (stable across reconnects).
        name: String,
    },
    /// A benched worker's quarantine penalty expired.
    QuarantineRelease {
        /// The worker's registered name.
        name: String,
    },
    /// An attempt blew its wall-time budget (the cancel that follows is
    /// journaled through `TaskEnded`/`Requeued`/`Finished` as usual).
    DeadlineExceeded {
        /// The job.
        job: JobId,
    },
    /// A dispatcher re-opened this journal: everything before this mark
    /// happened in an earlier incarnation.
    Restarted,
}

const TAG_SUBMITTED: u8 = 1;
const TAG_ENQUEUED: u8 = 2;
const TAG_ASSIGNED: u8 = 3;
const TAG_TASK_ENDED: u8 = 4;
const TAG_FINISHED: u8 = 5;
const TAG_REQUEUED: u8 = 6;
const TAG_STRIKE: u8 = 7;
const TAG_RELEASE: u8 = 8;
const TAG_DEADLINE: u8 = 9;
const TAG_RESTARTED: u8 = 10;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected, poly 0xEDB88320) — table built at compile time.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32/IEEE of `data` (the checksum Ethernet, gzip, and PNG use).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Payload codec: hand-packed little-endian, length-prefixed strings/lists.
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_spec(buf: &mut Vec<u8>, spec: &JobSpec) {
    put_u32(buf, spec.nodes);
    put_u32(buf, spec.ppn);
    put_i32(buf, spec.priority);
    put_u32(buf, spec.max_retries);
    buf.push(spec.mpi as u8);
    match spec.deadline_ms {
        Some(ms) => {
            buf.push(1);
            put_u64(buf, ms);
        }
        None => buf.push(0),
    }
    let (variant, name, args, env) = match &spec.cmd {
        CommandSpec::Exec { program, args, env } => (0u8, program, args, env),
        CommandSpec::Builtin { app, args, env } => (1u8, app, args, env),
    };
    buf.push(variant);
    put_str(buf, name);
    put_u32(buf, args.len() as u32);
    for a in args {
        put_str(buf, a);
    }
    put_u32(buf, env.len() as u32);
    for (k, v) in env {
        put_str(buf, k);
        put_str(buf, v);
    }
    put_u32(buf, spec.stage.len() as u32);
    for f in &spec.stage {
        put_str(buf, &f.source);
        put_str(buf, &f.name);
    }
}

/// Bounds-checked reader over one CRC-validated payload. A truncation
/// *inside* a valid frame means the encoder and decoder disagree —
/// corruption the CRC happened to miss — so every getter errors instead
/// of panicking.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(bad("record payload truncated"));
        };
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i32(&mut self) -> io::Result<i32> {
        let b = self.bytes(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("record string not UTF-8"))
    }

    fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("record payload has trailing bytes"))
        }
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn get_spec(c: &mut Cursor<'_>) -> io::Result<JobSpec> {
    let nodes = c.u32()?;
    let ppn = c.u32()?;
    let priority = c.i32()?;
    let max_retries = c.u32()?;
    let mpi = c.u8()? != 0;
    let deadline_ms = match c.u8()? {
        0 => None,
        1 => Some(c.u64()?),
        _ => return Err(bad("bad deadline flag")),
    };
    let variant = c.u8()?;
    let name = c.str()?;
    let nargs = c.u32()? as usize;
    let mut args = Vec::with_capacity(nargs.min(1024));
    for _ in 0..nargs {
        args.push(c.str()?);
    }
    let nenv = c.u32()? as usize;
    let mut env = Vec::with_capacity(nenv.min(1024));
    for _ in 0..nenv {
        let k = c.str()?;
        let v = c.str()?;
        env.push((k, v));
    }
    let cmd = match variant {
        0 => CommandSpec::Exec {
            program: name,
            args,
            env,
        },
        1 => CommandSpec::Builtin {
            app: name,
            args,
            env,
        },
        _ => return Err(bad("bad command variant")),
    };
    let nstage = c.u32()? as usize;
    let mut stage = Vec::with_capacity(nstage.min(1024));
    for _ in 0..nstage {
        let source = c.str()?;
        let name = c.str()?;
        stage.push(StageFile { source, name });
    }
    Ok(JobSpec {
        nodes,
        ppn,
        cmd,
        priority,
        max_retries,
        mpi,
        stage,
        deadline_ms,
    })
}

/// Encode one record's payload (tag + fields) into `buf`.
fn encode_payload(rec: &Record, buf: &mut Vec<u8>) {
    match rec {
        Record::Submitted { job, spec } => {
            buf.push(TAG_SUBMITTED);
            put_u64(buf, *job);
            put_spec(buf, spec);
        }
        Record::Enqueued { job, attempts } => {
            buf.push(TAG_ENQUEUED);
            put_u64(buf, *job);
            put_u32(buf, *attempts);
        }
        Record::Assigned {
            job,
            attempt,
            tasks,
        } => {
            buf.push(TAG_ASSIGNED);
            put_u64(buf, *job);
            put_u32(buf, *attempt);
            put_u32(buf, tasks.len() as u32);
            for (w, t) in tasks {
                put_u64(buf, *w);
                put_u64(buf, *t);
            }
        }
        Record::TaskEnded {
            job,
            task,
            exit_code,
        } => {
            buf.push(TAG_TASK_ENDED);
            put_u64(buf, *job);
            put_u64(buf, *task);
            put_i32(buf, *exit_code);
        }
        Record::Finished { job, success } => {
            buf.push(TAG_FINISHED);
            put_u64(buf, *job);
            buf.push(*success as u8);
        }
        Record::Requeued { job, attempts } => {
            buf.push(TAG_REQUEUED);
            put_u64(buf, *job);
            put_u32(buf, *attempts);
        }
        Record::QuarantineStrike { name } => {
            buf.push(TAG_STRIKE);
            put_str(buf, name);
        }
        Record::QuarantineRelease { name } => {
            buf.push(TAG_RELEASE);
            put_str(buf, name);
        }
        Record::DeadlineExceeded { job } => {
            buf.push(TAG_DEADLINE);
            put_u64(buf, *job);
        }
        Record::Restarted => buf.push(TAG_RESTARTED),
    }
}

/// Decode one CRC-validated payload.
fn decode_payload(payload: &[u8]) -> io::Result<Record> {
    let mut c = Cursor::new(payload);
    let rec = match c.u8()? {
        TAG_SUBMITTED => Record::Submitted {
            job: c.u64()?,
            spec: get_spec(&mut c)?,
        },
        TAG_ENQUEUED => Record::Enqueued {
            job: c.u64()?,
            attempts: c.u32()?,
        },
        TAG_ASSIGNED => {
            let job = c.u64()?;
            let attempt = c.u32()?;
            let n = c.u32()? as usize;
            let mut tasks = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let w = c.u64()?;
                let t = c.u64()?;
                tasks.push((w, t));
            }
            Record::Assigned {
                job,
                attempt,
                tasks,
            }
        }
        TAG_TASK_ENDED => Record::TaskEnded {
            job: c.u64()?,
            task: c.u64()?,
            exit_code: c.i32()?,
        },
        TAG_FINISHED => Record::Finished {
            job: c.u64()?,
            success: c.u8()? != 0,
        },
        TAG_REQUEUED => Record::Requeued {
            job: c.u64()?,
            attempts: c.u32()?,
        },
        TAG_STRIKE => Record::QuarantineStrike { name: c.str()? },
        TAG_RELEASE => Record::QuarantineRelease { name: c.str()? },
        TAG_DEADLINE => Record::DeadlineExceeded { job: c.u64()? },
        TAG_RESTARTED => Record::Restarted,
        _ => return Err(bad("unknown record tag")),
    };
    c.done()?;
    Ok(rec)
}

// ---------------------------------------------------------------------------
// Scan / append.
// ---------------------------------------------------------------------------

/// What a full journal scan found.
#[derive(Debug)]
pub struct ReplaySummary {
    /// Every record of the valid prefix, in append order.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix (magic + intact records).
    pub valid_len: u64,
    /// Total file length; `total_len - valid_len` bytes were torn or
    /// corrupt and will be discarded on the next [`Journal::open`].
    pub total_len: u64,
}

impl ReplaySummary {
    /// Bytes past the valid prefix (0 for a cleanly closed journal).
    pub fn dropped_bytes(&self) -> u64 {
        self.total_len - self.valid_len
    }
}

/// Scan `path`, returning the longest valid prefix's records. Missing
/// file ⇒ empty summary; wrong magic ⇒ `InvalidData` (refusing to
/// append over a file that is not a journal); a torn or CRC-corrupt
/// tail ⇒ silently ends the prefix.
pub fn scan(path: &Path) -> io::Result<ReplaySummary> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(ReplaySummary {
                records: Vec::new(),
                valid_len: 0,
                total_len: 0,
            })
        }
        Err(e) => return Err(e),
    };
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;
    let total_len = data.len() as u64;
    if data.is_empty() {
        return Ok(ReplaySummary {
            records: Vec::new(),
            valid_len: 0,
            total_len,
        });
    }
    if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
        return Err(bad("not a JETS journal (bad magic)"));
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    loop {
        // Frame header: len + crc. A short header is a torn tail.
        if pos + 8 > data.len() {
            break;
        }
        let len = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
        let crc = u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
        if len == 0 || len > MAX_RECORD_BYTES {
            break; // corrupt length field
        }
        let start = pos + 8;
        let Some(end) = start.checked_add(len as usize).filter(|&e| e <= data.len()) else {
            break; // torn payload
        };
        let payload = &data[start..end];
        if crc32(payload) != crc {
            break; // corrupt record: reject it and everything after
        }
        let Ok(rec) = decode_payload(payload) else {
            break; // CRC-valid but undecodable: treat as corruption
        };
        records.push(rec);
        pos = end;
    }
    Ok(ReplaySummary {
        records,
        valid_len: pos as u64,
        total_len,
    })
}

/// The file handle and its reusable encode buffer, together under one
/// lock so concurrent appenders cannot interleave frames.
struct Writer {
    file: File,
    buf: Vec<u8>,
}

/// An open, append-mode journal.
pub struct Journal {
    writer: Mutex<Writer>,
    policy: FsyncPolicy,
    path: PathBuf,
}

impl Journal {
    /// Open (or create) the journal at `path` for appending, first
    /// truncating any torn or corrupt tail, and return the surviving
    /// records for replay.
    pub fn open(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
    ) -> io::Result<(Journal, Vec<Record>)> {
        let path = path.into();
        let summary = scan(&path)?;
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)?;
        if summary.total_len == 0 {
            file.write_all(MAGIC)?;
            file.sync_data()?;
        } else if summary.valid_len < summary.total_len {
            file.set_len(summary.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Journal {
                writer: Mutex::new(Writer {
                    file,
                    buf: Vec::with_capacity(256),
                }),
                policy,
                path,
            },
            summary.records,
        ))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record (one frame, one write, fsync per policy).
    pub fn append(&self, rec: &Record) -> io::Result<()> {
        self.append_all(std::slice::from_ref(rec))
    }

    /// Append a batch of records as consecutive frames under one lock
    /// acquisition, one write, and (under `Always`) one fsync — the
    /// submit-batch fast path.
    pub fn append_all(&self, recs: &[Record]) -> io::Result<()> {
        if recs.is_empty() {
            return Ok(());
        }
        let mut w = match self.writer.lock() {
            Ok(w) => w,
            // A poisoned lock means an appender panicked mid-frame; the
            // buffer state is unknown, so refuse further appends rather
            // than risk writing garbage.
            Err(_) => return Err(io::Error::other("journal writer poisoned")),
        };
        let Writer { file, buf } = &mut *w;
        buf.clear();
        let mut payload = Vec::with_capacity(128);
        for rec in recs {
            payload.clear();
            encode_payload(rec, &mut payload);
            put_u32(buf, payload.len() as u32);
            put_u32(buf, crc32(&payload));
            buf.extend_from_slice(&payload);
        }
        // jets-lint: allow(lock-across-blocking) serializing appends through this write is the writer lock's entire job
        file.write_all(buf)?;
        if self.policy == FsyncPolicy::Always {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Flush to disk now; the `Interval` policy's timer calls this.
    pub fn sync(&self) -> io::Result<()> {
        match self.writer.lock() {
            Ok(w) => w.file.sync_data(),
            Err(_) => Err(io::Error::other("journal writer poisoned")),
        }
    }
}

// ---------------------------------------------------------------------------
// Replay fold: records → the state a restarted dispatcher rebuilds.
// ---------------------------------------------------------------------------

/// Where a recovered non-terminal job stood at the crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveredPhase {
    /// Waiting in the queue (or accepted but never enqueued — same
    /// thing after a restart).
    Queued,
    /// An attempt was in flight: these `(worker, task)` pairs had not
    /// reported, and `ended` exit codes had. Worker ids are the *old*
    /// incarnation's and are only useful as placeholders; task ids are
    /// the stable key reconciliation matches on.
    Active {
        /// Gang members still pending at the crash.
        tasks: Vec<(WorkerId, TaskId)>,
        /// Exit codes already reported by this attempt.
        ended: Vec<i32>,
    },
}

/// One job the journal proves was not terminal at the crash.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// The job.
    pub id: JobId,
    /// Its specification, from the `Submitted` record.
    pub spec: JobSpec,
    /// Launch attempts consumed (including any in-flight one).
    pub attempts: u32,
    /// Queued or mid-attempt.
    pub phase: RecoveredPhase,
}

/// Everything [`recover`] folds out of a journal.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Non-terminal jobs in submission order.
    pub jobs: Vec<RecoveredJob>,
    /// Net quarantine strikes per worker name. Strike decay is wall-
    /// clock-based and does not survive a restart: replayed strikes are
    /// seeded as if freshly earned.
    pub strikes: Vec<(String, u32)>,
    /// Jobs that reached a terminal state before the crash (history the
    /// restarted dispatcher does not resurrect).
    pub finished: u64,
    /// First job id the restarted dispatcher may allocate.
    pub next_job: u64,
    /// First task id the restarted dispatcher may allocate. Strictly
    /// past every journaled task id, so a surviving worker's in-flight
    /// task id can never collide with a new assignment.
    pub next_task: u64,
}

/// An in-flight attempt: the tasks still assigned, and the exit codes
/// collected so far.
type ActiveAttempt = (Vec<(WorkerId, TaskId)>, Vec<i32>);

#[derive(Default)]
struct JobFold {
    spec: Option<JobSpec>,
    attempts: u32,
    active: Option<ActiveAttempt>,
    done: bool,
    order: usize,
}

/// Fold a scanned record sequence into the restart state.
pub fn recover(records: &[Record]) -> Recovered {
    let mut jobs: HashMap<JobId, JobFold> = HashMap::new();
    let mut strikes: HashMap<String, u32> = HashMap::new();
    let mut next_job = 1u64;
    let mut next_task = 1u64;
    let mut order = 0usize;
    for rec in records {
        match rec {
            Record::Submitted { job, spec } => {
                next_job = next_job.max(job + 1);
                let entry = jobs.entry(*job).or_insert_with(|| {
                    order += 1;
                    JobFold {
                        order,
                        ..JobFold::default()
                    }
                });
                entry.spec = Some(spec.clone());
            }
            Record::Enqueued { job, attempts } | Record::Requeued { job, attempts } => {
                next_job = next_job.max(job + 1);
                if let Some(entry) = jobs.get_mut(job) {
                    entry.attempts = *attempts;
                    entry.active = None;
                    entry.done = false;
                }
            }
            Record::Assigned {
                job,
                attempt,
                tasks,
            } => {
                for &(_, t) in tasks {
                    next_task = next_task.max(t + 1);
                }
                if let Some(entry) = jobs.get_mut(job) {
                    entry.attempts = *attempt;
                    entry.active = Some((tasks.clone(), Vec::new()));
                }
            }
            Record::TaskEnded {
                job,
                task,
                exit_code,
            } => {
                next_task = next_task.max(task + 1);
                if let Some((pending, ended)) = jobs.get_mut(job).and_then(|e| e.active.as_mut()) {
                    if let Some(pos) = pending.iter().position(|&(_, t)| t == *task) {
                        pending.swap_remove(pos);
                        ended.push(*exit_code);
                    }
                }
            }
            Record::Finished { job, .. } => {
                if let Some(entry) = jobs.get_mut(job) {
                    entry.done = true;
                    entry.active = None;
                }
            }
            Record::QuarantineStrike { name } => {
                *strikes.entry(name.clone()).or_insert(0) += 1;
            }
            // Release ends the bench, not the strike count (decay does
            // that, on a wall clock that did not survive the crash);
            // recorded for the audit trail only.
            Record::QuarantineRelease { .. } => {}
            // Informational: the cancel it triggered is journaled via
            // TaskEnded / Requeued / Finished.
            Record::DeadlineExceeded { .. } => {}
            Record::Restarted => {}
        }
    }
    let finished = jobs.values().filter(|e| e.done).count() as u64;
    let mut live: Vec<(usize, RecoveredJob)> = jobs
        .into_iter()
        .filter(|(_, e)| !e.done && e.spec.is_some())
        .filter_map(|(id, e)| {
            let spec = e.spec?;
            let phase = match e.active {
                Some((tasks, ended)) => RecoveredPhase::Active { tasks, ended },
                None => RecoveredPhase::Queued,
            };
            Some((
                e.order,
                RecoveredJob {
                    id,
                    spec,
                    attempts: e.attempts,
                    phase,
                },
            ))
        })
        .collect();
    live.sort_by_key(|(order, _)| *order);
    let mut strikes: Vec<(String, u32)> = strikes.into_iter().collect();
    strikes.sort();
    Recovered {
        jobs: live.into_iter().map(|(_, j)| j).collect(),
        strikes,
        finished,
        next_job,
        next_task,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "jets-journal-{name}-{}-{n}.wal",
            std::process::id()
        ))
    }

    fn spec() -> JobSpec {
        JobSpec::mpi_ppn(2, 3, CommandSpec::exec("/bin/sim", vec!["--fast".into()]))
            .with_retries(4)
            .with_priority(7)
            .with_stage(vec![StageFile::new("/data/params.dat")])
            .with_deadline(std::time::Duration::from_millis(1500))
    }

    fn all_kinds() -> Vec<Record> {
        vec![
            Record::Submitted {
                job: 1,
                spec: spec(),
            },
            Record::Enqueued {
                job: 1,
                attempts: 0,
            },
            Record::Assigned {
                job: 1,
                attempt: 1,
                tasks: vec![(10, 100), (11, 101)],
            },
            Record::TaskEnded {
                job: 1,
                task: 100,
                exit_code: crate::spec::EXIT_WORKER_LOST,
            },
            Record::Requeued {
                job: 1,
                attempts: 1,
            },
            Record::QuarantineStrike { name: "w3".into() },
            Record::QuarantineRelease { name: "w3".into() },
            Record::DeadlineExceeded { job: 1 },
            Record::Finished {
                job: 1,
                success: false,
            },
            Record::Restarted,
        ]
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_record_kind_round_trips() {
        let path = tmp("roundtrip");
        let originals = all_kinds();
        {
            let (j, prior) = Journal::open(&path, FsyncPolicy::Always).unwrap();
            assert!(prior.is_empty());
            j.append_all(&originals).unwrap();
        }
        let (_, replayed) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replayed, originals);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_record_is_truncated_and_survivors_kept() {
        let path = tmp("torn");
        let originals = all_kinds();
        {
            let (j, _) = Journal::open(&path, FsyncPolicy::Never).unwrap();
            j.append_all(&originals).unwrap();
        }
        // Simulate a crash mid-append: a frame header promising more
        // payload than the file holds.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&200u32.to_le_bytes()).unwrap();
            f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
            f.write_all(b"only a few bytes").unwrap();
        }
        let summary = scan(&path).unwrap();
        assert_eq!(summary.records, originals);
        assert_eq!(summary.valid_len, clean_len);
        assert!(summary.dropped_bytes() > 0);
        // Reopen truncates the tail and appends continue cleanly.
        {
            let (j, replayed) = Journal::open(&path, FsyncPolicy::Always).unwrap();
            assert_eq!(replayed, originals);
            j.append(&Record::Restarted).unwrap();
        }
        let (_, after) = Journal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(after.len(), originals.len() + 1);
        assert_eq!(after.last(), Some(&Record::Restarted));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc_corrupt_record_rejected_with_everything_after() {
        let path = tmp("corrupt");
        {
            let (j, _) = Journal::open(&path, FsyncPolicy::Never).unwrap();
            for i in 0..5 {
                j.append(&Record::Enqueued {
                    job: i,
                    attempts: 0,
                })
                .unwrap();
            }
        }
        // Flip one payload byte in the third record: it and both
        // successors must be rejected (a valid-prefix scan cannot trust
        // frame boundaries after a corrupt frame).
        let mut data = std::fs::read(&path).unwrap();
        let frame = 8 + 13; // header + Enqueued payload (tag + u64 + u32)
        let third_payload = MAGIC.len() + 2 * frame + 8;
        data[third_payload + 3] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let summary = scan(&path).unwrap();
        assert_eq!(
            summary.records,
            vec![
                Record::Enqueued {
                    job: 0,
                    attempts: 0
                },
                Record::Enqueued {
                    job: 1,
                    attempts: 0
                },
            ]
        );
        assert_eq!(summary.dropped_bytes(), 3 * frame as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_journal_file_is_refused() {
        let path = tmp("notwal");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        let err = scan(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(Journal::open(&path, FsyncPolicy::Always).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_scans_empty_and_open_creates() {
        let path = tmp("fresh");
        let summary = scan(&path).unwrap();
        assert!(summary.records.is_empty());
        assert_eq!(summary.total_len, 0);
        let (j, prior) = Journal::open(&path, FsyncPolicy::Interval).unwrap();
        assert!(prior.is_empty());
        j.append(&Record::Restarted).unwrap();
        j.sync().unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() > MAGIC.len() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_folds_the_lifecycle() {
        let s = spec();
        let records = vec![
            // Job 1: finished before the crash — not resurrected.
            Record::Submitted {
                job: 1,
                spec: s.clone(),
            },
            Record::Enqueued {
                job: 1,
                attempts: 0,
            },
            Record::Assigned {
                job: 1,
                attempt: 1,
                tasks: vec![(4, 40)],
            },
            Record::TaskEnded {
                job: 1,
                task: 40,
                exit_code: 0,
            },
            Record::Finished {
                job: 1,
                success: true,
            },
            // Job 2: queued at the crash.
            Record::Submitted {
                job: 2,
                spec: s.clone(),
            },
            Record::Enqueued {
                job: 2,
                attempts: 0,
            },
            // Job 3: second attempt in flight, one member already ended.
            Record::Submitted {
                job: 3,
                spec: s.clone(),
            },
            Record::Enqueued {
                job: 3,
                attempts: 0,
            },
            Record::Assigned {
                job: 3,
                attempt: 1,
                tasks: vec![(5, 50)],
            },
            Record::TaskEnded {
                job: 3,
                task: 50,
                exit_code: crate::spec::EXIT_WORKER_LOST,
            },
            Record::Requeued {
                job: 3,
                attempts: 1,
            },
            Record::Assigned {
                job: 3,
                attempt: 2,
                tasks: vec![(6, 60), (7, 61)],
            },
            Record::TaskEnded {
                job: 3,
                task: 60,
                exit_code: 0,
            },
            // Strikes: two for w9, one struck-and-released for w5.
            Record::QuarantineStrike { name: "w9".into() },
            Record::QuarantineStrike { name: "w9".into() },
            Record::QuarantineStrike { name: "w5".into() },
            Record::QuarantineRelease { name: "w5".into() },
        ];
        let r = recover(&records);
        assert_eq!(r.finished, 1);
        assert_eq!(r.next_job, 4);
        assert_eq!(r.next_task, 62);
        assert_eq!(r.jobs.len(), 2);
        assert_eq!(r.jobs[0].id, 2);
        assert_eq!(r.jobs[0].attempts, 0);
        assert_eq!(r.jobs[0].phase, RecoveredPhase::Queued);
        assert_eq!(r.jobs[1].id, 3);
        assert_eq!(r.jobs[1].attempts, 2);
        assert_eq!(
            r.jobs[1].phase,
            RecoveredPhase::Active {
                tasks: vec![(7, 61)],
                ended: vec![0],
            }
        );
        // Release does not erase the strike ledger; decay (not
        // journaled) is the only eraser, so both names reappear.
        assert_eq!(r.strikes, vec![("w5".into(), 1), ("w9".into(), 2)]);
        std::mem::drop(records);
    }

    #[test]
    fn fsync_policy_parses_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("interval"), Some(FsyncPolicy::Interval));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
