//! Dispatcher ⇄ worker wire protocol.
//!
//! One TCP connection per worker, carrying newline-delimited JSON
//! messages. The worker speaks first (`Register`), then loops
//! `Request → Assign → Done`. Fault detection rests on this connection:
//! an EOF or read error is the dispatcher's signal that the pilot job
//! died, exactly as in the paper's faulty-allocation experiment (Fig. 10).

use crate::spec::{CommandSpec, JobId, StageFile, TaskId};
use serde::{de::DeserializeOwned, Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// Messages a worker sends to the dispatcher.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerMsg {
    /// First message on the connection: announce this pilot job.
    Register {
        /// Human-readable worker name (diagnostics only).
        name: String,
        /// Cores the node offers (capacity metadata).
        cores: u32,
        /// Network location label (cluster/rack); used by the
        /// location-aware grouping policy.
        location: String,
    },
    /// Ready for work; the dispatcher replies when it has an assignment.
    Request,
    /// A previously assigned task finished.
    Done {
        /// Which task.
        task_id: TaskId,
        /// Process (or builtin) exit code; 0 is success.
        exit_code: i32,
        /// Wall time of the execution in milliseconds.
        wall_ms: u64,
        /// Captured standard output (tail), routed app → proxy →
        /// dispatcher exactly as the paper's Section 6.1.6 describes.
        #[serde(default)]
        output: Option<String>,
    },
    /// Liveness signal while busy or idle.
    Heartbeat,
    /// Orderly sign-off (allocation expiring).
    Goodbye,
}

/// Messages the dispatcher sends to a worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DispatcherMsg {
    /// Registration accepted; `worker_id` names this worker from now on.
    Registered {
        /// Dispatcher-assigned identifier.
        worker_id: u64,
    },
    /// Run this task (reply to `Request`).
    Assign(TaskAssignment),
    /// No more work will come; the worker should exit.
    Shutdown,
}

/// One unit of work shipped to one worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskAssignment {
    /// Unique task identifier.
    pub task_id: TaskId,
    /// Job this task belongs to.
    pub job_id: JobId,
    /// Sequential command or MPI proxy description.
    pub kind: TaskKind,
    /// Files the worker must stage to node-local storage first.
    #[serde(default)]
    pub stage: Vec<StageFile>,
}

/// The two shapes of work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskKind {
    /// A single-process job (no PMI involved).
    Sequential {
        /// What to run.
        cmd: CommandSpec,
    },
    /// One MPI proxy: start `ranks.len()` ranks of an MPI job of `size`
    /// total ranks, each configured (via `PMI_*` environment) to connect
    /// back to the job's PMI server at `pmi_addr`.
    MpiProxy {
        /// What each rank runs.
        cmd: CommandSpec,
        /// The ranks this node hosts.
        ranks: Vec<u32>,
        /// Total ranks in the job.
        size: u32,
        /// `host:port` of the job's PMI server.
        pmi_addr: String,
        /// PMI job identifier.
        pmi_jobid: String,
    },
}

impl TaskAssignment {
    /// The command this assignment runs.
    pub fn cmd(&self) -> &CommandSpec {
        match &self.kind {
            TaskKind::Sequential { cmd } => cmd,
            TaskKind::MpiProxy { cmd, .. } => cmd,
        }
    }
}

/// Write one message as a JSON line.
pub fn write_msg<M: Serialize>(writer: &mut impl Write, msg: &M) -> io::Result<()> {
    let mut line = serde_json::to_string(msg).map_err(io::Error::other)?;
    line.push('\n');
    writer.write_all(line.as_bytes())
}

/// Read one JSON-line message; `Ok(None)` on clean EOF.
pub fn read_msg<M: DeserializeOwned>(reader: &mut impl BufRead) -> io::Result<Option<M>> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    serde_json::from_str(&line)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn round_trip<M: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(msg: M) {
        let mut buf = Vec::new();
        write_msg(&mut buf, &msg).unwrap();
        let mut reader = BufReader::new(&buf[..]);
        let back: M = read_msg(&mut reader).unwrap().unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn worker_messages_round_trip() {
        round_trip(WorkerMsg::Register {
            name: "node-007".into(),
            cores: 4,
            location: "rack-3".into(),
        });
        round_trip(WorkerMsg::Request);
        round_trip(WorkerMsg::Done {
            task_id: 42,
            exit_code: -1,
            wall_ms: 10_500,
            output: Some("ETITLE: TS   BOND\n".to_string()),
        });
        round_trip(WorkerMsg::Heartbeat);
        round_trip(WorkerMsg::Goodbye);
    }

    #[test]
    fn dispatcher_messages_round_trip() {
        round_trip(DispatcherMsg::Registered { worker_id: 9 });
        round_trip(DispatcherMsg::Shutdown);
        round_trip(DispatcherMsg::Assign(TaskAssignment {
            task_id: 1,
            job_id: 2,
            kind: TaskKind::MpiProxy {
                cmd: CommandSpec::builtin("sleep", vec!["10".into()]),
                ranks: vec![4, 5],
                size: 8,
                pmi_addr: "127.0.0.1:4444".into(),
                pmi_jobid: "job-2".into(),
            },
            stage: vec![StageFile::new("/gpfs/apps/namd2")],
        }));
    }

    #[test]
    fn sequential_assignment_cmd_accessor() {
        let a = TaskAssignment {
            task_id: 0,
            job_id: 0,
            kind: TaskKind::Sequential {
                cmd: CommandSpec::exec("echo", vec!["hi".into()]),
            },
            stage: Vec::new(),
        };
        assert_eq!(a.cmd().name(), "echo");
    }

    #[test]
    fn eof_reads_as_none() {
        let empty: &[u8] = &[];
        let mut reader = BufReader::new(empty);
        let got: Option<WorkerMsg> = read_msg(&mut reader).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        let mut reader = BufReader::new(&b"not json\n"[..]);
        let got: io::Result<Option<WorkerMsg>> = read_msg(&mut reader);
        assert!(got.is_err());
    }

    #[test]
    fn multiple_messages_stream() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &WorkerMsg::Request).unwrap();
        write_msg(&mut buf, &WorkerMsg::Heartbeat).unwrap();
        let mut reader = BufReader::new(&buf[..]);
        assert_eq!(
            read_msg::<WorkerMsg>(&mut reader).unwrap().unwrap(),
            WorkerMsg::Request
        );
        assert_eq!(
            read_msg::<WorkerMsg>(&mut reader).unwrap().unwrap(),
            WorkerMsg::Heartbeat
        );
        assert!(read_msg::<WorkerMsg>(&mut reader).unwrap().is_none());
    }
}
