//! Dispatcher ⇄ worker wire protocol.
//!
//! One TCP connection per worker, carrying newline-delimited JSON
//! messages. The worker speaks first (`Register`), then loops
//! `Request → Assign → Done`. Fault detection rests on this connection:
//! an EOF or read error is the dispatcher's signal that the pilot job
//! died, exactly as in the paper's faulty-allocation experiment (Fig. 10).
//!
//! ## Buffer-reuse contract
//!
//! The hot paths on both sides of the connection reuse one encode buffer
//! (`Vec<u8>`) per writer and one line buffer (`String`) per reader, so a
//! steady stream of `Request`/`Assign`/`Done`/`Heartbeat` messages makes
//! **zero** allocations once the buffers have grown to the workload's
//! high-water mark. [`write_msg_buf`] / [`read_msg_buf`] expose the
//! buffers explicitly; [`MsgWriter`] / [`MsgReader`] own them for callers
//! that keep a connection around. The legacy [`write_msg`] / [`read_msg`]
//! entry points allocate fresh buffers per call and remain for one-shot
//! use and tests; both paths produce identical bytes on the wire.
//!
//! Every frame (one JSON line, newline included) is capped at
//! [`MAX_FRAME_BYTES`]: a corrupt or hostile peer cannot OOM the process
//! with a single unbounded line — the read fails with
//! [`io::ErrorKind::InvalidData`] and the connection is torn down.

use crate::spec::{CommandSpec, JobId, StageFile, TaskId};
use serde::{de::DeserializeOwned, Deserialize, Serialize};
use std::io::{self, BufRead, Read, Write};

/// Messages a worker sends to the dispatcher.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerMsg {
    /// First message on the connection: announce this pilot job.
    Register {
        /// Human-readable worker name (diagnostics only).
        name: String,
        /// Cores the node offers (capacity metadata).
        cores: u32,
        /// Network location label (cluster/rack); used by the
        /// location-aware grouping policy.
        location: String,
    },
    /// Ready for work; the dispatcher replies when it has an assignment.
    Request,
    /// A previously assigned task finished.
    Done {
        /// Which task.
        task_id: TaskId,
        /// Process (or builtin) exit code; 0 is success.
        exit_code: i32,
        /// Wall time of the execution in milliseconds.
        wall_ms: u64,
        /// Captured standard output (tail), routed app → proxy →
        /// dispatcher exactly as the paper's Section 6.1.6 describes.
        #[serde(default)]
        output: Option<String>,
        /// The job's trace id, echoed from the assignment so span
        /// events on both ends of the wire join one timeline (0 from
        /// peers predating tracing).
        #[serde(default)]
        trace: u64,
    },
    /// Liveness signal while busy or idle.
    Heartbeat,
    /// Orderly sign-off (allocation expiring).
    Goodbye,
    /// First message on a **relay** connection: this peer is not a worker
    /// but a relay daemon fronting a block of workers (`jets-relay`). The
    /// dispatcher replies with [`DispatcherMsg::Registered`] carrying the
    /// relay's own id, then expects only relay-scoped frames
    /// (`RelayRegister` / `RelayRequest` / `RelayDone` /
    /// `BatchedHeartbeat` / `RelayWorkerGone`) on this connection.
    RelayHello {
        /// Human-readable relay name (diagnostics only).
        name: String,
        /// Location label the relay fronts (cluster/rack).
        location: String,
    },
    /// A worker registered at the relay; the relay forwards the
    /// registration upstream. `local` is the relay's own handle for the
    /// worker — the dispatcher echoes it back in
    /// [`DispatcherMsg::RelayRegistered`] together with the global
    /// [`WorkerId`](crate::spec) it assigned, so the relay can fill its
    /// routing table.
    RelayRegister {
        /// Relay-local worker handle (unique per relay lifetime).
        local: u64,
        /// Worker name, as in [`WorkerMsg::Register`].
        name: String,
        /// Cores the node offers.
        cores: u32,
        /// Network location label.
        location: String,
    },
    /// Routed envelope for a relayed worker's `Request`.
    RelayRequest {
        /// Dispatcher-assigned id of the requesting worker.
        worker: u64,
    },
    /// Routed envelope for a relayed worker's `Done`.
    RelayDone {
        /// Dispatcher-assigned id of the reporting worker.
        worker: u64,
        /// Which task.
        task_id: TaskId,
        /// Process (or builtin) exit code; 0 is success.
        exit_code: i32,
        /// Wall time of the execution in milliseconds.
        wall_ms: u64,
        /// Captured standard output (tail).
        #[serde(default)]
        output: Option<String>,
        /// The job's trace id, echoed from the assignment (0 from
        /// peers predating tracing).
        #[serde(default)]
        trace: u64,
    },
    /// Coalesced liveness for a relay's whole block: one periodic frame
    /// replaces per-worker `Heartbeat` traffic upstream. Each listed
    /// worker was heard from recently at the relay; the dispatcher feeds
    /// every id into the same lock-free AtomicU64 liveness path a direct
    /// heartbeat takes.
    BatchedHeartbeat {
        /// Dispatcher-assigned ids of workers the relay vouches for.
        workers: Vec<u64>,
    },
    /// A relayed worker disconnected from its relay (death or partition).
    /// The dispatcher treats this exactly like a direct worker's EOF:
    /// `handle_worker_down`, gang cancellation for its in-flight task.
    RelayWorkerGone {
        /// Dispatcher-assigned id of the departed worker.
        worker: u64,
    },
    /// Sent by a direct worker right after a [`DispatcherMsg::Registered`]
    /// ack when it is carrying state from a previous dispatcher session:
    /// the task still running from before the outage, if any. A freshly
    /// restarted dispatcher uses these claims during its reconciliation
    /// window to re-adopt surviving gangs instead of relaunching them; an
    /// established dispatcher answers an unknown claim with
    /// [`DispatcherMsg::Cancel`] so the worker frees itself.
    SessionState {
        /// `(task, job)` the worker is still running, or `None` if it
        /// re-registered idle.
        running: Option<(TaskId, JobId)>,
    },
    /// Relay-routed equivalent of [`WorkerMsg::SessionState`]: after the
    /// relay re-registers a member upstream, it reports the member's
    /// in-flight task so a restarted dispatcher can re-adopt the gang.
    RelayMemberState {
        /// Dispatcher-assigned id of the member (from the fresh
        /// [`DispatcherMsg::RelayRegistered`] ack).
        worker: u64,
        /// The task the member is still running.
        task_id: TaskId,
        /// The job that task belongs to.
        job_id: JobId,
    },
}

/// Messages the dispatcher sends to a worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DispatcherMsg {
    /// Registration accepted; `worker_id` names this worker from now on.
    Registered {
        /// Dispatcher-assigned identifier.
        worker_id: u64,
    },
    /// Run this task (reply to `Request`).
    Assign(TaskAssignment),
    /// Kill the named in-flight task: its gang is being torn down (a peer
    /// died, the job's deadline passed, or an assignment was
    /// undeliverable). The worker kills the task's processes, reports
    /// `Done` with [`EXIT_CANCELED`], and goes back to requesting work.
    /// Ignored if the task already completed (the race is benign: the
    /// dispatcher drops the stale report).
    Cancel {
        /// The task to kill.
        task_id: TaskId,
    },
    /// No more work will come; the worker should exit.
    Shutdown,
    /// Ack of a [`WorkerMsg::RelayRegister`]: the dispatcher assigned
    /// `worker_id` to the relay-local worker `local`. The relay records
    /// the `local ↔ worker_id` mapping and forwards a plain
    /// [`DispatcherMsg::Registered`] downstream.
    RelayRegistered {
        /// The relay-local handle echoed from the registration.
        local: u64,
        /// The dispatcher-assigned global worker id.
        worker_id: u64,
    },
    /// Routed envelope for an `Assign` to a relayed worker: the relay
    /// unwraps it and delivers a plain [`DispatcherMsg::Assign`] to the
    /// addressed worker.
    RelayAssign {
        /// Dispatcher-assigned id of the target worker.
        worker: u64,
        /// The assignment itself.
        assignment: TaskAssignment,
    },
    /// Routed envelope for a `Cancel` to a relayed worker.
    RelayCancel {
        /// Dispatcher-assigned id of the target worker.
        worker: u64,
        /// The task to kill.
        task_id: TaskId,
    },
}

// The synthetic exit-code registry lives in `spec.rs` (the one file
// allowed to write the sentinel literals; see jets-lint rule J5).
// Re-exported here because every protocol peer needs them alongside the
// envelope types.
pub use crate::spec::{EXIT_CANCELED, EXIT_DEADLINE, EXIT_UNDELIVERABLE, EXIT_WORKER_LOST};

/// One unit of work shipped to one worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskAssignment {
    /// Unique task identifier.
    pub task_id: TaskId,
    /// Job this task belongs to.
    pub job_id: JobId,
    /// Sequential command or MPI proxy description.
    pub kind: TaskKind,
    /// Files the worker must stage to node-local storage first.
    #[serde(default)]
    pub stage: Vec<StageFile>,
    /// The job's 64-bit trace id, minted at submission. Rides every
    /// `Assign`/`RelayAssign` so the relay and worker can emit span
    /// events into their own flight recorders under the same id (0
    /// from dispatchers predating tracing).
    #[serde(default)]
    pub trace: u64,
}

/// The two shapes of work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskKind {
    /// A single-process job (no PMI involved).
    Sequential {
        /// What to run.
        cmd: CommandSpec,
    },
    /// One MPI proxy: start `ranks.len()` ranks of an MPI job of `size`
    /// total ranks, each configured (via `PMI_*` environment) to connect
    /// back to the job's PMI server at `pmi_addr`.
    MpiProxy {
        /// What each rank runs.
        cmd: CommandSpec,
        /// The ranks this node hosts.
        ranks: Vec<u32>,
        /// Total ranks in the job.
        size: u32,
        /// `host:port` of the job's PMI server.
        pmi_addr: String,
        /// PMI job identifier.
        pmi_jobid: String,
    },
}

impl TaskAssignment {
    /// The command this assignment runs.
    pub fn cmd(&self) -> &CommandSpec {
        match &self.kind {
            TaskKind::Sequential { cmd } => cmd,
            TaskKind::MpiProxy { cmd, .. } => cmd,
        }
    }
}

/// Upper bound on one wire frame — a JSON line, its trailing newline
/// included. Large enough for any sane task assignment or output tail
/// (16 MiB), small enough that a corrupt length-less stream cannot OOM
/// the dispatcher through a single `read_line`.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Write one message as a JSON line (allocates a fresh buffer; see
/// [`write_msg_buf`] for the reusable-buffer variant the hot paths use).
pub fn write_msg<M: Serialize>(writer: &mut impl Write, msg: &M) -> io::Result<()> {
    let mut buf = Vec::with_capacity(128);
    write_msg_buf(writer, msg, &mut buf)
}

/// Write one message as a JSON line, encoding into `buf` (cleared first,
/// capacity kept) so steady-state traffic never allocates. Frames larger
/// than [`MAX_FRAME_BYTES`] are refused with `InvalidData` before
/// anything reaches the wire.
pub fn write_msg_buf<M: Serialize>(
    writer: &mut impl Write,
    msg: &M,
    buf: &mut Vec<u8>,
) -> io::Result<()> {
    encode_msg_buf(msg, buf)?;
    writer.write_all(buf)
}

/// Encode one message as a newline-terminated JSON frame into `buf`
/// (cleared first, capacity kept) without touching any socket. This is
/// the half of [`write_msg_buf`] the reactor paths use: the frame is
/// queued on a nonblocking outbox instead of written inline, so the
/// encoder must never block. Frames larger than [`MAX_FRAME_BYTES`]
/// are refused with `InvalidData` before anything is queued.
pub fn encode_msg_buf<M: Serialize>(msg: &M, buf: &mut Vec<u8>) -> io::Result<()> {
    buf.clear();
    serde_json::to_writer(&mut *buf, msg).map_err(io::Error::other)?;
    buf.push(b'\n');
    if buf.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "outgoing frame of {} bytes exceeds MAX_FRAME_BYTES",
                buf.len()
            ),
        ));
    }
    Ok(())
}

/// Decode one already-reassembled frame body into a message. This is
/// the read-side half of [`encode_msg_buf`] for reactor paths: the
/// reactor delivers complete frames (trailing newline stripped), so no
/// buffered reader is involved.
pub fn decode_msg<M: DeserializeOwned>(frame: &[u8]) -> io::Result<M> {
    let text =
        std::str::from_utf8(frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    serde_json::from_str(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Read one JSON-line message; `Ok(None)` on clean EOF (allocates a fresh
/// line buffer; see [`read_msg_buf`] for the reusable-buffer variant).
pub fn read_msg<M: DeserializeOwned>(reader: &mut impl BufRead) -> io::Result<Option<M>> {
    let mut line = String::new();
    read_msg_buf(reader, &mut line)
}

/// Read one JSON-line message into the reused `line` buffer (cleared
/// first, capacity kept); `Ok(None)` on clean EOF. Lines longer than
/// [`MAX_FRAME_BYTES`] yield `InvalidData` instead of growing without
/// bound — the connection should be dropped, since the remainder of the
/// oversized line is still in flight.
pub fn read_msg_buf<M: DeserializeOwned>(
    reader: &mut impl BufRead,
    line: &mut String,
) -> io::Result<Option<M>> {
    line.clear();
    // `take` bounds how much one read_line can pull in; one extra byte
    // distinguishes "exactly at the cap" from "over it".
    let mut bounded = (&mut *reader).take(MAX_FRAME_BYTES as u64 + 1);
    let n = bounded.read_line(line)?;
    if n == 0 {
        return Ok(None);
    }
    if line.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "incoming frame exceeds MAX_FRAME_BYTES",
        ));
    }
    serde_json::from_str(line)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// A connection write half plus its reused encode buffer.
///
/// Owns the buffer-reuse contract for long-lived connections: every
/// [`MsgWriter::send`] encodes into the same `Vec<u8>`.
#[derive(Debug)]
pub struct MsgWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
}

impl<W: Write> MsgWriter<W> {
    /// Wrap a write half.
    pub fn new(inner: W) -> Self {
        MsgWriter {
            inner,
            buf: Vec::with_capacity(256),
        }
    }

    /// Send one message, reusing the internal encode buffer.
    pub fn send<M: Serialize>(&mut self, msg: &M) -> io::Result<()> {
        write_msg_buf(&mut self.inner, msg, &mut self.buf)
    }

    /// Access the underlying writer (e.g. to shut a socket down).
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// Mutable access to the underlying writer (e.g. to drain a sink
    /// between benchmark iterations).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

/// A connection read half plus its reused line buffer.
#[derive(Debug)]
pub struct MsgReader<R: BufRead> {
    inner: R,
    line: String,
}

impl<R: BufRead> MsgReader<R> {
    /// Wrap a (buffered) read half.
    pub fn new(inner: R) -> Self {
        MsgReader {
            inner,
            line: String::with_capacity(256),
        }
    }

    /// Receive one message, reusing the internal line buffer; `Ok(None)`
    /// on clean EOF.
    pub fn recv<M: DeserializeOwned>(&mut self) -> io::Result<Option<M>> {
        read_msg_buf(&mut self.inner, &mut self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn round_trip<M: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(msg: M) {
        let mut buf = Vec::new();
        write_msg(&mut buf, &msg).unwrap();
        let mut reader = BufReader::new(&buf[..]);
        let back: M = read_msg(&mut reader).unwrap().unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn worker_messages_round_trip() {
        round_trip(WorkerMsg::Register {
            name: "node-007".into(),
            cores: 4,
            location: "rack-3".into(),
        });
        round_trip(WorkerMsg::Request);
        round_trip(WorkerMsg::Done {
            task_id: 42,
            exit_code: -1,
            wall_ms: 10_500,
            output: Some("ETITLE: TS   BOND\n".to_string()),
            trace: 0xFEED_F00D,
        });
        round_trip(WorkerMsg::Heartbeat);
        round_trip(WorkerMsg::Goodbye);
    }

    #[test]
    fn dispatcher_messages_round_trip() {
        round_trip(DispatcherMsg::Registered { worker_id: 9 });
        round_trip(DispatcherMsg::Shutdown);
        round_trip(DispatcherMsg::Cancel { task_id: 17 });
        round_trip(DispatcherMsg::Assign(TaskAssignment {
            task_id: 1,
            job_id: 2,
            trace: 77,
            kind: TaskKind::MpiProxy {
                cmd: CommandSpec::builtin("sleep", vec!["10".into()]),
                ranks: vec![4, 5],
                size: 8,
                pmi_addr: "127.0.0.1:4444".into(),
                pmi_jobid: "job-2".into(),
            },
            stage: vec![StageFile::new("/gpfs/apps/namd2")],
        }));
    }

    #[test]
    fn relay_worker_messages_round_trip() {
        round_trip(WorkerMsg::RelayHello {
            name: "relay-0".into(),
            location: "rack-3".into(),
        });
        round_trip(WorkerMsg::RelayRegister {
            local: 3,
            name: "node-0003".into(),
            cores: 4,
            location: "rack-3".into(),
        });
        round_trip(WorkerMsg::RelayRequest { worker: 12 });
        round_trip(WorkerMsg::RelayDone {
            worker: 12,
            task_id: 42,
            exit_code: 0,
            wall_ms: 99,
            output: Some("tail".into()),
            trace: 77,
        });
        round_trip(WorkerMsg::BatchedHeartbeat {
            workers: vec![3, 5, 8, 13],
        });
        round_trip(WorkerMsg::BatchedHeartbeat { workers: vec![] });
        round_trip(WorkerMsg::RelayWorkerGone { worker: 8 });
        round_trip(WorkerMsg::RelayMemberState {
            worker: 8,
            task_id: 42,
            job_id: 7,
        });
    }

    #[test]
    fn session_state_messages_round_trip() {
        round_trip(WorkerMsg::SessionState { running: None });
        round_trip(WorkerMsg::SessionState {
            running: Some((42, 7)),
        });
    }

    #[test]
    fn relay_dispatcher_messages_round_trip() {
        round_trip(DispatcherMsg::RelayRegistered {
            local: 3,
            worker_id: 12,
        });
        round_trip(DispatcherMsg::RelayCancel {
            worker: 12,
            task_id: 42,
        });
        round_trip(DispatcherMsg::RelayAssign {
            worker: 12,
            assignment: TaskAssignment {
                task_id: 1,
                job_id: 2,
                trace: 77,
                kind: TaskKind::Sequential {
                    cmd: CommandSpec::builtin("noop", vec![]),
                },
                stage: Vec::new(),
            },
        });
    }

    /// A batched frame for a big block must still be one line well under
    /// the frame cap (the whole point of coalescing).
    #[test]
    fn batched_heartbeat_scales_within_frame_cap() {
        let msg = WorkerMsg::BatchedHeartbeat {
            workers: (0..4096u64).collect(),
        };
        let mut wire = Vec::new();
        write_msg(&mut wire, &msg).unwrap();
        assert!(wire.len() < MAX_FRAME_BYTES / 16);
        let got: WorkerMsg = read_msg(&mut BufReader::new(&wire[..])).unwrap().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn sequential_assignment_cmd_accessor() {
        let a = TaskAssignment {
            task_id: 0,
            job_id: 0,
            trace: 0,
            kind: TaskKind::Sequential {
                cmd: CommandSpec::exec("echo", vec!["hi".into()]),
            },
            stage: Vec::new(),
        };
        assert_eq!(a.cmd().name(), "echo");
    }

    #[test]
    fn eof_reads_as_none() {
        let empty: &[u8] = &[];
        let mut reader = BufReader::new(empty);
        let got: Option<WorkerMsg> = read_msg(&mut reader).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        let mut reader = BufReader::new(&b"not json\n"[..]);
        let got: io::Result<Option<WorkerMsg>> = read_msg(&mut reader);
        assert!(got.is_err());
    }

    /// Both write paths must produce byte-identical frames, and each
    /// read path must decode frames produced by either writer.
    #[test]
    fn legacy_and_buffered_paths_interoperate() {
        let msg = WorkerMsg::Done {
            task_id: 7,
            exit_code: 0,
            wall_ms: 12,
            output: Some("tail".into()),
            trace: 7,
        };
        let mut legacy = Vec::new();
        write_msg(&mut legacy, &msg).unwrap();
        let mut buffered = Vec::new();
        let mut buf = Vec::new();
        write_msg_buf(&mut buffered, &msg, &mut buf).unwrap();
        assert_eq!(legacy, buffered);

        // legacy write → buffered read
        let mut line = String::new();
        let mut reader = BufReader::new(&legacy[..]);
        let got: WorkerMsg = read_msg_buf(&mut reader, &mut line).unwrap().unwrap();
        assert_eq!(got, msg);
        // buffered write → legacy read
        let mut reader = BufReader::new(&buffered[..]);
        let got: WorkerMsg = read_msg(&mut reader).unwrap().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn buffered_reader_writer_round_trip_many() {
        let mut wire = Vec::new();
        {
            let mut w = MsgWriter::new(&mut wire);
            for i in 0..100u64 {
                w.send(&WorkerMsg::Done {
                    task_id: i,
                    exit_code: 0,
                    wall_ms: i,
                    output: None,
                    trace: i,
                })
                .unwrap();
                w.send(&WorkerMsg::Heartbeat).unwrap();
            }
        }
        let mut r = MsgReader::new(BufReader::new(&wire[..]));
        for i in 0..100u64 {
            match r.recv::<WorkerMsg>().unwrap().unwrap() {
                WorkerMsg::Done { task_id, .. } => assert_eq!(task_id, i),
                other => panic!("unexpected: {other:?}"),
            }
            assert_eq!(
                r.recv::<WorkerMsg>().unwrap().unwrap(),
                WorkerMsg::Heartbeat
            );
        }
        assert!(r.recv::<WorkerMsg>().unwrap().is_none());
    }

    #[test]
    fn oversized_incoming_frame_is_rejected_gracefully() {
        // A line (sans newline) just over the cap must be InvalidData on
        // both read paths, not an OOM or a panic.
        let mut wire = vec![b'x'; MAX_FRAME_BYTES + 16];
        wire.push(b'\n');
        let err = read_msg::<WorkerMsg>(&mut BufReader::new(&wire[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mut line = String::new();
        let err = read_msg_buf::<WorkerMsg>(&mut BufReader::new(&wire[..]), &mut line).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_outgoing_frame_is_refused() {
        let msg = WorkerMsg::Done {
            task_id: 1,
            exit_code: 0,
            wall_ms: 0,
            output: Some("y".repeat(MAX_FRAME_BYTES)),
            trace: 0,
        };
        let mut sink = Vec::new();
        let err = write_msg(&mut sink, &msg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(sink.is_empty(), "nothing may reach the wire");
    }

    #[test]
    fn frame_at_the_cap_still_reads() {
        // Exactly MAX_FRAME_BYTES including the newline is legal.
        let payload = "z".repeat(MAX_FRAME_BYTES - "\"\"\n".len());
        let mut wire = format!("{payload:?}").into_bytes();
        wire.push(b'\n');
        assert_eq!(wire.len(), MAX_FRAME_BYTES);
        let got: String = read_msg(&mut BufReader::new(&wire[..])).unwrap().unwrap();
        assert_eq!(got.len(), payload.len());
    }

    #[test]
    fn multiple_messages_stream() {
        let mut buf = Vec::new();
        write_msg(&mut buf, &WorkerMsg::Request).unwrap();
        write_msg(&mut buf, &WorkerMsg::Heartbeat).unwrap();
        let mut reader = BufReader::new(&buf[..]);
        assert_eq!(
            read_msg::<WorkerMsg>(&mut reader).unwrap().unwrap(),
            WorkerMsg::Request
        );
        assert_eq!(
            read_msg::<WorkerMsg>(&mut reader).unwrap().unwrap(),
            WorkerMsg::Heartbeat
        );
        assert!(read_msg::<WorkerMsg>(&mut reader).unwrap().is_none());
    }
}
