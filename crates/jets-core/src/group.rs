//! Worker-group selection: turning idle workers into an MPI-capable group.
//!
//! "The default JETS behavior is to group nodes in first come, first
//! served order" (paper, Section 6.1.4). Section 7 notes that grouping
//! with respect to network location would matter for workflows spanning
//! multiple clusters — joining MPI processes on the same cluster should be
//! preferred to running MPI jobs across clusters. Both policies live here
//! and are compared in `bench/ablation_grouping`.

use crate::spec::WorkerId;
use std::collections::HashMap;

/// How to choose which idle workers form a job's group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupingPolicy {
    /// First come, first served: the `need` longest-waiting idle workers,
    /// regardless of where they are (the paper's default).
    #[default]
    Fcfs,
    /// Prefer a group entirely within one network location; fall back to
    /// FCFS across locations only when no single location has enough idle
    /// workers.
    LocationAware,
}

/// An idle worker as seen by the selector: identity plus location label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The worker.
    pub worker: WorkerId,
    /// Its network location label.
    pub location: String,
}

/// Select `need` workers from `ready` (ordered oldest-request-first).
/// Returns the chosen indices into `ready`, oldest first, or `None` if
/// fewer than `need` candidates exist.
pub fn select_group(
    policy: GroupingPolicy,
    ready: &[Candidate],
    need: usize,
) -> Option<Vec<usize>> {
    if need == 0 || ready.len() < need {
        return None;
    }
    match policy {
        GroupingPolicy::Fcfs => Some((0..need).collect()),
        GroupingPolicy::LocationAware => {
            // Count candidates per location, preserving FCFS inside each.
            let mut by_location: HashMap<&str, Vec<usize>> = HashMap::new();
            for (idx, c) in ready.iter().enumerate() {
                by_location.entry(c.location.as_str()).or_default().push(idx);
            }
            // Among locations that can host the whole group, pick the one
            // whose oldest candidate has waited longest (keeps FCFS
            // fairness across locations); ties broken by the scan order of
            // the first index.
            let mut best: Option<&Vec<usize>> = None;
            for indices in by_location.values() {
                if indices.len() >= need
                    && best.is_none_or(|b| indices[0] < b[0])
                {
                    best = Some(indices);
                }
            }
            match best {
                Some(indices) => Some(indices[..need].to_vec()),
                // No single location suffices: cross-location FCFS.
                None => Some((0..need).collect()),
            }
        }
    }
}

/// How many of the group's workers share its most common location — the
/// metric the grouping ablation reports (1.0 = fully co-located).
pub fn colocation_fraction(locations: &[&str]) -> f64 {
    if locations.is_empty() {
        return 1.0;
    }
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for l in locations {
        *counts.entry(l).or_default() += 1;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    max as f64 / locations.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(spec: &[(WorkerId, &str)]) -> Vec<Candidate> {
        spec.iter()
            .map(|&(worker, loc)| Candidate {
                worker,
                location: loc.to_string(),
            })
            .collect()
    }

    #[test]
    fn fcfs_takes_the_oldest() {
        let ready = cands(&[(1, "a"), (2, "b"), (3, "a")]);
        assert_eq!(select_group(GroupingPolicy::Fcfs, &ready, 2), Some(vec![0, 1]));
    }

    #[test]
    fn insufficient_workers_yields_none() {
        let ready = cands(&[(1, "a")]);
        assert_eq!(select_group(GroupingPolicy::Fcfs, &ready, 2), None);
        assert_eq!(select_group(GroupingPolicy::LocationAware, &ready, 2), None);
        assert_eq!(select_group(GroupingPolicy::Fcfs, &ready, 0), None);
    }

    #[test]
    fn location_aware_colocates_when_possible() {
        // FCFS would pick indices 0,1 (a cross-cluster group); the
        // location-aware policy should find the all-"b" group.
        let ready = cands(&[(1, "a"), (2, "b"), (3, "b")]);
        assert_eq!(
            select_group(GroupingPolicy::LocationAware, &ready, 2),
            Some(vec![1, 2])
        );
    }

    #[test]
    fn location_aware_prefers_longest_waiting_viable_location() {
        let ready = cands(&[(1, "a"), (2, "b"), (3, "a"), (4, "b")]);
        // Both locations have 2 candidates; "a" has the oldest (index 0).
        assert_eq!(
            select_group(GroupingPolicy::LocationAware, &ready, 2),
            Some(vec![0, 2])
        );
    }

    #[test]
    fn location_aware_falls_back_to_fcfs() {
        let ready = cands(&[(1, "a"), (2, "b"), (3, "c")]);
        assert_eq!(
            select_group(GroupingPolicy::LocationAware, &ready, 3),
            Some(vec![0, 1, 2])
        );
    }

    #[test]
    fn colocation_metric() {
        assert_eq!(colocation_fraction(&["a", "a", "a"]), 1.0);
        assert_eq!(colocation_fraction(&["a", "b"]), 0.5);
        assert_eq!(colocation_fraction(&[]), 1.0);
        let f = colocation_fraction(&["a", "a", "b", "c"]);
        assert!((f - 0.5).abs() < 1e-12);
    }
}
