//! Worker-group selection: turning idle workers into an MPI-capable group.
//!
//! "The default JETS behavior is to group nodes in first come, first
//! served order" (paper, Section 6.1.4). Section 7 notes that grouping
//! with respect to network location would matter for workflows spanning
//! multiple clusters — joining MPI processes on the same cluster should be
//! preferred to running MPI jobs across clusters. Both policies live here
//! and are compared in `bench/ablation_grouping`.

use crate::spec::WorkerId;
use std::collections::HashMap;

/// An interned network-location label.
///
/// The dispatcher's hot path never compares location *strings*: each
/// distinct label is interned to a dense `LocId` at worker registration,
/// and group selection works on ids alone (see [`select_group_ids`]).
pub type LocId = u32;

/// Interns location labels to dense [`LocId`]s.
///
/// Lives with the worker registry; `LocId`s are stable for the life of
/// the dispatcher and index directly into [`GroupScratch`]'s per-location
/// tallies.
#[derive(Debug, Default)]
pub struct LocationInterner {
    ids: HashMap<String, LocId>,
    names: Vec<String>,
}

impl LocationInterner {
    /// An empty interner.
    pub fn new() -> Self {
        LocationInterner::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> LocId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as LocId;
        self.ids.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    /// The label behind `id` (panics on an id this interner never issued).
    pub fn name(&self, id: LocId) -> &str {
        &self.names[id as usize]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// How to choose which idle workers form a job's group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupingPolicy {
    /// First come, first served: the `need` longest-waiting idle workers,
    /// regardless of where they are (the paper's default).
    #[default]
    Fcfs,
    /// Prefer a group entirely within one network location; fall back to
    /// FCFS across locations only when no single location has enough idle
    /// workers.
    LocationAware,
}

/// An idle worker as seen by the selector: identity plus location label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The worker.
    pub worker: WorkerId,
    /// Its network location label.
    pub location: String,
}

/// Select `need` workers from `ready` (ordered oldest-request-first).
/// Returns the chosen indices into `ready`, oldest first, or `None` if
/// fewer than `need` candidates exist.
pub fn select_group(
    policy: GroupingPolicy,
    ready: &[Candidate],
    need: usize,
) -> Option<Vec<usize>> {
    if need == 0 || ready.len() < need {
        return None;
    }
    match policy {
        GroupingPolicy::Fcfs => Some((0..need).collect()),
        GroupingPolicy::LocationAware => {
            // Count candidates per location, preserving FCFS inside each.
            let mut by_location: HashMap<&str, Vec<usize>> = HashMap::new();
            for (idx, c) in ready.iter().enumerate() {
                by_location
                    .entry(c.location.as_str())
                    .or_default()
                    .push(idx);
            }
            // Among locations that can host the whole group, pick the one
            // whose oldest candidate has waited longest (keeps FCFS
            // fairness across locations); ties broken by the scan order of
            // the first index.
            let mut best: Option<&Vec<usize>> = None;
            for indices in by_location.values() {
                if indices.len() >= need && best.is_none_or(|b| indices[0] < b[0]) {
                    best = Some(indices);
                }
            }
            match best {
                Some(indices) => Some(indices[..need].to_vec()),
                // No single location suffices: cross-location FCFS.
                None => Some((0..need).collect()),
            }
        }
    }
}

/// Per-location tally slot for [`GroupScratch`] (generation-stamped so a
/// scheduling pass never has to clear the whole table).
#[derive(Debug, Clone, Copy, Default)]
struct LocStat {
    gen: u64,
    count: usize,
    first: usize,
}

/// Reusable scratch space for [`select_group_ids`].
///
/// One instance lives in the dispatcher's scheduling state; repeated
/// selection passes reuse its buffers, so steady-state scheduling makes
/// no allocations (buffers only grow to the high-water mark of distinct
/// locations / group sizes).
#[derive(Debug, Default)]
pub struct GroupScratch {
    /// Chosen indices (ascending) from the last successful selection.
    selected: Vec<usize>,
    /// Per-`LocId` tallies, generation-stamped.
    stats: Vec<LocStat>,
    /// Current generation; bumping it invalidates all `stats` slots.
    gen: u64,
}

impl GroupScratch {
    /// Fresh scratch space.
    pub fn new() -> Self {
        GroupScratch::default()
    }

    /// The indices chosen by the last [`select_group_ids`] call that
    /// returned `true`, in ascending (oldest-request-first) order.
    pub fn selected(&self) -> &[usize] {
        &self.selected
    }
}

/// Select `need` workers from `ready` (ordered oldest-request-first,
/// locations interned), writing the chosen indices — ascending — into
/// `scratch.selected`. Returns `false` if fewer than `need` candidates
/// exist (or `need == 0`).
///
/// Semantics match [`select_group`] exactly; this variant avoids the
/// per-call `String` clones and `HashMap` builds by tallying interned
/// ids into reusable, generation-stamped scratch buffers.
pub fn select_group_ids(
    policy: GroupingPolicy,
    ready: &[(WorkerId, LocId)],
    need: usize,
    scratch: &mut GroupScratch,
) -> bool {
    scratch.selected.clear();
    if need == 0 || ready.len() < need {
        return false;
    }
    match policy {
        GroupingPolicy::Fcfs => {
            scratch.selected.extend(0..need);
            true
        }
        GroupingPolicy::LocationAware => {
            scratch.gen += 1;
            let gen = scratch.gen;
            // Pass 1: tally count and first index per location; track the
            // viable location whose oldest candidate has waited longest.
            let mut best: Option<(usize, LocId)> = None; // (first index, loc)
            for (idx, &(_, loc)) in ready.iter().enumerate() {
                if scratch.stats.len() <= loc as usize {
                    scratch.stats.resize(loc as usize + 1, LocStat::default());
                }
                let stat = &mut scratch.stats[loc as usize];
                if stat.gen != gen {
                    *stat = LocStat {
                        gen,
                        count: 0,
                        first: idx,
                    };
                }
                stat.count += 1;
                if stat.count >= need && best.is_none_or(|(f, _)| stat.first < f) {
                    best = Some((stat.first, loc));
                }
            }
            match best {
                Some((_, best_loc)) => {
                    // Pass 2: collect the location's oldest `need` indices.
                    for (idx, &(_, loc)) in ready.iter().enumerate() {
                        if loc == best_loc {
                            scratch.selected.push(idx);
                            if scratch.selected.len() == need {
                                break;
                            }
                        }
                    }
                }
                // No single location suffices: cross-location FCFS.
                None => scratch.selected.extend(0..need),
            }
            true
        }
    }
}

/// How many of the group's workers share its most common location — the
/// metric the grouping ablation reports (1.0 = fully co-located).
pub fn colocation_fraction(locations: &[&str]) -> f64 {
    if locations.is_empty() {
        return 1.0;
    }
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for l in locations {
        *counts.entry(l).or_default() += 1;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    max as f64 / locations.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(spec: &[(WorkerId, &str)]) -> Vec<Candidate> {
        spec.iter()
            .map(|&(worker, loc)| Candidate {
                worker,
                location: loc.to_string(),
            })
            .collect()
    }

    #[test]
    fn fcfs_takes_the_oldest() {
        let ready = cands(&[(1, "a"), (2, "b"), (3, "a")]);
        assert_eq!(
            select_group(GroupingPolicy::Fcfs, &ready, 2),
            Some(vec![0, 1])
        );
    }

    #[test]
    fn insufficient_workers_yields_none() {
        let ready = cands(&[(1, "a")]);
        assert_eq!(select_group(GroupingPolicy::Fcfs, &ready, 2), None);
        assert_eq!(select_group(GroupingPolicy::LocationAware, &ready, 2), None);
        assert_eq!(select_group(GroupingPolicy::Fcfs, &ready, 0), None);
    }

    #[test]
    fn location_aware_colocates_when_possible() {
        // FCFS would pick indices 0,1 (a cross-cluster group); the
        // location-aware policy should find the all-"b" group.
        let ready = cands(&[(1, "a"), (2, "b"), (3, "b")]);
        assert_eq!(
            select_group(GroupingPolicy::LocationAware, &ready, 2),
            Some(vec![1, 2])
        );
    }

    #[test]
    fn location_aware_prefers_longest_waiting_viable_location() {
        let ready = cands(&[(1, "a"), (2, "b"), (3, "a"), (4, "b")]);
        // Both locations have 2 candidates; "a" has the oldest (index 0).
        assert_eq!(
            select_group(GroupingPolicy::LocationAware, &ready, 2),
            Some(vec![0, 2])
        );
    }

    #[test]
    fn location_aware_falls_back_to_fcfs() {
        let ready = cands(&[(1, "a"), (2, "b"), (3, "c")]);
        assert_eq!(
            select_group(GroupingPolicy::LocationAware, &ready, 3),
            Some(vec![0, 1, 2])
        );
    }

    /// The interned selector must agree with the string-based one on
    /// every policy for a representative spread of layouts.
    #[test]
    fn interned_selection_matches_string_selection() {
        let layouts: Vec<Vec<(WorkerId, &str)>> = vec![
            vec![(1, "a"), (2, "b"), (3, "b")],
            vec![(1, "a"), (2, "b"), (3, "a"), (4, "b")],
            vec![(1, "a"), (2, "b"), (3, "c")],
            vec![(10, "x"); 5],
            vec![(1, "a"), (2, "a"), (3, "b"), (4, "b"), (5, "b"), (6, "a")],
        ];
        let mut scratch = GroupScratch::new();
        for spec in &layouts {
            let ready = cands(spec);
            let mut interner = LocationInterner::new();
            let interned: Vec<(WorkerId, LocId)> = spec
                .iter()
                .map(|&(w, loc)| (w, interner.intern(loc)))
                .collect();
            for need in 0..=spec.len() + 1 {
                for policy in [GroupingPolicy::Fcfs, GroupingPolicy::LocationAware] {
                    let old = select_group(policy, &ready, need);
                    let ok = select_group_ids(policy, &interned, need, &mut scratch);
                    match old {
                        None => assert!(!ok, "{policy:?} need={need}"),
                        Some(idx) => {
                            assert!(ok, "{policy:?} need={need}");
                            assert_eq!(scratch.selected(), &idx[..], "{policy:?} need={need}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn interner_is_stable_and_dense() {
        let mut i = LocationInterner::new();
        assert!(i.is_empty());
        let a = i.intern("rack-a");
        let b = i.intern("rack-b");
        assert_eq!(i.intern("rack-a"), a);
        assert_ne!(a, b);
        assert_eq!(i.name(a), "rack-a");
        assert_eq!(i.name(b), "rack-b");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn colocation_metric() {
        assert_eq!(colocation_fraction(&["a", "a", "a"]), 1.0);
        assert_eq!(colocation_fraction(&["a", "b"]), 0.5);
        assert_eq!(colocation_fraction(&[]), 1.0);
        let f = colocation_fraction(&["a", "a", "b", "c"]);
        assert!((f - 0.5).abs() < 1e-12);
    }
}
