//! Timestamped event log of dispatcher activity, stored in a
//! [`jets_ring`] flight recorder.
//!
//! Every consequential dispatcher action is recorded against a shared
//! epoch. The evaluation section of the paper is computed entirely from
//! such records: utilization (Eq. 1), load level over time (Fig. 13),
//! nodes-available versus running-jobs timelines under fault injection
//! (Fig. 10), and task run-time distributions (Fig. 11). See
//! [`crate::stats`] for the derived series.
//!
//! ## Storage
//!
//! [`EventLog::record`] encodes the event into a fixed 62-byte-max
//! layout (tag byte + little-endian fields, no serde) and pushes it
//! into a lock-free ring — no `Mutex`, no allocation, no unbounded
//! growth. Consumers ([`EventLog::snapshot`], [`EventCursor`], the
//! Prometheus gauges, `jets top`) are independent ring readers that
//! never block the writer; a reader that falls a full window behind is
//! *lapped* and its cursor reports how many records it missed.
//!
//! With [`EventLog::file_backed`] the ring lives in a `MAP_SHARED`
//! mmap (`--flight-recorder FILE`): the journal survives `kill -9` and
//! [`read_flight`] replays it offline (`jets flight dump`).
//!
//! ## Offline persistence
//!
//! [`EventLog::write_jsonl`] saves the log as one JSON object per line
//! (a flat [`EventRecord`] per event) and [`read_jsonl`] loads it back,
//! so every series in [`crate::stats`] can be recomputed later from a
//! saved run — `jets events --in run.jsonl` does exactly that.

use crate::spec::{JobId, TaskId, WorkerId};
pub use jets_ring::WriterRole;
use jets_ring::{Ring, RingReader, PAYLOAD_BYTES};
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::time::{Duration, Instant, SystemTime};

/// The lifecycle phase a trace span measures, in submit→report order.
///
/// Every phase of one job's journey across the three process roles is
/// one span kind: the dispatcher owns `Submit`/`Queue`/`Sched`/`Ship`/
/// `PmiBarrier`/`Run`/`Report`, a relay owns `RelayForward`, and a
/// worker owns `Stage`/`Exec`. `jets trace` pairs each
/// [`EventKind::SpanStart`]/[`EventKind::SpanEnd`] by
/// `(trace, kind, task)` when assembling the cross-process timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Submission accepted (dispatcher): batch parse → queue insert.
    Submit,
    /// Queue wait (dispatcher): enqueue → workers selected.
    Queue,
    /// Scheduling (dispatcher): workers selected → assignments built.
    Sched,
    /// Shipping (dispatcher): assignments built → all sends issued.
    Ship,
    /// Relay fan-out (relay): upstream `RelayAssign` received →
    /// delivered to the member worker.
    RelayForward,
    /// Input staging (worker): assignment received → staged files ready.
    Stage,
    /// Execution (worker): process spawn → exit collected.
    Exec,
    /// PMI negotiation (dispatcher): assignments shipped → first
    /// barrier released.
    PmiBarrier,
    /// Run (dispatcher): tasks shipped → last task reported.
    Run,
    /// Result report (dispatcher): last `Done` received → terminal
    /// state recorded.
    Report,
}

impl SpanKind {
    /// The on-wire code (one byte in the ring codec).
    pub fn code(self) -> u8 {
        match self {
            SpanKind::Submit => 0,
            SpanKind::Queue => 1,
            SpanKind::Sched => 2,
            SpanKind::Ship => 3,
            SpanKind::RelayForward => 4,
            SpanKind::Stage => 5,
            SpanKind::Exec => 6,
            SpanKind::PmiBarrier => 7,
            SpanKind::Run => 8,
            SpanKind::Report => 9,
        }
    }

    /// Decode a ring-codec byte; `None` on a newer build's codes.
    pub fn from_code(code: u8) -> Option<SpanKind> {
        Some(match code {
            0 => SpanKind::Submit,
            1 => SpanKind::Queue,
            2 => SpanKind::Sched,
            3 => SpanKind::Ship,
            4 => SpanKind::RelayForward,
            5 => SpanKind::Stage,
            6 => SpanKind::Exec,
            7 => SpanKind::PmiBarrier,
            8 => SpanKind::Run,
            9 => SpanKind::Report,
            _ => return None,
        })
    }

    /// Stable lowercase label (JSONL field, Perfetto span name,
    /// `jets trace critical-path` phase column).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Submit => "submit",
            SpanKind::Queue => "queue",
            SpanKind::Sched => "sched",
            SpanKind::Ship => "ship",
            SpanKind::RelayForward => "relay-forward",
            SpanKind::Stage => "stage",
            SpanKind::Exec => "exec",
            SpanKind::PmiBarrier => "pmi-barrier",
            SpanKind::Run => "run",
            SpanKind::Report => "report",
        }
    }

    /// Parse the [`SpanKind::as_str`] label back (JSONL reload).
    pub fn from_name(name: &str) -> Option<SpanKind> {
        Some(match name {
            "submit" => SpanKind::Submit,
            "queue" => SpanKind::Queue,
            "sched" => SpanKind::Sched,
            "ship" => SpanKind::Ship,
            "relay-forward" => SpanKind::RelayForward,
            "stage" => SpanKind::Stage,
            "exec" => SpanKind::Exec,
            "pmi-barrier" => SpanKind::PmiBarrier,
            "run" => SpanKind::Run,
            "report" => SpanKind::Report,
            _ => return None,
        })
    }

    /// Every span kind, in lifecycle order (exhaustive-iteration guard
    /// for tests and the trace assembler's phase tables).
    pub const ALL: [SpanKind; 10] = [
        SpanKind::Submit,
        SpanKind::Queue,
        SpanKind::Sched,
        SpanKind::Ship,
        SpanKind::RelayForward,
        SpanKind::Stage,
        SpanKind::Exec,
        SpanKind::PmiBarrier,
        SpanKind::Run,
        SpanKind::Report,
    ];
}

/// Parse a [`WriterRole::as_str`] label back (JSONL reload).
fn role_from_name(name: &str) -> Option<WriterRole> {
    Some(match name {
        "unknown" => WriterRole::Unknown,
        "dispatcher" => WriterRole::Dispatcher,
        "relay" => WriterRole::Relay,
        "worker" => WriterRole::Worker,
        _ => return None,
    })
}

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A worker registered.
    WorkerUp {
        /// The worker.
        worker: WorkerId,
    },
    /// A worker died or signed off.
    WorkerDown {
        /// The worker.
        worker: WorkerId,
    },
    /// A job entered the queue.
    JobSubmitted {
        /// The job.
        job: JobId,
        /// Its node count.
        nodes: u32,
        /// Its ranks-per-node.
        ppn: u32,
    },
    /// A job's workers were selected and its tasks were shipped.
    JobStarted {
        /// The job.
        job: JobId,
        /// Its node count.
        nodes: u32,
        /// Its ranks-per-node.
        ppn: u32,
    },
    /// A job finished (all tasks reported, or failure was established).
    JobCompleted {
        /// The job.
        job: JobId,
        /// Its node count.
        nodes: u32,
        /// Its ranks-per-node.
        ppn: u32,
        /// Whether every task exited zero.
        success: bool,
    },
    /// Per-phase latency breakdown of a finished job's final attempt,
    /// emitted alongside its terminal [`EventKind::JobCompleted`]. The
    /// same durations feed the live `jets_job_phase_seconds` histograms,
    /// so offline analysis (`jets events --stats`) matches `/metrics`
    /// one-to-one.
    JobPhases {
        /// The job.
        job: JobId,
        /// Its node count (the per-size key used by `--stats`).
        nodes: u32,
        /// Queue wait: last enqueue → workers selected.
        queue_us: u64,
        /// Launch: workers selected → all assignments shipped.
        launch_us: u64,
        /// PMI negotiation: assignments shipped → first barrier
        /// released. `None` for jobs that never fence (sequential).
        pmi_us: Option<u64>,
        /// Run: start of execution → terminal state.
        run_us: u64,
        /// End-to-end: first submission → terminal state (includes
        /// requeued attempts).
        total_us: u64,
    },
    /// A failed job went back into the queue.
    JobRequeued {
        /// The job.
        job: JobId,
    },
    /// A running attempt blew its wall-time budget; its gang was
    /// canceled and the failure charged against the retry budget.
    DeadlineExceeded {
        /// The job.
        job: JobId,
    },
    /// A re-registering worker was benched for killing recent gangs.
    WorkerQuarantined {
        /// The worker (the fresh connection's id).
        worker: WorkerId,
        /// Live strikes against the worker's name.
        strikes: u32,
        /// Release time, milliseconds since the registry epoch.
        until_ms: u64,
    },
    /// One task (proxy or sequential execution) was assigned to a worker.
    TaskStarted {
        /// The task.
        task: TaskId,
        /// Its job.
        job: JobId,
        /// The worker executing it.
        worker: WorkerId,
        /// Ranks this task hosts (1 for sequential tasks).
        ranks: u32,
    },
    /// A relay daemon connected and was assigned an id.
    RelayUp {
        /// The relay (ids share the worker id space).
        relay: WorkerId,
    },
    /// A relay's connection dropped; every worker it fronted is treated
    /// as down.
    RelayDown {
        /// The relay.
        relay: WorkerId,
    },
    /// A task completed (the worker reported `Done`).
    TaskEnded {
        /// The task.
        task: TaskId,
        /// Its job.
        job: JobId,
        /// The worker that executed it.
        worker: WorkerId,
        /// Ranks this task hosted.
        ranks: u32,
        /// Exit code (0 = success).
        exit_code: i32,
        /// The job's trace id (0 for records from builds or peers that
        /// predate tracing).
        trace: u64,
    },
    /// A restarted dispatcher re-adopted a journaled in-flight gang: every
    /// member re-registered and claimed its task, so the attempt keeps
    /// running instead of being relaunched.
    GangReadopted {
        /// The job.
        job: JobId,
    },
    /// A relay's bounded upstream queue overflowed and dropped its oldest
    /// frames. Rate-limited to one event per reporting interval per relay;
    /// `dropped` is the cumulative drop count at emission, so consecutive
    /// events show the loss rate.
    UpQueueDropped {
        /// The relay (ids share the worker id space).
        relay: WorkerId,
        /// Cumulative frames dropped by this relay so far.
        dropped: u64,
    },
    /// A traced phase opened in this process. Paired with the matching
    /// [`EventKind::SpanEnd`] by `(trace, kind, task)`; `jets trace`
    /// merges these across the dispatcher/relay/worker flight files
    /// into one per-job timeline.
    SpanStart {
        /// The job's 64-bit trace id, minted at submission and carried
        /// through the wire protocol.
        trace: u64,
        /// Which lifecycle phase opened.
        kind: SpanKind,
        /// The emitting process's role (its lane in the merge).
        role: WriterRole,
        /// The job (0 when not yet known, e.g. a relay forward for a
        /// job the relay never learns).
        job: JobId,
        /// The task, for per-task spans; 0 for job-wide spans.
        task: TaskId,
    },
    /// A traced phase closed in this process. See
    /// [`EventKind::SpanStart`].
    SpanEnd {
        /// The job's trace id.
        trace: u64,
        /// Which lifecycle phase closed.
        kind: SpanKind,
        /// The emitting process's role.
        role: WriterRole,
        /// The job.
        job: JobId,
        /// The task; 0 for job-wide spans.
        task: TaskId,
    },
}

/// One log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Time since the log's epoch.
    pub t: Duration,
    /// What happened.
    pub kind: EventKind,
}

// ---------------------------------------------------------------------------
// Ring codec: tag byte + t_us + little-endian fields, fixed layout per
// variant, 62 bytes worst case (JobPhases) against the ring's 120-byte
// slot. No serde, no allocation — this runs on the record hot path.

const TAG_WORKER_UP: u8 = 1;
const TAG_WORKER_DOWN: u8 = 2;
const TAG_JOB_SUBMITTED: u8 = 3;
const TAG_JOB_STARTED: u8 = 4;
const TAG_JOB_COMPLETED: u8 = 5;
const TAG_JOB_PHASES: u8 = 6;
const TAG_JOB_REQUEUED: u8 = 7;
const TAG_DEADLINE_EXCEEDED: u8 = 8;
const TAG_WORKER_QUARANTINED: u8 = 9;
const TAG_TASK_STARTED: u8 = 10;
const TAG_RELAY_UP: u8 = 11;
const TAG_RELAY_DOWN: u8 = 12;
const TAG_TASK_ENDED: u8 = 13;
const TAG_GANG_READOPTED: u8 = 14;
const TAG_UP_QUEUE_DROPPED: u8 = 15;
const TAG_SPAN_START: u8 = 16;
const TAG_SPAN_END: u8 = 17;

/// Fixed-size encoder over a stack buffer.
struct Enc<'a> {
    buf: &'a mut [u8; PAYLOAD_BYTES],
    at: usize,
}

impl Enc<'_> {
    #[inline]
    fn u8(&mut self, v: u8) {
        self.buf[self.at] = v;
        self.at += 1;
    }
    #[inline]
    fn u32(&mut self, v: u32) {
        self.buf[self.at..self.at + 4].copy_from_slice(&v.to_le_bytes());
        self.at += 4;
    }
    #[inline]
    fn u64(&mut self, v: u64) {
        self.buf[self.at..self.at + 8].copy_from_slice(&v.to_le_bytes());
        self.at += 8;
    }
    #[inline]
    fn i32(&mut self, v: i32) {
        self.buf[self.at..self.at + 4].copy_from_slice(&v.to_le_bytes());
        self.at += 4;
    }
}

/// Encode one event into `buf`; returns the encoded length.
fn encode_event(t_us: u64, kind: &EventKind, buf: &mut [u8; PAYLOAD_BYTES]) -> usize {
    let mut e = Enc { buf, at: 0 };
    e.u64(t_us);
    match kind {
        EventKind::WorkerUp { worker } => {
            e.u8(TAG_WORKER_UP);
            e.u64(*worker);
        }
        EventKind::WorkerDown { worker } => {
            e.u8(TAG_WORKER_DOWN);
            e.u64(*worker);
        }
        EventKind::JobSubmitted { job, nodes, ppn } => {
            e.u8(TAG_JOB_SUBMITTED);
            e.u64(*job);
            e.u32(*nodes);
            e.u32(*ppn);
        }
        EventKind::JobStarted { job, nodes, ppn } => {
            e.u8(TAG_JOB_STARTED);
            e.u64(*job);
            e.u32(*nodes);
            e.u32(*ppn);
        }
        EventKind::JobCompleted {
            job,
            nodes,
            ppn,
            success,
        } => {
            e.u8(TAG_JOB_COMPLETED);
            e.u64(*job);
            e.u32(*nodes);
            e.u32(*ppn);
            e.u8(*success as u8);
        }
        EventKind::JobPhases {
            job,
            nodes,
            queue_us,
            launch_us,
            pmi_us,
            run_us,
            total_us,
        } => {
            e.u8(TAG_JOB_PHASES);
            e.u64(*job);
            e.u32(*nodes);
            e.u64(*queue_us);
            e.u64(*launch_us);
            e.u64(*run_us);
            e.u64(*total_us);
            e.u8(pmi_us.is_some() as u8);
            e.u64(pmi_us.unwrap_or(0));
        }
        EventKind::JobRequeued { job } => {
            e.u8(TAG_JOB_REQUEUED);
            e.u64(*job);
        }
        EventKind::DeadlineExceeded { job } => {
            e.u8(TAG_DEADLINE_EXCEEDED);
            e.u64(*job);
        }
        EventKind::WorkerQuarantined {
            worker,
            strikes,
            until_ms,
        } => {
            e.u8(TAG_WORKER_QUARANTINED);
            e.u64(*worker);
            e.u32(*strikes);
            e.u64(*until_ms);
        }
        EventKind::TaskStarted {
            task,
            job,
            worker,
            ranks,
        } => {
            e.u8(TAG_TASK_STARTED);
            e.u64(*task);
            e.u64(*job);
            e.u64(*worker);
            e.u32(*ranks);
        }
        EventKind::RelayUp { relay } => {
            e.u8(TAG_RELAY_UP);
            e.u64(*relay);
        }
        EventKind::RelayDown { relay } => {
            e.u8(TAG_RELAY_DOWN);
            e.u64(*relay);
        }
        EventKind::TaskEnded {
            task,
            job,
            worker,
            ranks,
            exit_code,
            trace,
        } => {
            e.u8(TAG_TASK_ENDED);
            e.u64(*task);
            e.u64(*job);
            e.u64(*worker);
            e.u32(*ranks);
            e.i32(*exit_code);
            // Appended last: slots written by earlier builds decode the
            // payload's zero padding here, i.e. the untraced sentinel.
            e.u64(*trace);
        }
        EventKind::GangReadopted { job } => {
            e.u8(TAG_GANG_READOPTED);
            e.u64(*job);
        }
        EventKind::UpQueueDropped { relay, dropped } => {
            e.u8(TAG_UP_QUEUE_DROPPED);
            e.u64(*relay);
            e.u64(*dropped);
        }
        EventKind::SpanStart {
            trace,
            kind,
            role,
            job,
            task,
        } => {
            e.u8(TAG_SPAN_START);
            e.u64(*trace);
            e.u8(kind.code());
            e.u8(role.code() as u8);
            e.u64(*job);
            e.u64(*task);
        }
        EventKind::SpanEnd {
            trace,
            kind,
            role,
            job,
            task,
        } => {
            e.u8(TAG_SPAN_END);
            e.u64(*trace);
            e.u8(kind.code());
            e.u8(role.code() as u8);
            e.u64(*job);
            e.u64(*task);
        }
    }
    e.at
}

/// Bounds-checked decoder over a record payload.
struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Dec<'_> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.at)?;
        self.at += 1;
        Some(v)
    }
    fn u32(&mut self) -> Option<u32> {
        let b = self.buf.get(self.at..self.at + 4)?;
        self.at += 4;
        Some(u32::from_le_bytes(b.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.at..self.at + 8)?;
        self.at += 8;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }
    fn i32(&mut self) -> Option<i32> {
        let b = self.buf.get(self.at..self.at + 4)?;
        self.at += 4;
        Some(i32::from_le_bytes(b.try_into().ok()?))
    }
}

/// Decode one ring payload back into an [`Event`]. `None` on an
/// unknown tag or a short payload (a record from a newer build, or a
/// torn slot that slipped through — the caller counts, not crashes).
fn decode_event(payload: &[u8]) -> Option<Event> {
    let mut d = Dec {
        buf: payload,
        at: 0,
    };
    let t_us = d.u64()?;
    let kind = match d.u8()? {
        TAG_WORKER_UP => EventKind::WorkerUp { worker: d.u64()? },
        TAG_WORKER_DOWN => EventKind::WorkerDown { worker: d.u64()? },
        TAG_JOB_SUBMITTED => EventKind::JobSubmitted {
            job: d.u64()?,
            nodes: d.u32()?,
            ppn: d.u32()?,
        },
        TAG_JOB_STARTED => EventKind::JobStarted {
            job: d.u64()?,
            nodes: d.u32()?,
            ppn: d.u32()?,
        },
        TAG_JOB_COMPLETED => EventKind::JobCompleted {
            job: d.u64()?,
            nodes: d.u32()?,
            ppn: d.u32()?,
            success: d.u8()? != 0,
        },
        TAG_JOB_PHASES => {
            let job = d.u64()?;
            let nodes = d.u32()?;
            let queue_us = d.u64()?;
            let launch_us = d.u64()?;
            let run_us = d.u64()?;
            let total_us = d.u64()?;
            let has_pmi = d.u8()? != 0;
            let pmi = d.u64()?;
            EventKind::JobPhases {
                job,
                nodes,
                queue_us,
                launch_us,
                pmi_us: has_pmi.then_some(pmi),
                run_us,
                total_us,
            }
        }
        TAG_JOB_REQUEUED => EventKind::JobRequeued { job: d.u64()? },
        TAG_DEADLINE_EXCEEDED => EventKind::DeadlineExceeded { job: d.u64()? },
        TAG_WORKER_QUARANTINED => EventKind::WorkerQuarantined {
            worker: d.u64()?,
            strikes: d.u32()?,
            until_ms: d.u64()?,
        },
        TAG_TASK_STARTED => EventKind::TaskStarted {
            task: d.u64()?,
            job: d.u64()?,
            worker: d.u64()?,
            ranks: d.u32()?,
        },
        TAG_RELAY_UP => EventKind::RelayUp { relay: d.u64()? },
        TAG_RELAY_DOWN => EventKind::RelayDown { relay: d.u64()? },
        TAG_TASK_ENDED => EventKind::TaskEnded {
            task: d.u64()?,
            job: d.u64()?,
            worker: d.u64()?,
            ranks: d.u32()?,
            exit_code: d.i32()?,
            trace: d.u64()?,
        },
        TAG_GANG_READOPTED => EventKind::GangReadopted { job: d.u64()? },
        TAG_UP_QUEUE_DROPPED => EventKind::UpQueueDropped {
            relay: d.u64()?,
            dropped: d.u64()?,
        },
        tag @ (TAG_SPAN_START | TAG_SPAN_END) => {
            let trace = d.u64()?;
            let kind = SpanKind::from_code(d.u8()?)?;
            let role = WriterRole::from_code(d.u8()? as u64);
            let job = d.u64()?;
            let task = d.u64()?;
            if tag == TAG_SPAN_START {
                EventKind::SpanStart {
                    trace,
                    kind,
                    role,
                    job,
                    task,
                }
            } else {
                EventKind::SpanEnd {
                    trace,
                    kind,
                    role,
                    job,
                    task,
                }
            }
        }
        _ => return None,
    };
    Some(Event {
        t: Duration::from_micros(t_us),
        kind,
    })
}

/// Flat wire form of one [`Event`] — one JSONL line.
///
/// Deliberately a bag of primitives (no `Duration`, no nested enums):
/// the timestamp is microseconds since the epoch, the kind is a string
/// tag, and every payload field is optional. This keeps each line
/// greppable/`jq`-able and the schema stable as `EventKind` grows —
/// unknown fields are ignored on read, absent ones default to `None`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Microseconds since the log's epoch.
    pub t_us: u64,
    /// Event tag: the `EventKind` variant name.
    pub kind: String,
    /// Worker id (worker/task events).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub worker: Option<u64>,
    /// Relay id (relay events).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub relay: Option<u64>,
    /// Job id (job/task events).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub job: Option<u64>,
    /// Task id (task events).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub task: Option<u64>,
    /// Job node count.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub nodes: Option<u32>,
    /// Job ranks-per-node.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ppn: Option<u32>,
    /// Ranks hosted by a task.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ranks: Option<u32>,
    /// Task exit code.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub exit_code: Option<i32>,
    /// Job success flag.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub success: Option<bool>,
    /// Quarantine strike count.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub strikes: Option<u32>,
    /// Quarantine release time (ms since registry epoch).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub until_ms: Option<u64>,
    /// Queue-wait phase duration (`JobPhases`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub queue_us: Option<u64>,
    /// Launch phase duration (`JobPhases`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub launch_us: Option<u64>,
    /// PMI-negotiation phase duration (`JobPhases`; absent for jobs
    /// that never fence).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub pmi_us: Option<u64>,
    /// Run phase duration (`JobPhases`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub run_us: Option<u64>,
    /// End-to-end duration (`JobPhases`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub total_us: Option<u64>,
    /// Cumulative dropped-frame count (`UpQueueDropped`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dropped: Option<u64>,
    /// Trace id (`SpanStart`/`SpanEnd`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<u64>,
    /// Span phase label (`SpanStart`/`SpanEnd`; [`SpanKind::as_str`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub span: Option<String>,
    /// Emitting process role (`SpanStart`/`SpanEnd`;
    /// [`WriterRole::as_str`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub role: Option<String>,
}

impl From<&Event> for EventRecord {
    fn from(e: &Event) -> Self {
        let mut r = EventRecord {
            t_us: e.t.as_micros() as u64,
            ..EventRecord::default()
        };
        match &e.kind {
            EventKind::WorkerUp { worker } => {
                r.kind = "WorkerUp".into();
                r.worker = Some(*worker);
            }
            EventKind::WorkerDown { worker } => {
                r.kind = "WorkerDown".into();
                r.worker = Some(*worker);
            }
            EventKind::RelayUp { relay } => {
                r.kind = "RelayUp".into();
                r.relay = Some(*relay);
            }
            EventKind::RelayDown { relay } => {
                r.kind = "RelayDown".into();
                r.relay = Some(*relay);
            }
            EventKind::JobSubmitted { job, nodes, ppn } => {
                r.kind = "JobSubmitted".into();
                r.job = Some(*job);
                r.nodes = Some(*nodes);
                r.ppn = Some(*ppn);
            }
            EventKind::JobStarted { job, nodes, ppn } => {
                r.kind = "JobStarted".into();
                r.job = Some(*job);
                r.nodes = Some(*nodes);
                r.ppn = Some(*ppn);
            }
            EventKind::JobCompleted {
                job,
                nodes,
                ppn,
                success,
            } => {
                r.kind = "JobCompleted".into();
                r.job = Some(*job);
                r.nodes = Some(*nodes);
                r.ppn = Some(*ppn);
                r.success = Some(*success);
            }
            EventKind::JobPhases {
                job,
                nodes,
                queue_us,
                launch_us,
                pmi_us,
                run_us,
                total_us,
            } => {
                r.kind = "JobPhases".into();
                r.job = Some(*job);
                r.nodes = Some(*nodes);
                r.queue_us = Some(*queue_us);
                r.launch_us = Some(*launch_us);
                r.pmi_us = *pmi_us;
                r.run_us = Some(*run_us);
                r.total_us = Some(*total_us);
            }
            EventKind::JobRequeued { job } => {
                r.kind = "JobRequeued".into();
                r.job = Some(*job);
            }
            EventKind::DeadlineExceeded { job } => {
                r.kind = "DeadlineExceeded".into();
                r.job = Some(*job);
            }
            EventKind::WorkerQuarantined {
                worker,
                strikes,
                until_ms,
            } => {
                r.kind = "WorkerQuarantined".into();
                r.worker = Some(*worker);
                r.strikes = Some(*strikes);
                r.until_ms = Some(*until_ms);
            }
            EventKind::TaskStarted {
                task,
                job,
                worker,
                ranks,
            } => {
                r.kind = "TaskStarted".into();
                r.task = Some(*task);
                r.job = Some(*job);
                r.worker = Some(*worker);
                r.ranks = Some(*ranks);
            }
            EventKind::TaskEnded {
                task,
                job,
                worker,
                ranks,
                exit_code,
                trace,
            } => {
                r.kind = "TaskEnded".into();
                r.task = Some(*task);
                r.job = Some(*job);
                r.worker = Some(*worker);
                r.ranks = Some(*ranks);
                r.exit_code = Some(*exit_code);
                // The untraced sentinel is omitted, keeping lines from
                // pre-tracing builds byte-identical.
                r.trace = (*trace != 0).then_some(*trace);
            }
            EventKind::GangReadopted { job } => {
                r.kind = "GangReadopted".into();
                r.job = Some(*job);
            }
            EventKind::UpQueueDropped { relay, dropped } => {
                r.kind = "UpQueueDropped".into();
                r.relay = Some(*relay);
                r.dropped = Some(*dropped);
            }
            EventKind::SpanStart {
                trace,
                kind,
                role,
                job,
                task,
            } => {
                r.kind = "SpanStart".into();
                r.trace = Some(*trace);
                r.span = Some(kind.as_str().into());
                r.role = Some(role.as_str().into());
                r.job = Some(*job);
                r.task = Some(*task);
            }
            EventKind::SpanEnd {
                trace,
                kind,
                role,
                job,
                task,
            } => {
                r.kind = "SpanEnd".into();
                r.trace = Some(*trace);
                r.span = Some(kind.as_str().into());
                r.role = Some(role.as_str().into());
                r.job = Some(*job);
                r.task = Some(*task);
            }
        }
        r
    }
}

impl EventRecord {
    /// Reconstruct the in-memory [`Event`]. Fails with `InvalidData` on
    /// an unknown tag or a missing payload field.
    pub fn into_event(self) -> io::Result<Event> {
        let missing = || io::Error::new(io::ErrorKind::InvalidData, "event record missing field");
        let kind = match self.kind.as_str() {
            "WorkerUp" => EventKind::WorkerUp {
                worker: self.worker.ok_or_else(missing)?,
            },
            "WorkerDown" => EventKind::WorkerDown {
                worker: self.worker.ok_or_else(missing)?,
            },
            "RelayUp" => EventKind::RelayUp {
                relay: self.relay.ok_or_else(missing)?,
            },
            "RelayDown" => EventKind::RelayDown {
                relay: self.relay.ok_or_else(missing)?,
            },
            "JobSubmitted" => EventKind::JobSubmitted {
                job: self.job.ok_or_else(missing)?,
                nodes: self.nodes.ok_or_else(missing)?,
                ppn: self.ppn.ok_or_else(missing)?,
            },
            "JobStarted" => EventKind::JobStarted {
                job: self.job.ok_or_else(missing)?,
                nodes: self.nodes.ok_or_else(missing)?,
                ppn: self.ppn.ok_or_else(missing)?,
            },
            "JobCompleted" => EventKind::JobCompleted {
                job: self.job.ok_or_else(missing)?,
                nodes: self.nodes.ok_or_else(missing)?,
                ppn: self.ppn.ok_or_else(missing)?,
                success: self.success.ok_or_else(missing)?,
            },
            "JobPhases" => EventKind::JobPhases {
                job: self.job.ok_or_else(missing)?,
                nodes: self.nodes.ok_or_else(missing)?,
                queue_us: self.queue_us.ok_or_else(missing)?,
                launch_us: self.launch_us.ok_or_else(missing)?,
                pmi_us: self.pmi_us,
                run_us: self.run_us.ok_or_else(missing)?,
                total_us: self.total_us.ok_or_else(missing)?,
            },
            "JobRequeued" => EventKind::JobRequeued {
                job: self.job.ok_or_else(missing)?,
            },
            "DeadlineExceeded" => EventKind::DeadlineExceeded {
                job: self.job.ok_or_else(missing)?,
            },
            "WorkerQuarantined" => EventKind::WorkerQuarantined {
                worker: self.worker.ok_or_else(missing)?,
                strikes: self.strikes.ok_or_else(missing)?,
                until_ms: self.until_ms.ok_or_else(missing)?,
            },
            "TaskStarted" => EventKind::TaskStarted {
                task: self.task.ok_or_else(missing)?,
                job: self.job.ok_or_else(missing)?,
                worker: self.worker.ok_or_else(missing)?,
                ranks: self.ranks.ok_or_else(missing)?,
            },
            "TaskEnded" => EventKind::TaskEnded {
                task: self.task.ok_or_else(missing)?,
                job: self.job.ok_or_else(missing)?,
                worker: self.worker.ok_or_else(missing)?,
                ranks: self.ranks.ok_or_else(missing)?,
                exit_code: self.exit_code.ok_or_else(missing)?,
                // Absent on JSONL from pre-tracing builds.
                trace: self.trace.unwrap_or(0),
            },
            "GangReadopted" => EventKind::GangReadopted {
                job: self.job.ok_or_else(missing)?,
            },
            "UpQueueDropped" => EventKind::UpQueueDropped {
                relay: self.relay.ok_or_else(missing)?,
                dropped: self.dropped.ok_or_else(missing)?,
            },
            tag @ ("SpanStart" | "SpanEnd") => {
                let trace = self.trace.ok_or_else(missing)?;
                let kind = self
                    .span
                    .as_deref()
                    .and_then(SpanKind::from_name)
                    .ok_or_else(missing)?;
                let role = self
                    .role
                    .as_deref()
                    .and_then(role_from_name)
                    .ok_or_else(missing)?;
                let job = self.job.ok_or_else(missing)?;
                let task = self.task.ok_or_else(missing)?;
                if tag == "SpanStart" {
                    EventKind::SpanStart {
                        trace,
                        kind,
                        role,
                        job,
                        task,
                    }
                } else {
                    EventKind::SpanEnd {
                        trace,
                        kind,
                        role,
                        job,
                        task,
                    }
                }
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown event kind {other:?}"),
                ))
            }
        };
        Ok(Event {
            t: Duration::from_micros(self.t_us),
            kind,
        })
    }
}

/// Result of loading a JSONL event stream: the events that parsed plus
/// a count of malformed lines skipped.
#[derive(Debug, Default)]
pub struct JsonlLoad {
    /// Every event that parsed, in file order.
    pub events: Vec<Event>,
    /// Lines that were not valid event records (bad JSON, unknown tag,
    /// missing field) — skipped, like the WAL's torn-tail policy.
    pub skipped: u64,
}

/// Load a JSONL event stream written by [`EventLog::write_jsonl`].
/// Blank lines are ignored; a malformed line no longer fails the whole
/// load — it is skipped and counted in [`JsonlLoad::skipped`], matching
/// the WAL journal's torn-tail recovery policy (a partially flushed
/// final line must not make the rest of a crashed run unreadable).
/// I/O errors still fail.
pub fn read_jsonl(reader: impl BufRead) -> io::Result<JsonlLoad> {
    let mut load = JsonlLoad::default();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = serde_json::from_str::<EventRecord>(&line)
            .ok()
            .and_then(|rec| rec.into_event().ok());
        match parsed {
            Some(event) => load.events.push(event),
            None => load.skipped += 1,
        }
    }
    Ok(load)
}

/// Default ring capacity in slots (2^17 × 128 B = 16 MiB): comfortably
/// larger than the event count of any tier-1 run, so `snapshot()` is
/// lossless there, while bounding memory forever on long-lived daemons.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 17;

/// Shared, thread-safe, append-only event log on a lock-free ring.
///
/// [`EventLog::record`] takes no lock and performs no allocation; any
/// number of readers ([`EventLog::snapshot`], [`EventCursor`]) run
/// concurrently without ever stalling the writer. The ring holds the
/// most recent [`EventLog::capacity`] events — older ones are
/// overwritten, and cursors report how many they missed via
/// [`EventCursor::lapped`].
#[derive(Clone)]
pub struct EventLog {
    /// The instant this handle's timeline anchors to.
    epoch: Instant,
    /// Time already on the journal's clock when this handle opened it
    /// (non-zero only for a re-opened flight-recorder file, so a
    /// restarted daemon continues the crashed one's timeline).
    base: Duration,
    ring: Ring,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

impl EventLog {
    /// A fresh in-memory log whose epoch is now.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A fresh in-memory log retaining at least `capacity` events
    /// (rounded up to a power of two, floor [`jets_ring::MIN_CAPACITY`]).
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            epoch: Instant::now(),
            base: Duration::ZERO,
            ring: Ring::anon(capacity),
        }
    }

    /// A log backed by a `MAP_SHARED` flight-recorder file: every
    /// record lands in kernel-owned pages and survives `kill -9`, for
    /// offline replay with [`read_flight`] / `jets flight dump`.
    /// Re-opening an existing file continues its sequence numbers and
    /// its timeline (timestamps stay relative to the *original* epoch).
    pub fn file_backed(path: &Path, capacity: usize) -> io::Result<Self> {
        Self::file_backed_with_role(path, capacity, WriterRole::Unknown)
    }

    /// [`EventLog::file_backed`] with the writer's process role stamped
    /// into the ring header — the file's *lane* when `jets trace`
    /// merges several processes' flight recorders into one timeline.
    pub fn file_backed_with_role(
        path: &Path,
        capacity: usize,
        role: WriterRole,
    ) -> io::Result<Self> {
        let ring = Ring::create_with_role(path, capacity, role)?;
        let wall_us = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        // For a file created just now this is ~0; for a re-opened one
        // it is the age of the journal, keeping new timestamps past
        // the crashed run's instead of restarting at zero.
        let base = Duration::from_micros(wall_us.saturating_sub(ring.epoch_unix_us()));
        Ok(EventLog {
            epoch: Instant::now(),
            base,
            ring,
        })
    }

    /// The log's epoch (the instant `t == 0`, reconstructed for
    /// re-opened flight files).
    pub fn epoch(&self) -> Instant {
        self.epoch.checked_sub(self.base).unwrap_or(self.epoch)
    }

    /// Time since the epoch.
    pub fn now(&self) -> Duration {
        self.base + self.epoch.elapsed()
    }

    /// Append an event stamped with the current time.
    ///
    /// Hot path: a fixed-layout encode into a stack buffer and one
    /// lock-free ring push — no `Mutex`, no allocation (lint-enforced).
    pub fn record(&self, kind: EventKind) {
        let t_us = self.now().as_micros() as u64;
        let mut buf = [0u8; PAYLOAD_BYTES];
        let len = encode_event(t_us, &kind, &mut buf);
        self.ring.push(&buf[..len]);
    }

    /// Open a traced phase: record a [`EventKind::SpanStart`]. Hot
    /// path with the same contract as [`EventLog::record`] — no lock,
    /// no allocation, one ring push (lint-enforced, rule J8).
    pub fn span_start(
        &self,
        trace: u64,
        kind: SpanKind,
        role: WriterRole,
        job: JobId,
        task: TaskId,
    ) {
        self.record(EventKind::SpanStart {
            trace,
            kind,
            role,
            job,
            task,
        });
    }

    /// Close a traced phase: record a [`EventKind::SpanEnd`]. Same
    /// hot-path contract as [`EventLog::span_start`].
    pub fn span_end(&self, trace: u64, kind: SpanKind, role: WriterRole, job: JobId, task: TaskId) {
        self.record(EventKind::SpanEnd {
            trace,
            kind,
            role,
            job,
            task,
        });
    }

    /// Snapshot the retained window, in recording order. This is a ring
    /// *read* — it copies slots without taking any lock, so a snapshot
    /// of any size never stalls recording. If more than
    /// [`EventLog::capacity`] events were ever recorded, the oldest are
    /// gone from the window (use a flight-recorder file for full
    /// history).
    pub fn snapshot(&self) -> Vec<Event> {
        let replay = self.ring.replay();
        let mut events = Vec::with_capacity(replay.records.len());
        for rec in &replay.records {
            if let Some(ev) = decode_event(rec.payload()) {
                events.push(ev);
            }
        }
        events
    }

    /// Total events ever recorded (including any no longer retained).
    pub fn len(&self) -> usize {
        self.ring.seq() as usize
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events the ring can retain before overwriting the oldest.
    pub fn capacity(&self) -> usize {
        self.ring.capacity() as usize
    }

    /// A cursor over the whole retained window, then the live stream.
    /// Polling never blocks the writer (or anything else).
    pub fn reader(&self) -> EventCursor {
        EventCursor {
            inner: self.ring.reader(),
            decode_errors: 0,
        }
    }

    /// A cursor that skips history and yields only events recorded
    /// after this call — the `jets top` live-tail shape.
    pub fn tail_reader(&self) -> EventCursor {
        EventCursor {
            inner: self.ring.reader_from(self.ring.seq()),
            decode_errors: 0,
        }
    }

    /// Flush a file-backed log to disk now (clean-shutdown nicety; the
    /// mmap survives `kill -9` without it). No-op for in-memory logs.
    pub fn sync(&self) -> io::Result<()> {
        self.ring.sync()
    }

    /// Persist the log as JSONL: one flat [`EventRecord`] object per
    /// line, in recording order. The result round-trips through
    /// [`read_jsonl`] so every [`crate::stats`] series can be recomputed
    /// offline.
    pub fn write_jsonl(&self, writer: &mut impl Write) -> io::Result<()> {
        for event in self.snapshot() {
            let rec = EventRecord::from(&event);
            let line = serde_json::to_string(&rec).map_err(io::Error::other)?;
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()
    }
}

/// A lock-free cursor over an [`EventLog`]'s ring. Each cursor owns its
/// position: polling copies committed slots and never takes a lock, so
/// live consumers (`jets top`, the Prometheus gauges) cannot stall the
/// dispatcher's record path.
pub struct EventCursor {
    inner: RingReader,
    decode_errors: u64,
}

impl EventCursor {
    /// Next event, or `None` when caught up with the writer.
    pub fn poll(&mut self) -> Option<Event> {
        loop {
            let rec = self.inner.poll()?;
            match decode_event(rec.payload()) {
                Some(ev) => return Some(ev),
                None => self.decode_errors += 1,
            }
        }
    }

    /// Events this cursor missed because the writer lapped it.
    pub fn lapped(&self) -> u64 {
        self.inner.lapped()
    }

    /// The sequence number the next poll will look at.
    pub fn position(&self) -> u64 {
        self.inner.position()
    }

    /// Records that could not be decoded (newer build's tags, or torn
    /// slots that slipped past the lap accounting).
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Of the lapped records, those lost mid-copy (the writer moved the
    /// slot stamp during the read) rather than before it.
    pub fn torn(&self) -> u64 {
        self.inner.torn()
    }
}

/// An offline replay of a flight-recorder file (typically from a
/// process that no longer exists — `kill -9`, OOM, power loss).
#[derive(Debug)]
pub struct FlightView {
    /// Every committed, decodable event, in recording order.
    pub events: Vec<Event>,
    /// Slots lost to writes in flight at the moment of death (0 or 1
    /// for a quiescent file; the mmap commits records atomically per
    /// slot, so at most the very last claims can be torn).
    pub torn: u64,
    /// Committed slots whose payload did not decode (a newer build's
    /// event tags, or corruption).
    pub undecodable: u64,
    /// Events overwritten before the crash (total recorded − retained).
    pub overwritten: u64,
    /// Total events ever recorded by the dead process(es).
    pub total_recorded: u64,
    /// Wall-clock microseconds (Unix epoch) of the journal's `t == 0`.
    pub epoch_unix_us: u64,
    /// PID of the most recent writer process.
    pub writer_pid: u64,
    /// The writer's process role — this file's lane in a merged
    /// cross-process trace ([`WriterRole::Unknown`] for legacy files).
    pub role: WriterRole,
}

/// Map a flight-recorder file read-only and replay everything it
/// retains. The file need not come from a clean shutdown — that is the
/// point.
pub fn read_flight(path: &Path) -> io::Result<FlightView> {
    let ring = Ring::open_read(path)?;
    let replay = ring.replay();
    let mut events = Vec::with_capacity(replay.records.len());
    let mut undecodable = 0u64;
    for rec in &replay.records {
        match decode_event(rec.payload()) {
            Some(ev) => events.push(ev),
            None => undecodable += 1,
        }
    }
    Ok(FlightView {
        events,
        torn: replay.torn,
        undecodable,
        overwritten: replay.earliest,
        total_recorded: replay.head,
        epoch_unix_us: ring.epoch_unix_us(),
        writer_pid: ring.writer_pid(),
        role: ring.writer_role(),
    })
}

/// A live follow of *another process's* flight-recorder file: the ring
/// is mapped read-only and the cursor starts at the current head, so
/// polling yields only events the writer records after this call — the
/// `jets flight tail` shape. The writer never knows we exist.
pub struct FlightTail {
    ring: Ring,
    cursor: EventCursor,
}

/// Open `path` read-only and seat a cursor at the live head.
pub fn tail_flight(path: &Path) -> io::Result<FlightTail> {
    let ring = Ring::open_read(path)?;
    let cursor = EventCursor {
        inner: ring.reader_from(ring.seq()),
        decode_errors: 0,
    };
    Ok(FlightTail { ring, cursor })
}

impl FlightTail {
    /// Next event recorded since the last poll, or `None` when caught up.
    pub fn poll(&mut self) -> Option<Event> {
        self.cursor.poll()
    }

    /// Events missed because the writer lapped this cursor (a tail that
    /// polls slower than the writer records).
    pub fn lapped(&self) -> u64 {
        self.cursor.lapped()
    }

    /// Wall-clock microseconds (Unix epoch) of the writer's `t == 0`.
    pub fn epoch_unix_us(&self) -> u64 {
        self.ring.epoch_unix_us()
    }

    /// PID the writer stamped into the header at open.
    pub fn writer_pid(&self) -> u64 {
        self.ring.writer_pid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn records_are_time_ordered() {
        let log = EventLog::new();
        log.record(EventKind::WorkerUp { worker: 1 });
        thread::sleep(Duration::from_millis(2));
        log.record(EventKind::WorkerDown { worker: 1 });
        let evs = log.snapshot();
        assert_eq!(evs.len(), 2);
        assert!(evs[0].t <= evs[1].t);
        assert_eq!(evs[0].kind, EventKind::WorkerUp { worker: 1 });
    }

    #[test]
    fn clones_share_the_log() {
        let log = EventLog::new();
        let log2 = log.clone();
        log2.record(EventKind::JobRequeued { job: 3 });
        assert_eq!(log.len(), 1);
        assert_eq!(log.epoch(), log2.epoch());
    }

    /// Record one of every variant; returns what was recorded, in
    /// order, so callers can compare storage against ground truth.
    fn one_of_each(log: &EventLog) -> Vec<EventKind> {
        let kinds = vec![
            EventKind::WorkerUp { worker: 1 },
            EventKind::RelayUp { relay: 7 },
            EventKind::JobSubmitted {
                job: 2,
                nodes: 4,
                ppn: 2,
            },
            EventKind::JobStarted {
                job: 2,
                nodes: 4,
                ppn: 2,
            },
            EventKind::TaskStarted {
                task: 3,
                job: 2,
                worker: 1,
                ranks: 2,
            },
            EventKind::TaskEnded {
                task: 3,
                job: 2,
                worker: 1,
                ranks: 2,
                exit_code: crate::spec::EXIT_CANCELED,
                trace: 0xDEAD_BEEF_CAFE_F00D,
            },
            EventKind::JobCompleted {
                job: 2,
                nodes: 4,
                ppn: 2,
                success: false,
            },
            EventKind::JobPhases {
                job: 2,
                nodes: 4,
                queue_us: 1_500,
                launch_us: 200,
                pmi_us: Some(900),
                run_us: 10_000,
                total_us: 12_600,
            },
            // A sequential job has no PMI phase: `pmi_us` must
            // round-trip as absent, not as zero.
            EventKind::JobPhases {
                job: 5,
                nodes: 1,
                queue_us: 10,
                launch_us: 5,
                pmi_us: None,
                run_us: 50,
                total_us: 65,
            },
            EventKind::JobRequeued { job: 2 },
            EventKind::DeadlineExceeded { job: 2 },
            EventKind::WorkerQuarantined {
                worker: 1,
                strikes: 3,
                until_ms: 99,
            },
            EventKind::GangReadopted { job: 2 },
            EventKind::UpQueueDropped {
                relay: 7,
                dropped: 31,
            },
            EventKind::SpanStart {
                trace: 0xDEAD_BEEF_CAFE_F00D,
                kind: SpanKind::Exec,
                role: WriterRole::Worker,
                job: 2,
                task: 3,
            },
            EventKind::SpanEnd {
                trace: 0xDEAD_BEEF_CAFE_F00D,
                kind: SpanKind::Exec,
                role: WriterRole::Worker,
                job: 2,
                task: 3,
            },
            EventKind::RelayDown { relay: 7 },
            EventKind::WorkerDown { worker: 1 },
        ];
        for k in &kinds {
            log.record(k.clone());
        }
        kinds
    }

    /// Every `EventKind` variant must survive the JSONL round trip with
    /// its timestamp (at microsecond resolution) and payload intact.
    #[test]
    fn jsonl_round_trips_every_kind() {
        let log = EventLog::new();
        one_of_each(&log);

        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), log.len());

        let load = read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(load.skipped, 0);
        let back = load.events;
        let original = log.snapshot();
        assert_eq!(back.len(), original.len());
        for (b, o) in back.iter().zip(&original) {
            assert_eq!(b.kind, o.kind);
            assert_eq!(b.t.as_micros(), o.t.as_micros());
        }

        // Exhaustiveness guard: this wildcard-free match breaks the
        // build when a variant is added, and the count below fails until
        // the new variant is actually exercised above.
        fn tag(k: &EventKind) -> &'static str {
            match k {
                EventKind::WorkerUp { .. } => "WorkerUp",
                EventKind::WorkerDown { .. } => "WorkerDown",
                EventKind::JobSubmitted { .. } => "JobSubmitted",
                EventKind::JobStarted { .. } => "JobStarted",
                EventKind::JobCompleted { .. } => "JobCompleted",
                EventKind::JobPhases { .. } => "JobPhases",
                EventKind::JobRequeued { .. } => "JobRequeued",
                EventKind::DeadlineExceeded { .. } => "DeadlineExceeded",
                EventKind::WorkerQuarantined { .. } => "WorkerQuarantined",
                EventKind::TaskStarted { .. } => "TaskStarted",
                EventKind::RelayUp { .. } => "RelayUp",
                EventKind::RelayDown { .. } => "RelayDown",
                EventKind::TaskEnded { .. } => "TaskEnded",
                EventKind::GangReadopted { .. } => "GangReadopted",
                EventKind::UpQueueDropped { .. } => "UpQueueDropped",
                EventKind::SpanStart { .. } => "SpanStart",
                EventKind::SpanEnd { .. } => "SpanEnd",
            }
        }
        let covered: std::collections::BTreeSet<&str> =
            original.iter().map(|e| tag(&e.kind)).collect();
        assert_eq!(covered.len(), 17, "a variant is not exercised: {covered:?}");
        // The wire tag written is exactly the variant name.
        for o in &original {
            assert_eq!(EventRecord::from(o).kind, tag(&o.kind));
        }
    }

    /// The ring codec is the *primary* storage now: every variant must
    /// survive the encode → slot → decode trip bit-exactly, and the
    /// worst-case encoding must fit a slot with room to grow. No serde
    /// anywhere on this path, so this test genuinely runs in the
    /// offline stub workspace too.
    #[test]
    fn ring_codec_round_trips_every_kind() {
        let log = EventLog::new();
        let recorded = one_of_each(&log);
        let back = log.snapshot();
        assert_eq!(back.len(), recorded.len(), "nothing lost in the ring");
        for (b, k) in back.iter().zip(&recorded) {
            assert_eq!(&b.kind, k);
        }
        for pair in back.windows(2) {
            assert!(pair[0].t <= pair[1].t, "timestamps stay monotone");
        }

        // Worst-case encoded size stays well inside a 120-byte slot.
        let mut enc = [0u8; PAYLOAD_BYTES];
        let len = encode_event(
            u64::MAX,
            &EventKind::JobPhases {
                job: u64::MAX,
                nodes: u32::MAX,
                queue_us: u64::MAX,
                launch_us: u64::MAX,
                pmi_us: Some(u64::MAX),
                run_us: u64::MAX,
                total_us: u64::MAX,
            },
            &mut enc,
        );
        assert!(len <= PAYLOAD_BYTES, "JobPhases is the largest encoding");
        assert_eq!(len, 62);

        // Garbage payloads decode to None, never panic.
        assert!(decode_event(&[]).is_none());
        assert!(decode_event(&[0xff; 9]).is_none());
        let short = &enc[..len - 1];
        assert!(decode_event(short).is_none(), "truncated field rejected");
    }

    /// Saved logs must feed the stats module unchanged: the recomputed
    /// series from a reloaded log match the in-memory ones.
    #[test]
    fn reloaded_log_recomputes_stats() {
        let log = EventLog::new();
        log.record(EventKind::WorkerUp { worker: 1 });
        log.record(EventKind::TaskStarted {
            task: 1,
            job: 1,
            worker: 1,
            ranks: 4,
        });
        thread::sleep(Duration::from_millis(5));
        log.record(EventKind::TaskEnded {
            task: 1,
            job: 1,
            worker: 1,
            ranks: 4,
            exit_code: 0,
            trace: 0,
        });
        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        let back = read_jsonl(std::io::BufReader::new(&buf[..]))
            .unwrap()
            .events;
        let live = crate::stats::measured_utilization(&log.snapshot(), 4);
        let offline = crate::stats::measured_utilization(&back, 4);
        assert!((live - offline).abs() < 1e-6);
    }

    /// Malformed lines are skipped and counted, never fatal: one torn
    /// tail line must not make a crashed run's log unreadable.
    #[test]
    fn jsonl_skips_and_counts_garbage() {
        let input = concat!(
            "{\"t_us\":1,\"kind\":\"WorkerUp\",\"worker\":1}\n",
            "not json\n",
            "{\"t_us\":2,\"kind\":\"NoSuchKind\"}\n",
            "{\"t_us\":3,\"kind\":\"WorkerUp\"}\n", // missing field
            "\n  \n",
            "{\"t_us\":4,\"kind\":\"WorkerDown\",\"worker\":1}\n",
            "{\"t_us\":5,\"kind\":\"JobRequeued\",\"job\"", // torn tail
        );
        let load = read_jsonl(std::io::BufReader::new(input.as_bytes())).unwrap();
        assert_eq!(load.events.len(), 2, "the good lines load");
        assert_eq!(load.skipped, 4, "every bad line counted");
        assert_eq!(load.events[0].kind, EventKind::WorkerUp { worker: 1 });
        assert_eq!(load.events[1].kind, EventKind::WorkerDown { worker: 1 });

        // Direct record conversion still reports errors precisely.
        let rec = EventRecord {
            kind: "NoSuchKind".into(),
            ..EventRecord::default()
        };
        assert!(rec.into_event().is_err());
        let rec = EventRecord {
            kind: "WorkerUp".into(),
            ..EventRecord::default()
        };
        assert!(rec.into_event().is_err());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let log = EventLog::new();
        let mut handles = Vec::new();
        for w in 0..8u64 {
            let l = log.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    l.record(EventKind::WorkerUp { worker: w });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 800);
        assert_eq!(log.snapshot().len(), 800);
    }

    /// The window is bounded: overflowing it overwrites the oldest
    /// events, `len()` keeps counting, and a cursor reports the lap.
    #[test]
    fn overwrite_oldest_with_lap_accounting() {
        let log = EventLog::with_capacity(1024); // the ring's floor
        assert_eq!(log.capacity(), 1024);
        let mut cursor = log.reader();
        for i in 0..1500u64 {
            log.record(EventKind::WorkerUp { worker: i });
        }
        assert_eq!(log.len(), 1500, "total recorded keeps counting");
        let snap = log.snapshot();
        assert_eq!(snap.len(), 1024, "window holds the newest capacity-many");
        assert_eq!(
            snap[0].kind,
            EventKind::WorkerUp { worker: 476 },
            "oldest retained is total - capacity"
        );
        let mut seen = 0u64;
        while cursor.poll().is_some() {
            seen += 1;
        }
        assert_eq!(seen + cursor.lapped(), 1500, "cursor accounts for the lap");
        assert_eq!(cursor.lapped(), 476);
        assert_eq!(cursor.decode_errors(), 0);
    }

    /// The snapshot-stall satellite: readers hammering `snapshot()` and
    /// cursors must never stall `record`. The writer runs a fixed count
    /// flat-out; the test passes iff it completes with full accounting
    /// while three readers spin — with the old `Mutex<Vec>` log this
    /// shape serialized every snapshot clone against the writer.
    #[test]
    fn snapshot_hammer_never_stalls_the_writer() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let log = EventLog::new();
        let stop = Arc::new(AtomicBool::new(false));
        let mut hammers = Vec::new();
        for _ in 0..2 {
            let l = log.clone();
            let stop = Arc::clone(&stop);
            hammers.push(thread::spawn(move || {
                let mut snaps = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let _ = l.snapshot();
                    snaps += 1;
                }
                snaps
            }));
        }
        let mut cursor = log.reader();
        const TOTAL: u64 = 100_000;
        for i in 0..TOTAL {
            log.record(EventKind::WorkerUp { worker: i });
        }
        stop.store(true, Ordering::Release);
        for h in hammers {
            assert!(h.join().unwrap() > 0, "snapshots ran during the storm");
        }
        let mut seen = 0u64;
        while cursor.poll().is_some() {
            seen += 1;
        }
        assert_eq!(seen + cursor.lapped(), TOTAL);
        assert_eq!(log.len() as u64, TOTAL);
    }

    #[cfg(unix)]
    #[test]
    fn file_backed_log_replays_offline() {
        let path = std::env::temp_dir().join(format!("jets-events-{}.ring", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let log = EventLog::file_backed_with_role(&path, 2048, WriterRole::Dispatcher).unwrap();
            one_of_each(&log);
            assert_eq!(log.len(), 18);
        } // dropped without sync(): the mmap still has everything
        let view = read_flight(&path).unwrap();
        assert_eq!(view.events.len(), 18);
        assert_eq!(view.torn, 0);
        assert_eq!(view.undecodable, 0);
        assert_eq!(view.overwritten, 0);
        assert_eq!(view.total_recorded, 18);
        assert!(view.epoch_unix_us > 0);
        assert_eq!(view.role, WriterRole::Dispatcher, "lane survives replay");
        assert!(view.writer_pid > 0);
        assert_eq!(view.events[0].kind, EventKind::WorkerUp { worker: 1 });

        // Re-opening continues the sequence and the timeline.
        {
            let log = EventLog::file_backed(&path, 2048).unwrap();
            assert_eq!(log.len(), 18);
            let before = view.events.last().unwrap().t;
            log.record(EventKind::WorkerDown { worker: 9 });
            let view2 = read_flight(&path).unwrap();
            assert_eq!(view2.events.len(), 19);
            assert!(
                view2.events.last().unwrap().t >= before,
                "restarted run's clock continues, never rewinds"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
