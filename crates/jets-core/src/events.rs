//! Timestamped event log of dispatcher activity.
//!
//! Every consequential dispatcher action is recorded against a shared
//! epoch. The evaluation section of the paper is computed entirely from
//! such records: utilization (Eq. 1), load level over time (Fig. 13),
//! nodes-available versus running-jobs timelines under fault injection
//! (Fig. 10), and task run-time distributions (Fig. 11). See
//! [`crate::stats`] for the derived series.
//!
//! ## Offline persistence
//!
//! [`EventLog::write_jsonl`] saves the log as one JSON object per line
//! (a flat [`EventRecord`] per event) and [`read_jsonl`] loads it back,
//! so every series in [`crate::stats`] can be recomputed later from a
//! saved run — `jets events --in run.jsonl` does exactly that.

use crate::spec::{JobId, TaskId, WorkerId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A worker registered.
    WorkerUp {
        /// The worker.
        worker: WorkerId,
    },
    /// A worker died or signed off.
    WorkerDown {
        /// The worker.
        worker: WorkerId,
    },
    /// A job entered the queue.
    JobSubmitted {
        /// The job.
        job: JobId,
        /// Its node count.
        nodes: u32,
        /// Its ranks-per-node.
        ppn: u32,
    },
    /// A job's workers were selected and its tasks were shipped.
    JobStarted {
        /// The job.
        job: JobId,
        /// Its node count.
        nodes: u32,
        /// Its ranks-per-node.
        ppn: u32,
    },
    /// A job finished (all tasks reported, or failure was established).
    JobCompleted {
        /// The job.
        job: JobId,
        /// Its node count.
        nodes: u32,
        /// Its ranks-per-node.
        ppn: u32,
        /// Whether every task exited zero.
        success: bool,
    },
    /// Per-phase latency breakdown of a finished job's final attempt,
    /// emitted alongside its terminal [`EventKind::JobCompleted`]. The
    /// same durations feed the live `jets_job_phase_seconds` histograms,
    /// so offline analysis (`jets events --stats`) matches `/metrics`
    /// one-to-one.
    JobPhases {
        /// The job.
        job: JobId,
        /// Its node count (the per-size key used by `--stats`).
        nodes: u32,
        /// Queue wait: last enqueue → workers selected.
        queue_us: u64,
        /// Launch: workers selected → all assignments shipped.
        launch_us: u64,
        /// PMI negotiation: assignments shipped → first barrier
        /// released. `None` for jobs that never fence (sequential).
        pmi_us: Option<u64>,
        /// Run: start of execution → terminal state.
        run_us: u64,
        /// End-to-end: first submission → terminal state (includes
        /// requeued attempts).
        total_us: u64,
    },
    /// A failed job went back into the queue.
    JobRequeued {
        /// The job.
        job: JobId,
    },
    /// A running attempt blew its wall-time budget; its gang was
    /// canceled and the failure charged against the retry budget.
    DeadlineExceeded {
        /// The job.
        job: JobId,
    },
    /// A re-registering worker was benched for killing recent gangs.
    WorkerQuarantined {
        /// The worker (the fresh connection's id).
        worker: WorkerId,
        /// Live strikes against the worker's name.
        strikes: u32,
        /// Release time, milliseconds since the registry epoch.
        until_ms: u64,
    },
    /// One task (proxy or sequential execution) was assigned to a worker.
    TaskStarted {
        /// The task.
        task: TaskId,
        /// Its job.
        job: JobId,
        /// The worker executing it.
        worker: WorkerId,
        /// Ranks this task hosts (1 for sequential tasks).
        ranks: u32,
    },
    /// A relay daemon connected and was assigned an id.
    RelayUp {
        /// The relay (ids share the worker id space).
        relay: WorkerId,
    },
    /// A relay's connection dropped; every worker it fronted is treated
    /// as down.
    RelayDown {
        /// The relay.
        relay: WorkerId,
    },
    /// A task completed (the worker reported `Done`).
    TaskEnded {
        /// The task.
        task: TaskId,
        /// Its job.
        job: JobId,
        /// The worker that executed it.
        worker: WorkerId,
        /// Ranks this task hosted.
        ranks: u32,
        /// Exit code (0 = success).
        exit_code: i32,
    },
    /// A restarted dispatcher re-adopted a journaled in-flight gang: every
    /// member re-registered and claimed its task, so the attempt keeps
    /// running instead of being relaunched.
    GangReadopted {
        /// The job.
        job: JobId,
    },
    /// A relay's bounded upstream queue overflowed and dropped its oldest
    /// frames. Rate-limited to one event per reporting interval per relay;
    /// `dropped` is the cumulative drop count at emission, so consecutive
    /// events show the loss rate.
    UpQueueDropped {
        /// The relay (ids share the worker id space).
        relay: WorkerId,
        /// Cumulative frames dropped by this relay so far.
        dropped: u64,
    },
}

/// One log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Time since the log's epoch.
    pub t: Duration,
    /// What happened.
    pub kind: EventKind,
}

/// Flat wire form of one [`Event`] — one JSONL line.
///
/// Deliberately a bag of primitives (no `Duration`, no nested enums):
/// the timestamp is microseconds since the epoch, the kind is a string
/// tag, and every payload field is optional. This keeps each line
/// greppable/`jq`-able and the schema stable as `EventKind` grows —
/// unknown fields are ignored on read, absent ones default to `None`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Microseconds since the log's epoch.
    pub t_us: u64,
    /// Event tag: the `EventKind` variant name.
    pub kind: String,
    /// Worker id (worker/task events).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub worker: Option<u64>,
    /// Relay id (relay events).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub relay: Option<u64>,
    /// Job id (job/task events).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub job: Option<u64>,
    /// Task id (task events).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub task: Option<u64>,
    /// Job node count.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub nodes: Option<u32>,
    /// Job ranks-per-node.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ppn: Option<u32>,
    /// Ranks hosted by a task.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ranks: Option<u32>,
    /// Task exit code.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub exit_code: Option<i32>,
    /// Job success flag.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub success: Option<bool>,
    /// Quarantine strike count.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub strikes: Option<u32>,
    /// Quarantine release time (ms since registry epoch).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub until_ms: Option<u64>,
    /// Queue-wait phase duration (`JobPhases`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub queue_us: Option<u64>,
    /// Launch phase duration (`JobPhases`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub launch_us: Option<u64>,
    /// PMI-negotiation phase duration (`JobPhases`; absent for jobs
    /// that never fence).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub pmi_us: Option<u64>,
    /// Run phase duration (`JobPhases`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub run_us: Option<u64>,
    /// End-to-end duration (`JobPhases`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub total_us: Option<u64>,
    /// Cumulative dropped-frame count (`UpQueueDropped`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dropped: Option<u64>,
}

impl From<&Event> for EventRecord {
    fn from(e: &Event) -> Self {
        let mut r = EventRecord {
            t_us: e.t.as_micros() as u64,
            ..EventRecord::default()
        };
        match &e.kind {
            EventKind::WorkerUp { worker } => {
                r.kind = "WorkerUp".into();
                r.worker = Some(*worker);
            }
            EventKind::WorkerDown { worker } => {
                r.kind = "WorkerDown".into();
                r.worker = Some(*worker);
            }
            EventKind::RelayUp { relay } => {
                r.kind = "RelayUp".into();
                r.relay = Some(*relay);
            }
            EventKind::RelayDown { relay } => {
                r.kind = "RelayDown".into();
                r.relay = Some(*relay);
            }
            EventKind::JobSubmitted { job, nodes, ppn } => {
                r.kind = "JobSubmitted".into();
                r.job = Some(*job);
                r.nodes = Some(*nodes);
                r.ppn = Some(*ppn);
            }
            EventKind::JobStarted { job, nodes, ppn } => {
                r.kind = "JobStarted".into();
                r.job = Some(*job);
                r.nodes = Some(*nodes);
                r.ppn = Some(*ppn);
            }
            EventKind::JobCompleted {
                job,
                nodes,
                ppn,
                success,
            } => {
                r.kind = "JobCompleted".into();
                r.job = Some(*job);
                r.nodes = Some(*nodes);
                r.ppn = Some(*ppn);
                r.success = Some(*success);
            }
            EventKind::JobPhases {
                job,
                nodes,
                queue_us,
                launch_us,
                pmi_us,
                run_us,
                total_us,
            } => {
                r.kind = "JobPhases".into();
                r.job = Some(*job);
                r.nodes = Some(*nodes);
                r.queue_us = Some(*queue_us);
                r.launch_us = Some(*launch_us);
                r.pmi_us = *pmi_us;
                r.run_us = Some(*run_us);
                r.total_us = Some(*total_us);
            }
            EventKind::JobRequeued { job } => {
                r.kind = "JobRequeued".into();
                r.job = Some(*job);
            }
            EventKind::DeadlineExceeded { job } => {
                r.kind = "DeadlineExceeded".into();
                r.job = Some(*job);
            }
            EventKind::WorkerQuarantined {
                worker,
                strikes,
                until_ms,
            } => {
                r.kind = "WorkerQuarantined".into();
                r.worker = Some(*worker);
                r.strikes = Some(*strikes);
                r.until_ms = Some(*until_ms);
            }
            EventKind::TaskStarted {
                task,
                job,
                worker,
                ranks,
            } => {
                r.kind = "TaskStarted".into();
                r.task = Some(*task);
                r.job = Some(*job);
                r.worker = Some(*worker);
                r.ranks = Some(*ranks);
            }
            EventKind::TaskEnded {
                task,
                job,
                worker,
                ranks,
                exit_code,
            } => {
                r.kind = "TaskEnded".into();
                r.task = Some(*task);
                r.job = Some(*job);
                r.worker = Some(*worker);
                r.ranks = Some(*ranks);
                r.exit_code = Some(*exit_code);
            }
            EventKind::GangReadopted { job } => {
                r.kind = "GangReadopted".into();
                r.job = Some(*job);
            }
            EventKind::UpQueueDropped { relay, dropped } => {
                r.kind = "UpQueueDropped".into();
                r.relay = Some(*relay);
                r.dropped = Some(*dropped);
            }
        }
        r
    }
}

impl EventRecord {
    /// Reconstruct the in-memory [`Event`]. Fails with `InvalidData` on
    /// an unknown tag or a missing payload field.
    pub fn into_event(self) -> io::Result<Event> {
        let missing = || io::Error::new(io::ErrorKind::InvalidData, "event record missing field");
        let kind = match self.kind.as_str() {
            "WorkerUp" => EventKind::WorkerUp {
                worker: self.worker.ok_or_else(missing)?,
            },
            "WorkerDown" => EventKind::WorkerDown {
                worker: self.worker.ok_or_else(missing)?,
            },
            "RelayUp" => EventKind::RelayUp {
                relay: self.relay.ok_or_else(missing)?,
            },
            "RelayDown" => EventKind::RelayDown {
                relay: self.relay.ok_or_else(missing)?,
            },
            "JobSubmitted" => EventKind::JobSubmitted {
                job: self.job.ok_or_else(missing)?,
                nodes: self.nodes.ok_or_else(missing)?,
                ppn: self.ppn.ok_or_else(missing)?,
            },
            "JobStarted" => EventKind::JobStarted {
                job: self.job.ok_or_else(missing)?,
                nodes: self.nodes.ok_or_else(missing)?,
                ppn: self.ppn.ok_or_else(missing)?,
            },
            "JobCompleted" => EventKind::JobCompleted {
                job: self.job.ok_or_else(missing)?,
                nodes: self.nodes.ok_or_else(missing)?,
                ppn: self.ppn.ok_or_else(missing)?,
                success: self.success.ok_or_else(missing)?,
            },
            "JobPhases" => EventKind::JobPhases {
                job: self.job.ok_or_else(missing)?,
                nodes: self.nodes.ok_or_else(missing)?,
                queue_us: self.queue_us.ok_or_else(missing)?,
                launch_us: self.launch_us.ok_or_else(missing)?,
                pmi_us: self.pmi_us,
                run_us: self.run_us.ok_or_else(missing)?,
                total_us: self.total_us.ok_or_else(missing)?,
            },
            "JobRequeued" => EventKind::JobRequeued {
                job: self.job.ok_or_else(missing)?,
            },
            "DeadlineExceeded" => EventKind::DeadlineExceeded {
                job: self.job.ok_or_else(missing)?,
            },
            "WorkerQuarantined" => EventKind::WorkerQuarantined {
                worker: self.worker.ok_or_else(missing)?,
                strikes: self.strikes.ok_or_else(missing)?,
                until_ms: self.until_ms.ok_or_else(missing)?,
            },
            "TaskStarted" => EventKind::TaskStarted {
                task: self.task.ok_or_else(missing)?,
                job: self.job.ok_or_else(missing)?,
                worker: self.worker.ok_or_else(missing)?,
                ranks: self.ranks.ok_or_else(missing)?,
            },
            "TaskEnded" => EventKind::TaskEnded {
                task: self.task.ok_or_else(missing)?,
                job: self.job.ok_or_else(missing)?,
                worker: self.worker.ok_or_else(missing)?,
                ranks: self.ranks.ok_or_else(missing)?,
                exit_code: self.exit_code.ok_or_else(missing)?,
            },
            "GangReadopted" => EventKind::GangReadopted {
                job: self.job.ok_or_else(missing)?,
            },
            "UpQueueDropped" => EventKind::UpQueueDropped {
                relay: self.relay.ok_or_else(missing)?,
                dropped: self.dropped.ok_or_else(missing)?,
            },
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown event kind {other:?}"),
                ))
            }
        };
        Ok(Event {
            t: Duration::from_micros(self.t_us),
            kind,
        })
    }
}

/// Load a JSONL event stream written by [`EventLog::write_jsonl`].
/// Blank lines are skipped; a malformed line fails the whole load.
pub fn read_jsonl(reader: impl BufRead) -> io::Result<Vec<Event>> {
    let mut events = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: EventRecord = serde_json::from_str(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        events.push(rec.into_event()?);
    }
    Ok(events)
}

/// Shared, thread-safe, append-only event log.
#[derive(Clone)]
pub struct EventLog {
    inner: Arc<Inner>,
}

struct Inner {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

impl EventLog {
    /// A fresh log whose epoch is now.
    pub fn new() -> Self {
        EventLog {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The log's epoch.
    pub fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    /// Time since the epoch.
    pub fn now(&self) -> Duration {
        self.inner.epoch.elapsed()
    }

    /// Append an event stamped with the current time.
    pub fn record(&self, kind: EventKind) {
        let t = self.now();
        self.inner.events.lock().push(Event { t, kind });
    }

    /// Snapshot all events recorded so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.events.lock().clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Persist the log as JSONL: one flat [`EventRecord`] object per
    /// line, in recording order. The result round-trips through
    /// [`read_jsonl`] so every [`crate::stats`] series can be recomputed
    /// offline.
    pub fn write_jsonl(&self, writer: &mut impl Write) -> io::Result<()> {
        for event in self.snapshot() {
            let rec = EventRecord::from(&event);
            let line = serde_json::to_string(&rec).map_err(io::Error::other)?;
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn records_are_time_ordered() {
        let log = EventLog::new();
        log.record(EventKind::WorkerUp { worker: 1 });
        thread::sleep(Duration::from_millis(2));
        log.record(EventKind::WorkerDown { worker: 1 });
        let evs = log.snapshot();
        assert_eq!(evs.len(), 2);
        assert!(evs[0].t <= evs[1].t);
        assert_eq!(evs[0].kind, EventKind::WorkerUp { worker: 1 });
    }

    #[test]
    fn clones_share_the_log() {
        let log = EventLog::new();
        let log2 = log.clone();
        log2.record(EventKind::JobRequeued { job: 3 });
        assert_eq!(log.len(), 1);
        assert_eq!(log.epoch(), log2.epoch());
    }

    /// Every `EventKind` variant must survive the JSONL round trip with
    /// its timestamp (at microsecond resolution) and payload intact.
    #[test]
    fn jsonl_round_trips_every_kind() {
        let log = EventLog::new();
        log.record(EventKind::WorkerUp { worker: 1 });
        log.record(EventKind::RelayUp { relay: 7 });
        log.record(EventKind::JobSubmitted {
            job: 2,
            nodes: 4,
            ppn: 2,
        });
        log.record(EventKind::JobStarted {
            job: 2,
            nodes: 4,
            ppn: 2,
        });
        log.record(EventKind::TaskStarted {
            task: 3,
            job: 2,
            worker: 1,
            ranks: 2,
        });
        log.record(EventKind::TaskEnded {
            task: 3,
            job: 2,
            worker: 1,
            ranks: 2,
            exit_code: crate::spec::EXIT_CANCELED,
        });
        log.record(EventKind::JobCompleted {
            job: 2,
            nodes: 4,
            ppn: 2,
            success: false,
        });
        log.record(EventKind::JobPhases {
            job: 2,
            nodes: 4,
            queue_us: 1_500,
            launch_us: 200,
            pmi_us: Some(900),
            run_us: 10_000,
            total_us: 12_600,
        });
        // A sequential job has no PMI phase: `pmi_us` must round-trip
        // as absent, not as zero.
        log.record(EventKind::JobPhases {
            job: 5,
            nodes: 1,
            queue_us: 10,
            launch_us: 5,
            pmi_us: None,
            run_us: 50,
            total_us: 65,
        });
        log.record(EventKind::JobRequeued { job: 2 });
        log.record(EventKind::DeadlineExceeded { job: 2 });
        log.record(EventKind::WorkerQuarantined {
            worker: 1,
            strikes: 3,
            until_ms: 99,
        });
        log.record(EventKind::GangReadopted { job: 2 });
        log.record(EventKind::UpQueueDropped {
            relay: 7,
            dropped: 31,
        });
        log.record(EventKind::RelayDown { relay: 7 });
        log.record(EventKind::WorkerDown { worker: 1 });

        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), log.len());

        let back = read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
        let original = log.snapshot();
        assert_eq!(back.len(), original.len());
        for (b, o) in back.iter().zip(&original) {
            assert_eq!(b.kind, o.kind);
            assert_eq!(b.t.as_micros(), o.t.as_micros());
        }

        // Exhaustiveness guard: this wildcard-free match breaks the
        // build when a variant is added, and the count below fails until
        // the new variant is actually exercised above.
        fn tag(k: &EventKind) -> &'static str {
            match k {
                EventKind::WorkerUp { .. } => "WorkerUp",
                EventKind::WorkerDown { .. } => "WorkerDown",
                EventKind::JobSubmitted { .. } => "JobSubmitted",
                EventKind::JobStarted { .. } => "JobStarted",
                EventKind::JobCompleted { .. } => "JobCompleted",
                EventKind::JobPhases { .. } => "JobPhases",
                EventKind::JobRequeued { .. } => "JobRequeued",
                EventKind::DeadlineExceeded { .. } => "DeadlineExceeded",
                EventKind::WorkerQuarantined { .. } => "WorkerQuarantined",
                EventKind::TaskStarted { .. } => "TaskStarted",
                EventKind::RelayUp { .. } => "RelayUp",
                EventKind::RelayDown { .. } => "RelayDown",
                EventKind::TaskEnded { .. } => "TaskEnded",
                EventKind::GangReadopted { .. } => "GangReadopted",
                EventKind::UpQueueDropped { .. } => "UpQueueDropped",
            }
        }
        let covered: std::collections::BTreeSet<&str> =
            original.iter().map(|e| tag(&e.kind)).collect();
        assert_eq!(covered.len(), 15, "a variant is not exercised: {covered:?}");
        // The wire tag written is exactly the variant name.
        for o in &original {
            assert_eq!(EventRecord::from(o).kind, tag(&o.kind));
        }
    }

    /// Saved logs must feed the stats module unchanged: the recomputed
    /// series from a reloaded log match the in-memory ones.
    #[test]
    fn reloaded_log_recomputes_stats() {
        let log = EventLog::new();
        log.record(EventKind::WorkerUp { worker: 1 });
        log.record(EventKind::TaskStarted {
            task: 1,
            job: 1,
            worker: 1,
            ranks: 4,
        });
        thread::sleep(Duration::from_millis(5));
        log.record(EventKind::TaskEnded {
            task: 1,
            job: 1,
            worker: 1,
            ranks: 4,
            exit_code: 0,
        });
        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        let back = read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
        let live = crate::stats::measured_utilization(&log.snapshot(), 4);
        let offline = crate::stats::measured_utilization(&back, 4);
        assert!((live - offline).abs() < 1e-6);
    }

    #[test]
    fn jsonl_rejects_garbage_and_unknown_kinds() {
        let err = read_jsonl(std::io::BufReader::new(&b"not json\n"[..])).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let rec = EventRecord {
            kind: "NoSuchKind".into(),
            ..EventRecord::default()
        };
        assert!(rec.into_event().is_err());
        // A known kind with a missing payload field is also rejected.
        let rec = EventRecord {
            kind: "WorkerUp".into(),
            ..EventRecord::default()
        };
        assert!(rec.into_event().is_err());
        // Blank lines are tolerated.
        assert!(read_jsonl(std::io::BufReader::new(&b"\n  \n"[..]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let log = EventLog::new();
        let mut handles = Vec::new();
        for w in 0..8u64 {
            let l = log.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    l.record(EventKind::WorkerUp { worker: w });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 800);
    }
}
