//! Timestamped event log of dispatcher activity.
//!
//! Every consequential dispatcher action is recorded against a shared
//! epoch. The evaluation section of the paper is computed entirely from
//! such records: utilization (Eq. 1), load level over time (Fig. 13),
//! nodes-available versus running-jobs timelines under fault injection
//! (Fig. 10), and task run-time distributions (Fig. 11). See
//! [`crate::stats`] for the derived series.

use crate::spec::{JobId, TaskId, WorkerId};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A worker registered.
    WorkerUp {
        /// The worker.
        worker: WorkerId,
    },
    /// A worker died or signed off.
    WorkerDown {
        /// The worker.
        worker: WorkerId,
    },
    /// A job entered the queue.
    JobSubmitted {
        /// The job.
        job: JobId,
        /// Its node count.
        nodes: u32,
        /// Its ranks-per-node.
        ppn: u32,
    },
    /// A job's workers were selected and its tasks were shipped.
    JobStarted {
        /// The job.
        job: JobId,
        /// Its node count.
        nodes: u32,
        /// Its ranks-per-node.
        ppn: u32,
    },
    /// A job finished (all tasks reported, or failure was established).
    JobCompleted {
        /// The job.
        job: JobId,
        /// Its node count.
        nodes: u32,
        /// Its ranks-per-node.
        ppn: u32,
        /// Whether every task exited zero.
        success: bool,
    },
    /// A failed job went back into the queue.
    JobRequeued {
        /// The job.
        job: JobId,
    },
    /// A running attempt blew its wall-time budget; its gang was
    /// canceled and the failure charged against the retry budget.
    DeadlineExceeded {
        /// The job.
        job: JobId,
    },
    /// A re-registering worker was benched for killing recent gangs.
    WorkerQuarantined {
        /// The worker (the fresh connection's id).
        worker: WorkerId,
        /// Live strikes against the worker's name.
        strikes: u32,
        /// Release time, milliseconds since the registry epoch.
        until_ms: u64,
    },
    /// One task (proxy or sequential execution) was assigned to a worker.
    TaskStarted {
        /// The task.
        task: TaskId,
        /// Its job.
        job: JobId,
        /// The worker executing it.
        worker: WorkerId,
        /// Ranks this task hosts (1 for sequential tasks).
        ranks: u32,
    },
    /// A task completed (the worker reported `Done`).
    TaskEnded {
        /// The task.
        task: TaskId,
        /// Its job.
        job: JobId,
        /// The worker that executed it.
        worker: WorkerId,
        /// Ranks this task hosted.
        ranks: u32,
        /// Exit code (0 = success).
        exit_code: i32,
    },
}

/// One log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Time since the log's epoch.
    pub t: Duration,
    /// What happened.
    pub kind: EventKind,
}

/// Shared, thread-safe, append-only event log.
#[derive(Clone)]
pub struct EventLog {
    inner: Arc<Inner>,
}

struct Inner {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

impl EventLog {
    /// A fresh log whose epoch is now.
    pub fn new() -> Self {
        EventLog {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The log's epoch.
    pub fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    /// Time since the epoch.
    pub fn now(&self) -> Duration {
        self.inner.epoch.elapsed()
    }

    /// Append an event stamped with the current time.
    pub fn record(&self, kind: EventKind) {
        let t = self.now();
        self.inner.events.lock().push(Event { t, kind });
    }

    /// Snapshot all events recorded so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.events.lock().clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn records_are_time_ordered() {
        let log = EventLog::new();
        log.record(EventKind::WorkerUp { worker: 1 });
        thread::sleep(Duration::from_millis(2));
        log.record(EventKind::WorkerDown { worker: 1 });
        let evs = log.snapshot();
        assert_eq!(evs.len(), 2);
        assert!(evs[0].t <= evs[1].t);
        assert_eq!(evs[0].kind, EventKind::WorkerUp { worker: 1 });
    }

    #[test]
    fn clones_share_the_log() {
        let log = EventLog::new();
        let log2 = log.clone();
        log2.record(EventKind::JobRequeued { job: 3 });
        assert_eq!(log.len(), 1);
        assert_eq!(log.epoch(), log2.epoch());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let log = EventLog::new();
        let mut handles = Vec::new();
        for w in 0..8u64 {
            let l = log.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    l.record(EventKind::WorkerUp { worker: w });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 800);
    }
}
