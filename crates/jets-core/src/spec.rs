//! Job specifications and the stand-alone input-file format.
//!
//! The `jets` tool is driven by a text file of command lines, one job per
//! line (Section 5.1 of the paper):
//!
//! ```text
//! MPI: 4 namd2.sh input-1.pdb output-1.log
//! MPI: 8 namd2.sh input-2.pdb output-2.log
//! MPI: 6 ppn=2 namd2.sh input-3.pdb output-3.log
//! post-process.sh output-1.log
//! ```
//!
//! `MPI: <nodes> [ppn=<k>] <cmd> <args...>` declares a parallel job of
//! `nodes × ppn` ranks; a bare command line declares a sequential job.
//! Hostnames are never specified — the dispatcher assembles groups from
//! whatever workers are available at run time. A command whose program
//! begins with `@` names a *builtin* application registered with the
//! worker's executor instead of an executable on disk (used by the
//! simulated-allocation substrate).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a submitted job.
pub type JobId = u64;
/// Identifier of one task (one proxy launch or one sequential execution).
pub type TaskId = u64;
/// Identifier the dispatcher assigns to a registered worker.
pub type WorkerId = u64;

/// A file to place on node-local storage before a task runs (paper
/// Section 5, feature 2: caching libraries, tools, and user data on
/// node-local storage "boosts startup performance and thus utilization
/// for ensembles of short jobs").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageFile {
    /// Path on the shared filesystem.
    pub source: String,
    /// Name inside the node-local cache directory.
    pub name: String,
}

impl StageFile {
    /// Stage `source` under its own file name.
    pub fn new(source: impl Into<String>) -> StageFile {
        let source = source.into();
        let name = std::path::Path::new(&source)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| source.clone());
        StageFile { source, name }
    }

    /// Stage `source` under an explicit local `name`.
    pub fn named(source: impl Into<String>, name: impl Into<String>) -> StageFile {
        StageFile {
            source: source.into(),
            name: name.into(),
        }
    }
}

/// What a task runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommandSpec {
    /// Execute a program on disk (real-process mode).
    Exec {
        /// Path or name of the executable.
        program: String,
        /// Command-line arguments.
        args: Vec<String>,
        /// Additional environment variables.
        env: Vec<(String, String)>,
    },
    /// Run an application registered in the worker's in-process registry
    /// (simulated-allocation mode).
    Builtin {
        /// Registered application name.
        app: String,
        /// Application arguments.
        args: Vec<String>,
        /// Additional environment variables.
        env: Vec<(String, String)>,
    },
}

impl CommandSpec {
    /// An `Exec` command with no extra environment.
    pub fn exec(program: impl Into<String>, args: Vec<String>) -> Self {
        CommandSpec::Exec {
            program: program.into(),
            args,
            env: Vec::new(),
        }
    }

    /// A `Builtin` command with no extra environment.
    pub fn builtin(app: impl Into<String>, args: Vec<String>) -> Self {
        CommandSpec::Builtin {
            app: app.into(),
            args,
            env: Vec::new(),
        }
    }

    /// The program or application name.
    pub fn name(&self) -> &str {
        match self {
            CommandSpec::Exec { program, .. } => program,
            CommandSpec::Builtin { app, .. } => app,
        }
    }

    /// The argument list.
    pub fn args(&self) -> &[String] {
        match self {
            CommandSpec::Exec { args, .. } | CommandSpec::Builtin { args, .. } => args,
        }
    }

    /// Extra environment entries.
    pub fn env(&self) -> &[(String, String)] {
        match self {
            CommandSpec::Exec { env, .. } | CommandSpec::Builtin { env, .. } => env,
        }
    }
}

/// A job to be scheduled: `nodes` workers, `ppn` ranks per worker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Number of workers (nodes) to aggregate.
    pub nodes: u32,
    /// Ranks per node; total MPI size is `nodes * ppn`.
    pub ppn: u32,
    /// What each rank runs.
    pub cmd: CommandSpec,
    /// Scheduling priority (higher runs earlier under
    /// [`crate::queue::QueuePolicy::PriorityBackfill`]; ignored by FIFO).
    pub priority: i32,
    /// How many times the job may be requeued after a worker failure.
    pub max_retries: u32,
    /// Launch through the MPI path (PMI server + proxies) even for a
    /// single rank — `mpiexec -n 1` still gives its process PMI. Forced
    /// on when `nodes × ppn > 1`.
    pub mpi: bool,
    /// Files to stage to node-local storage before the task runs.
    #[serde(default)]
    pub stage: Vec<StageFile>,
    /// Wall-time budget per attempt, in milliseconds. When an attempt
    /// runs longer the dispatcher cancels the whole gang and the failure
    /// counts against `max_retries` (a requeued attempt gets a fresh
    /// budget). `None` means no deadline.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A sequential (single-node, single-rank) job.
    pub fn sequential(cmd: CommandSpec) -> Self {
        JobSpec {
            nodes: 1,
            ppn: 1,
            cmd,
            priority: 0,
            max_retries: 0,
            mpi: false,
            stage: Vec::new(),
            deadline_ms: None,
        }
    }

    /// An MPI job over `nodes` workers, one rank each.
    pub fn mpi(nodes: u32, cmd: CommandSpec) -> Self {
        JobSpec {
            nodes,
            ppn: 1,
            cmd,
            priority: 0,
            max_retries: 0,
            mpi: true,
            stage: Vec::new(),
            deadline_ms: None,
        }
    }

    /// An MPI job over `nodes` workers with `ppn` ranks per worker.
    pub fn mpi_ppn(nodes: u32, ppn: u32, cmd: CommandSpec) -> Self {
        JobSpec {
            nodes,
            ppn,
            cmd,
            priority: 0,
            max_retries: 0,
            mpi: true,
            stage: Vec::new(),
            deadline_ms: None,
        }
    }

    /// Builder-style staging manifest.
    pub fn with_stage(mut self, stage: Vec<StageFile>) -> Self {
        self.stage = stage;
        self
    }

    /// Builder-style retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Builder-style priority.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Builder-style per-attempt wall-time deadline.
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.deadline_ms = Some(deadline.as_millis() as u64);
        self
    }

    /// Total number of MPI ranks (tasks) this job launches.
    pub fn size(&self) -> u32 {
        self.nodes * self.ppn
    }

    /// True when the job needs MPI wire-up (PMI server and proxies).
    pub fn is_mpi(&self) -> bool {
        self.mpi || self.size() > 1
    }
}

/// Error from parsing a job input file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse the stand-alone `jets` input format into job specs.
pub fn parse_input(text: &str) -> Result<Vec<JobSpec>, ParseError> {
    let mut jobs = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| ParseError {
            line: lineno,
            message,
        };
        if let Some(rest) = line.strip_prefix("MPI:") {
            let mut tokens = rest.split_whitespace();
            let nodes: u32 = tokens
                .next()
                .ok_or_else(|| err("MPI: line needs a node count".to_string()))?
                .parse()
                .map_err(|_| err("node count must be a positive integer".to_string()))?;
            if nodes == 0 {
                return Err(err("node count must be at least 1".to_string()));
            }
            let mut ppn = 1u32;
            let mut words: Vec<String> = Vec::new();
            for t in tokens {
                if words.is_empty() {
                    if let Some(v) = t.strip_prefix("ppn=") {
                        ppn = v
                            .parse()
                            .map_err(|_| err("ppn must be a positive integer".to_string()))?;
                        if ppn == 0 {
                            return Err(err("ppn must be at least 1".to_string()));
                        }
                        continue;
                    }
                }
                words.push(t.to_string());
            }
            if words.is_empty() {
                return Err(err("MPI: line needs a command".to_string()));
            }
            let cmd = command_from_words(words);
            jobs.push(JobSpec::mpi_ppn(nodes, ppn, cmd));
        } else {
            let words: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            let cmd = command_from_words(words);
            jobs.push(JobSpec::sequential(cmd));
        }
    }
    Ok(jobs)
}

fn command_from_words(mut words: Vec<String>) -> CommandSpec {
    let program = words.remove(0);
    if let Some(app) = program.strip_prefix('@') {
        CommandSpec::builtin(app, words)
    } else {
        CommandSpec::exec(program, words)
    }
}

// ---------------------------------------------------------------------------
// Exit-code registry.
//
// The dispatcher synthesizes *negative* exit codes for tasks that never
// produced one of their own; they can't collide with a real process
// status (0..=255) or the worker's positive spawn-failure conventions.
// This table is the single place such sentinels may be written as
// literals — jets-lint rule J5 (`exit-code`) flags the raw numbers
// anywhere else in the tree.
// ---------------------------------------------------------------------------

/// Synthetic exit code the dispatcher records when a worker dies (EOF,
/// error, or heartbeat silence) while its task was in flight.
pub const EXIT_WORKER_LOST: i32 = -127;
/// Synthetic exit code for an assignment that could not be delivered:
/// the worker vanished between parking and assignment.
pub const EXIT_UNDELIVERABLE: i32 = -128;
/// Exit code for a task killed by gang cancellation (a peer worker died
/// or the assignment was partially undeliverable). Recorded by the
/// dispatcher when it sends a `Cancel` envelope and reported by the
/// worker once the kill lands.
pub const EXIT_CANCELED: i32 = -125;
/// Exit code for a task killed because its job exceeded its wall-time
/// deadline ([`JobSpec::deadline_ms`]).
pub const EXIT_DEADLINE: i32 = -126;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example_file() {
        let text = "\
MPI: 4 namd2.sh input-1.pdb output-1.log
MPI: 8 namd2.sh input-2.pdb output-2.log
MPI: 6 namd2.sh input-3.pdb output-3.log
";
        let jobs = parse_input(text).unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].nodes, 4);
        assert_eq!(jobs[1].nodes, 8);
        assert_eq!(jobs[2].nodes, 6);
        for j in &jobs {
            assert_eq!(j.ppn, 1);
            assert_eq!(j.cmd.name(), "namd2.sh");
            assert!(j.is_mpi());
        }
        assert_eq!(
            jobs[0].cmd.args(),
            &["input-1.pdb".to_string(), "output-1.log".to_string()]
        );
    }

    #[test]
    fn parses_sequential_lines() {
        let jobs = parse_input("echo hello world\n").unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].nodes, 1);
        assert!(!jobs[0].is_mpi());
        assert_eq!(jobs[0].cmd.name(), "echo");
    }

    #[test]
    fn parses_ppn_option() {
        let jobs = parse_input("MPI: 6 ppn=2 app x\n").unwrap();
        assert_eq!(jobs[0].nodes, 6);
        assert_eq!(jobs[0].ppn, 2);
        assert_eq!(jobs[0].size(), 12);
        assert_eq!(jobs[0].cmd.args(), &["x".to_string()]);
    }

    #[test]
    fn at_sign_selects_builtin() {
        let jobs = parse_input("MPI: 2 @sleep 100\n").unwrap();
        assert!(matches!(
            &jobs[0].cmd,
            CommandSpec::Builtin { app, .. } if app == "sleep"
        ));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let jobs = parse_input("# a comment\n\n  \nMPI: 1 x\n").unwrap();
        assert_eq!(jobs.len(), 1);
    }

    #[test]
    fn rejects_zero_nodes() {
        let e = parse_input("MPI: 0 x\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("at least 1"));
    }

    #[test]
    fn rejects_missing_command() {
        assert!(parse_input("MPI: 4\n").is_err());
        assert!(parse_input("MPI: 4 ppn=2\n").is_err());
    }

    #[test]
    fn rejects_bad_node_count() {
        let e = parse_input("MPI: four x\n").unwrap_err();
        assert!(e.message.contains("positive integer"));
    }

    #[test]
    fn ppn_only_recognized_before_command() {
        // `ppn=2` after the program is an ordinary argument.
        let jobs = parse_input("MPI: 2 prog ppn=2\n").unwrap();
        assert_eq!(jobs[0].ppn, 1);
        assert_eq!(jobs[0].cmd.args(), &["ppn=2".to_string()]);
    }

    #[test]
    fn spec_builders() {
        let s = JobSpec::mpi_ppn(4, 2, CommandSpec::builtin("b", vec![]))
            .with_retries(3)
            .with_priority(5);
        assert_eq!(s.size(), 8);
        assert_eq!(s.max_retries, 3);
        assert_eq!(s.priority, 5);
    }

    #[test]
    fn command_spec_serde_round_trip() {
        let c = CommandSpec::Exec {
            program: "namd2".into(),
            args: vec!["a b".into()],
            env: vec![("K".into(), "V".into())],
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: CommandSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
