//! The dispatcher's ready list: workers parked on a `Request`.
//!
//! The seed implementation kept a plain `Vec<WorkerId>` and paid
//! `O(ready)` per scheduling decision: a full rebuild of a candidate
//! vector (with cloned location `String`s) plus an `O(n)` `Vec::remove`
//! per chosen worker. [`ReadyList`] replaces it with a `VecDeque` of
//! `(WorkerId, LocId)` entries — locations interned, see
//! [`crate::group::LocationInterner`] — and a membership set, giving:
//!
//! * **O(1) park** with duplicate suppression (a worker that somehow
//!   issues two `Request`s cannot be scheduled twice);
//! * **O(chosen) dequeue** for the FCFS fast path ([`ReadyList::take_front`]);
//! * **one O(n) sweep per job** — not per worker — for arbitrary index
//!   selections ([`ReadyList::take_indices`]);
//! * **O(n) removal** on worker death, preserving order.
//!
//! Invariants (exercised by `tests/ready_proptest.rs`):
//!
//! * every parked worker appears in the deque exactly once;
//! * take/remove never report a worker that is still parked, so a worker
//!   can never be double-assigned;
//! * FCFS order is arrival order: `take_front` always yields the
//!   longest-parked workers first.

use crate::group::LocId;
use crate::spec::WorkerId;
use std::collections::{HashSet, VecDeque};

/// Parked `Request`s, oldest first, with interned locations.
#[derive(Debug, Default)]
pub struct ReadyList {
    /// Parked workers in arrival order.
    entries: VecDeque<(WorkerId, LocId)>,
    /// Exactly the workers present in `entries`.
    parked: HashSet<WorkerId>,
}

impl ReadyList {
    /// An empty ready list.
    pub fn new() -> Self {
        ReadyList::default()
    }

    /// Number of parked workers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no worker is parked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when `worker` is parked.
    pub fn contains(&self, worker: WorkerId) -> bool {
        self.parked.contains(&worker)
    }

    /// Park a worker at the back. Returns `false` (and changes nothing)
    /// if it is already parked — duplicate `Request`s must not create a
    /// second schedulable entry.
    pub fn park(&mut self, worker: WorkerId, loc: LocId) -> bool {
        if !self.parked.insert(worker) {
            return false;
        }
        self.entries.push_back((worker, loc));
        true
    }

    /// Remove a worker wherever it is parked (worker death). Returns
    /// `true` if it was present.
    pub fn remove(&mut self, worker: WorkerId) -> bool {
        if !self.parked.remove(&worker) {
            return false;
        }
        self.entries.retain(|&(w, _)| w != worker);
        true
    }

    /// The parked entries, oldest first, as one contiguous slice (for
    /// group selection over `(worker, loc)` pairs).
    pub fn entries(&mut self) -> &[(WorkerId, LocId)] {
        self.entries.make_contiguous()
    }

    /// Dequeue the `n` longest-parked workers into `out` (appended,
    /// oldest first). The FCFS fast path: no candidate vector, no index
    /// juggling. Panics if fewer than `n` workers are parked.
    pub fn take_front(&mut self, n: usize, out: &mut Vec<WorkerId>) {
        assert!(n <= self.entries.len(), "take_front past the ready list");
        for _ in 0..n {
            let (w, _) = self.entries.pop_front().expect("length checked");
            self.parked.remove(&w);
            out.push(w);
        }
    }

    /// Dequeue the workers at `indices` (which must be strictly
    /// ascending and in range) into `out`, appended oldest-first, with a
    /// single sweep over the deque.
    pub fn take_indices(&mut self, indices: &[usize], out: &mut Vec<WorkerId>) {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        let ReadyList { entries, parked } = self;
        let mut next = 0usize; // cursor into `indices`
        let mut idx = 0usize; // current entry index
        entries.retain(|&(w, _)| {
            let chosen = next < indices.len() && indices[next] == idx;
            if chosen {
                next += 1;
                parked.remove(&w);
                out.push(w);
            }
            idx += 1;
            !chosen
        });
        assert!(
            next == indices.len(),
            "take_indices index out of range: matched {next} of {}",
            indices.len()
        );
    }

    /// Iterate the parked workers, oldest first (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.entries.iter().map(|&(w, _)| w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn park_is_fifo_and_deduplicates() {
        let mut r = ReadyList::new();
        assert!(r.park(1, 0));
        assert!(r.park(2, 1));
        assert!(!r.park(1, 0), "double park must be refused");
        assert_eq!(r.len(), 2);
        assert!(r.contains(1));
        let mut out = Vec::new();
        r.take_front(2, &mut out);
        assert_eq!(out, vec![1, 2]);
        assert!(r.is_empty());
        assert!(!r.contains(1));
    }

    #[test]
    fn reparking_after_take_works() {
        let mut r = ReadyList::new();
        r.park(5, 0);
        let mut out = Vec::new();
        r.take_front(1, &mut out);
        assert!(r.park(5, 0), "taken worker may park again");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn remove_unparks_and_preserves_order() {
        let mut r = ReadyList::new();
        for w in 1..=4 {
            r.park(w, 0);
        }
        assert!(r.remove(2));
        assert!(!r.remove(2));
        let mut out = Vec::new();
        r.take_front(3, &mut out);
        assert_eq!(out, vec![1, 3, 4]);
    }

    #[test]
    fn take_indices_sweeps_once_in_order() {
        let mut r = ReadyList::new();
        for w in 10..20 {
            r.park(w, (w % 3) as LocId);
        }
        let mut out = Vec::new();
        r.take_indices(&[0, 3, 4, 9], &mut out);
        assert_eq!(out, vec![10, 13, 14, 19]);
        assert_eq!(r.len(), 6);
        let remaining: Vec<WorkerId> = r.iter().collect();
        assert_eq!(remaining, vec![11, 12, 15, 16, 17, 18]);
        for w in &out {
            assert!(!r.contains(*w));
        }
    }

    #[test]
    fn entries_expose_locations() {
        let mut r = ReadyList::new();
        r.park(1, 7);
        r.park(2, 9);
        assert_eq!(r.entries(), &[(1, 7), (2, 9)]);
    }
}
