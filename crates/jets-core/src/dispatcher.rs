//! The JETS engine: accepts workers, aggregates them, launches jobs.
//!
//! Pipeline stages, each arbitrarily concurrent (paper Section 3,
//! principles 1–2):
//!
//! * **Socket management** — a fixed handful of `jets-reactor` event
//!   loops multiplexing every worker and relay connection: nonblocking
//!   reads reassemble frames across wakeups, writes drain bounded
//!   per-connection outboxes. The thread bill is O(event loops), not
//!   O(connections).
//! * **Handler processing** — job submission (API or input file) feeds the
//!   [`crate::queue::JobQueue`]; worker `Request`s park in the ready list;
//!   `try_schedule` matches the two under the scheduling lock.
//! * **External process management** — each MPI job gets a background PMI
//!   server (the `mpiexec` process of the paper, see `jets-pmi`), whose
//!   manual-launcher proxy commands are shipped to the group's workers.
//!
//! ## Locking domains (see `docs/performance.md`)
//!
//! The paper's throughput claim (Figures 6 and 8) lives or dies on how
//! little the central dispatcher serializes, so shared state is split by
//! access pattern instead of held under one global mutex:
//!
//! * **`sched` lock** — queue + ready list + registry + connections +
//!   in-flight bookkeeping: everything a scheduling decision reads.
//! * **`book` lock** — job records and the outstanding count: what the
//!   client-facing API (`wait_idle`, `wait_job`, `records`) polls. Lock
//!   order is always `sched` → `book`, never the reverse.
//! * **no lock** — worker liveness. Each `Heartbeat` is one relaxed
//!   atomic store through a [`crate::registry::HeartbeatHandle`]; a
//!   heartbeat storm from ten thousand pilots cannot contend with
//!   scheduling.
//!
//! `Request` handling is *coalesced*: readers push their worker id onto a
//! lock-free queue and ring a scheduling doorbell; a storm of N parked
//! workers triggers one batched scheduling pass, not N serialized ones.
//!
//! Fault tolerance: a worker death (socket EOF, error, or heartbeat
//! silence) marks its in-flight job failed, aborts the job's PMI server so
//! peer ranks unblock, and requeues the job at the front of the queue if
//! it has retry budget left.

use crate::events::{EventCursor, EventKind, EventLog, SpanKind};
use crate::group::{select_group_ids, GroupScratch, GroupingPolicy};
use crate::journal::{self, FsyncPolicy, Journal, Record};
use crate::metrics::DispatcherMetrics;
use crate::protocol::{
    decode_msg, encode_msg_buf, DispatcherMsg, TaskAssignment, TaskKind, WorkerMsg, EXIT_CANCELED,
    EXIT_DEADLINE, EXIT_UNDELIVERABLE, EXIT_WORKER_LOST, MAX_FRAME_BYTES,
};
use crate::queue::{JobQueue, QueuePolicy, QueuedJob};
use crate::ready::ReadyList;
use crate::registry::{HeartbeatHandle, QuarantinePolicy, Registry, WorkerState};
use crate::spec::{JobId, JobSpec, TaskId, WorkerId};
use crossbeam::queue::SegQueue;
use jets_obs::MetricsServer;
use jets_pmi::{ManualLauncher, PmiServer, PmiServerConfig, RankLayout};
use jets_reactor::{CloseReason, ConnHandler, Flow, Outbox, Reactor, ReactorConfig, ReactorStats};
use jets_ring::WriterRole;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Tuning knobs for a dispatcher instance.
#[derive(Debug, Clone)]
pub struct DispatcherConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub bind_addr: String,
    /// Pending-job queue discipline.
    pub queue_policy: QueuePolicy,
    /// Worker-group selection policy.
    pub grouping: GroupingPolicy,
    /// If set, workers silent for longer than this are declared hung and
    /// disregarded. `None` disables hang detection (socket EOF still
    /// detects outright death).
    pub heartbeat_timeout: Option<Duration>,
    /// Patience for PMI fences inside launched MPI jobs.
    pub pmi_fence_timeout: Duration,
    /// When set, each task's captured standard output is also written to
    /// `<dir>/job<J>.task<T>.out` — the paper's "into a file" step of the
    /// output path (Section 6.1.6).
    pub stdout_dir: Option<std::path::PathBuf>,
    /// Bench policy for workers whose name keeps killing gangs; `None`
    /// disables quarantine (every registration is admitted `Idle`).
    pub quarantine: Option<QuarantinePolicy>,
    /// Period of the monitor loop that enforces hang detection, job
    /// deadlines, and quarantine release.
    pub monitor_tick: Duration,
    /// Reactor event-loop threads multiplexing every connection. This —
    /// not the connection count — is the dispatcher's thread bill for
    /// socket handling.
    pub event_loops: usize,
    /// Bounded per-connection outbound buffer, in bytes. A peer that
    /// stops reading fills it and is disconnected (the slow-consumer
    /// policy) instead of growing dispatcher memory without limit.
    pub outbox_limit: usize,
    /// Path of the crash-recovery write-ahead journal. When set, every
    /// job state transition is appended before it becomes externally
    /// visible, and a restart with the same path replays the journal to
    /// rebuild queue and in-flight state (see `docs/fault-tolerance.md`).
    /// `None` disables durability entirely.
    pub journal: Option<std::path::PathBuf>,
    /// When journal appends reach the disk (ignored without `journal`).
    pub fsync_policy: FsyncPolicy,
    /// How long a restarted dispatcher waits for surviving workers to
    /// re-register and claim their in-flight tasks before cancelling and
    /// requeueing whatever went unclaimed. Scheduling is paused for the
    /// duration (ends early once every orphaned gang is resolved).
    pub reconcile_window: Duration,
    /// Path of the mmap-backed flight-recorder file. When set, the
    /// event log's ring lives in a `MAP_SHARED` mapping of this file:
    /// every recorded event survives `kill -9` and the file replays
    /// offline with `jets flight dump` (see `docs/observability.md`).
    /// `None` keeps the ring in anonymous memory.
    pub flight_recorder: Option<std::path::PathBuf>,
    /// Events the ring retains before overwriting the oldest (rounded
    /// up to a power of two).
    pub flight_capacity: usize,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        DispatcherConfig {
            bind_addr: "127.0.0.1:0".to_string(),
            queue_policy: QueuePolicy::Fifo,
            grouping: GroupingPolicy::Fcfs,
            heartbeat_timeout: None,
            pmi_fence_timeout: Duration::from_secs(60),
            stdout_dir: None,
            quarantine: Some(QuarantinePolicy::default()),
            monitor_tick: Duration::from_millis(25),
            event_loops: 2,
            outbox_limit: 16 * 1024 * 1024,
            journal: None,
            fsync_policy: FsyncPolicy::Always,
            reconcile_window: Duration::from_secs(2),
            flight_recorder: None,
            flight_capacity: crate::events::DEFAULT_EVENT_CAPACITY,
        }
    }
}

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Pending,
    /// Tasks shipped to workers.
    Running,
    /// All tasks exited zero.
    Succeeded,
    /// A task failed or a worker died, and retries were exhausted.
    Failed,
}

/// What the dispatcher remembers about a job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job.
    pub id: JobId,
    /// Its specification.
    pub spec: JobSpec,
    /// Current status.
    pub status: JobStatus,
    /// Launch attempts made so far.
    pub attempts: u32,
    /// Wall time of the final (successful or last) attempt.
    pub wall: Option<Duration>,
    /// Exit codes reported by the final attempt's tasks.
    pub exit_codes: Vec<i32>,
    /// Captured standard-output tails from the final attempt's tasks.
    pub outputs: Vec<String>,
}

struct ActiveJob {
    id: JobId,
    spec: JobSpec,
    attempts: u32,
    /// Workers that have not yet reported (or died), with the task each
    /// one is running — the id a gang cancel must name and the id a dead
    /// worker's synthetic `TaskEnded` records.
    pending: HashMap<WorkerId, TaskId>,
    exit_codes: Vec<i32>,
    outputs: Vec<String>,
    any_failure: bool,
    /// Workers this attempt blames (died mid-gang, nonzero exit, or
    /// unreachable); becomes the requeue's `excluded` hint.
    failed_workers: Vec<WorkerId>,
    /// Keeps the job's PMI server alive for the duration of the job.
    pmi: Option<PmiServer>,
    started: Instant,
    /// Wall-clock cutoff derived from the spec's `deadline_ms`.
    deadline: Option<Instant>,
    /// Lifecycle span timestamps (see `EventKind::JobPhases`): when the
    /// job was first submitted, when this attempt entered the queue, and
    /// when its assignments finished shipping (`started` doubles as the
    /// group-assembled stamp).
    submitted_at: Instant,
    enqueued_at: Instant,
    shipped_at: Option<Instant>,
    /// The job's trace id (minted at submission, carried across
    /// requeues): the correlation key every span and wire frame for
    /// this job carries.
    trace: u64,
    /// True while the dispatcher's `pmi-barrier` span is open — set
    /// when an MPI gang ships, cleared when the monitor observes the
    /// first fence release (or, as a fallback, when the job finishes).
    pmi_span_open: bool,
}

/// The write path that reaches one worker: its connection's bounded
/// reactor [`Outbox`].
///
/// A direct worker owns its connection; a relayed worker shares its
/// relay's, and traffic addressed to it travels in routed envelopes
/// (`RelayAssign` / `RelayCancel`) the relay unwraps. Scheduling is
/// oblivious to the difference — it calls [`ConnHandle::send_assign`] /
/// [`ConnHandle::send_cancel`] and the envelope happens here.
enum ConnHandle {
    /// The worker's own connection (classic one-socket-per-worker).
    Direct(Arc<Outbox>),
    /// The worker's relay connection (shared by the whole block).
    Relayed(Arc<Outbox>),
}

impl ConnHandle {
    /// Ship an assignment to `worker`, encoding through `enc`; false if
    /// the connection is gone or its bounded outbox overflowed.
    fn send_assign(&self, worker: WorkerId, assignment: TaskAssignment, enc: &mut Vec<u8>) -> bool {
        match self {
            ConnHandle::Direct(out) => send_frame(out, enc, &DispatcherMsg::Assign(assignment)),
            ConnHandle::Relayed(out) => {
                send_frame(out, enc, &DispatcherMsg::RelayAssign { worker, assignment })
            }
        }
    }

    /// Ship a task cancellation to `worker`.
    fn send_cancel(&self, worker: WorkerId, task_id: TaskId, enc: &mut Vec<u8>) -> bool {
        match self {
            ConnHandle::Direct(out) => send_frame(out, enc, &DispatcherMsg::Cancel { task_id }),
            ConnHandle::Relayed(out) => {
                send_frame(out, enc, &DispatcherMsg::RelayCancel { worker, task_id })
            }
        }
    }
}

/// Encode `msg` into `enc` (newline framing included) and queue it on
/// `outbox`. Never blocks — `Outbox::send` is a bounded-buffer push —
/// so this is safe while holding the scheduling lock.
fn send_frame(outbox: &Outbox, enc: &mut Vec<u8>, msg: &DispatcherMsg) -> bool {
    encode_msg_buf(msg, enc).is_ok() && outbox.send(enc)
}

/// Scheduling-critical state: everything one scheduling decision reads or
/// writes. Guarded by `Inner::sched`.
///
/// Invariant: every worker in `ready` is `Idle` in `registry` — death
/// removes it directly ([`handle_worker_down`]) and assignment removes it
/// before `mark_busy`, so scheduling never has to purge stale entries.
struct Sched {
    queue: JobQueue,
    registry: Registry,
    conns: HashMap<WorkerId, ConnHandle>,
    /// Connected relay daemons (ids share the worker id space). Shutdown
    /// is sent once per relay, not once per relayed worker.
    relays: HashMap<WorkerId, Arc<Outbox>>,
    /// Parked `Request`s, oldest first, with interned locations.
    ready: ReadyList,
    active: HashMap<JobId, ActiveJob>,
    /// Maps in-flight tasks to their jobs.
    tasks: HashMap<TaskId, JobId>,
    /// Reusable group-selection scratch: steady-state scheduling passes
    /// allocate nothing.
    scratch: GroupScratch,
    /// Reusable buffer for the workers chosen for one job.
    chosen: Vec<WorkerId>,
    /// Quarantined workers whose `Request` is being held; the monitor
    /// moves them back into `pending_ready` once their bench expires.
    quarantined_ready: Vec<WorkerId>,
    /// Reusable wire-encode buffer for frames sent under this lock
    /// (assignments, cancels, shutdown): steady-state sends allocate
    /// nothing.
    enc: Vec<u8>,
    /// `Some` while the post-restart reconciliation window is open:
    /// scheduling is paused, surviving workers claim orphaned tasks, and
    /// the monitor closes the window (cancelling whatever went
    /// unclaimed) at the deadline. `None` in steady state.
    recovery: Option<RecoveryState>,
}

/// The bounded window a restarted dispatcher spends reconciling journal
/// state against live workers before scheduling resumes.
struct RecoveryState {
    /// When the monitor gives up on unclaimed orphans.
    until: Instant,
    /// Per orphaned job, the in-flight task ids no surviving worker has
    /// claimed yet. Task ids are the stable key: worker ids restart with
    /// the process, task ids never repeat across incarnations.
    orphans: HashMap<JobId, Vec<TaskId>>,
}

/// Client-facing bookkeeping, split from `Sched` so `wait_idle` /
/// `wait_job` / `records` polling never contends with scheduling.
/// Guarded by `Inner::book`; `Inner::idle_cv` is paired with this lock.
struct Book {
    records: HashMap<JobId, JobRecord>,
    /// Jobs queued or active; `wait_idle` watches this reach zero.
    outstanding: usize,
}

struct Inner {
    config: DispatcherConfig,
    log: EventLog,
    /// Live metric handles; every recording is a relaxed `fetch_add` (or
    /// a gauge store), so instrumentation never contends with scheduling.
    metrics: Arc<DispatcherMetrics>,
    /// Scheduling-critical state. Lock order: `sched` before `book`,
    /// never the reverse.
    sched: Mutex<Sched>,
    /// Job records and the outstanding count.
    book: Mutex<Book>,
    idle_cv: Condvar,
    /// Workers whose `Request` awaits the next scheduling pass. Readers
    /// push here lock-free and ring [`kick_schedule`]; a burst of N
    /// requests coalesces into one batched pass.
    pending_ready: SegQueue<WorkerId>,
    /// Doorbell for [`kick_schedule`]: true while a pass is owed.
    sched_kick: AtomicBool,
    next_worker: AtomicU64,
    next_job: AtomicU64,
    next_task: AtomicU64,
    /// Total TCP connections the reactor listener has taken — the number
    /// the relay tier exists to shrink from O(workers) to O(relays).
    accepted: AtomicU64,
    shutdown: AtomicBool,
    /// Set by [`Dispatcher::kill`]: shut down *silently*, the way a
    /// crash would — no goodbye frames, no further journal writes (the
    /// journal belongs to the successor the kill is simulating).
    killed: AtomicBool,
    /// The write-ahead journal, when durability is configured.
    journal: Option<Journal>,
    /// Wall-clock seed (startup µs since the Unix epoch) mixed into
    /// every minted trace id, so incarnations sharing flight files
    /// cannot collide on trace ids.
    trace_seed: u64,
    /// The reactor's monotonic counters; the monitor bridges them into
    /// the metric surface each tick.
    reactor_stats: Arc<ReactorStats>,
}

/// Stack size for dispatcher service threads (event loops + monitor).
const CONN_STACK: usize = 192 * 1024;

/// A running JETS dispatcher.
///
/// Dropping the dispatcher shuts it down: workers receive `Shutdown`,
/// the reactor's event loops stop, and service threads drain.
pub struct Dispatcher {
    inner: Arc<Inner>,
    addr: SocketAddr,
    /// The `/metrics` responder, when one was started; dropping the
    /// dispatcher stops it.
    metrics_server: Mutex<Option<MetricsServer>>,
    /// The event-loop core serving every connection. Declared after
    /// `metrics_server` so queued `Shutdown` frames get the reactor's
    /// final flush when the dispatcher drops.
    reactor: Reactor,
}

impl Dispatcher {
    /// Bind and start serving.
    pub fn start(config: DispatcherConfig) -> io::Result<Dispatcher> {
        let listener = TcpListener::bind(&config.bind_addr)?;
        let addr = listener.local_addr()?;
        let reactor = Reactor::start(ReactorConfig {
            event_loops: config.event_loops,
            outbox_limit: config.outbox_limit,
            max_frame: MAX_FRAME_BYTES,
            thread_stack: CONN_STACK,
            ..ReactorConfig::default()
        })?;
        // Open (and replay) the journal before anything is externally
        // visible: a corrupt tail is truncated here, and the records
        // that survive rebuild queue and in-flight state below.
        let (journal_handle, replayed) = match &config.journal {
            Some(path) => {
                let (j, records) = Journal::open(path, config.fsync_policy)?;
                (Some(j), records)
            }
            None => (None, Vec::new()),
        };
        // The flight recorder, like the journal, opens before anything
        // is externally visible; a re-opened file continues the crashed
        // incarnation's sequence numbers and timeline.
        let log = match &config.flight_recorder {
            Some(path) => {
                // The dispatcher stamps its role into the ring header so
                // `jets trace` can lane-assign this file in a merged
                // cross-process timeline.
                EventLog::file_backed_with_role(
                    path,
                    config.flight_capacity,
                    WriterRole::Dispatcher,
                )?
            }
            None => EventLog::with_capacity(config.flight_capacity),
        };
        let inner = Arc::new(Inner {
            sched: Mutex::new(Sched {
                queue: JobQueue::new(config.queue_policy),
                registry: Registry::with_quarantine(config.quarantine.clone()),
                conns: HashMap::new(),
                relays: HashMap::new(),
                ready: ReadyList::new(),
                active: HashMap::new(),
                tasks: HashMap::new(),
                scratch: GroupScratch::new(),
                chosen: Vec::new(),
                quarantined_ready: Vec::new(),
                enc: Vec::new(),
                recovery: None,
            }),
            book: Mutex::new(Book {
                records: HashMap::new(),
                outstanding: 0,
            }),
            config,
            log,
            metrics: Arc::new(DispatcherMetrics::new()),
            idle_cv: Condvar::new(),
            pending_ready: SegQueue::new(),
            sched_kick: AtomicBool::new(false),
            next_worker: AtomicU64::new(1),
            next_job: AtomicU64::new(1),
            next_task: AtomicU64::new(1),
            accepted: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            journal: journal_handle,
            trace_seed: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .unwrap_or_default()
                .as_micros() as u64,
            reactor_stats: reactor.stats(),
        });
        inner
            .metrics
            .reactor_event_loops
            .set(reactor.event_loops() as i64);
        if !replayed.is_empty() {
            journal_append(&inner, &Record::Restarted);
            recover_populate(&inner, journal::recover(&replayed));
        }
        let factory_inner = Arc::clone(&inner);
        reactor.listen(
            listener,
            Arc::new(move |_stream: &TcpStream, _peer: SocketAddr| {
                // Refuse peers once shutdown begins; `None` sheds the
                // connection without registering it.
                if factory_inner.shutdown.load(Ordering::Acquire) {
                    return None;
                }
                factory_inner.accepted.fetch_add(1, Ordering::Relaxed);
                factory_inner.metrics.connections_accepted_total.inc();
                Some(Box::new(DispatcherConn {
                    inner: Arc::clone(&factory_inner),
                    outbox: None,
                    enc: Vec::new(),
                    state: ConnState::Handshake,
                }) as Box<dyn ConnHandler>)
            }),
        )?;
        let monitor_inner = Arc::clone(&inner);
        thread::Builder::new()
            .name("jets-monitor".to_string())
            .stack_size(CONN_STACK)
            .spawn(move || monitor_loop(monitor_inner))?;
        Ok(Dispatcher {
            inner,
            addr,
            metrics_server: Mutex::new(None),
            reactor,
        })
    }

    /// Address workers should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The dispatcher's event log (cheap to clone; shared).
    pub fn events(&self) -> EventLog {
        self.inner.log.clone()
    }

    /// The dispatcher's live metric handles (cheap to clone; shared).
    /// Tests and embedders read counters and gauges directly; operators
    /// scrape the same values via [`Dispatcher::serve_metrics`].
    pub fn metrics(&self) -> Arc<DispatcherMetrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// Start a `/metrics` + `/healthz` HTTP responder on `addr` (port 0
    /// picks an ephemeral port) and return the bound address. The
    /// responder lives until the dispatcher is dropped.
    pub fn serve_metrics(&self, addr: &str) -> io::Result<SocketAddr> {
        let server = jets_obs::serve_metrics(addr, self.inner.metrics.registry())?;
        let local = server.addr();
        *self.metrics_server.lock() = Some(server);
        Ok(local)
    }

    /// Submit one job; returns its identifier.
    pub fn submit(&self, spec: JobSpec) -> JobId {
        self.submit_batch(vec![spec])[0]
    }

    /// Submit many jobs at once. The whole batch is queued under one
    /// acquisition of the scheduling lock and triggers one scheduling
    /// pass, so bulk submission does not serialize per-job against the
    /// worker traffic.
    pub fn submit_all(&self, specs: impl IntoIterator<Item = JobSpec>) -> Vec<JobId> {
        self.submit_batch(specs.into_iter().collect())
    }

    fn submit_batch(&self, specs: Vec<JobSpec>) -> Vec<JobId> {
        let inner = &self.inner;
        let now = Instant::now();
        let mut ids = Vec::with_capacity(specs.len());
        let mut jobs = Vec::with_capacity(specs.len());
        for spec in specs {
            let id = inner.next_job.fetch_add(1, Ordering::Relaxed);
            let trace = mint_trace(inner.trace_seed, id);
            inner.log.record(EventKind::JobSubmitted {
                job: id,
                nodes: spec.nodes,
                ppn: spec.ppn,
            });
            inner
                .log
                .span_start(trace, SpanKind::Submit, WriterRole::Dispatcher, id, 0);
            ids.push(id);
            jobs.push(QueuedJob {
                id,
                spec,
                attempts: 0,
                excluded: Vec::new(),
                submitted_at: now,
                enqueued_at: now,
                trace,
            });
        }
        inner.metrics.jobs_submitted_total.add(jobs.len() as u64);
        // Journal the whole batch (spec + enqueue per job) before any of
        // it becomes externally visible, in one frame batch: one fsync
        // under the `Always` policy, however large the submission.
        if inner.journal.is_some() {
            let mut recs = Vec::with_capacity(jobs.len() * 2);
            for job in &jobs {
                recs.push(Record::Submitted {
                    job: job.id,
                    spec: job.spec.clone(),
                });
                recs.push(Record::Enqueued {
                    job: job.id,
                    attempts: 0,
                });
            }
            journal_append_all(inner, &recs);
        }
        {
            let mut book = inner.book.lock();
            for job in &jobs {
                book.records.insert(
                    job.id,
                    JobRecord {
                        id: job.id,
                        spec: job.spec.clone(),
                        status: JobStatus::Pending,
                        attempts: 0,
                        wall: None,
                        exit_codes: Vec::new(),
                        outputs: Vec::new(),
                    },
                );
            }
            book.outstanding += jobs.len();
        }
        // `book` is released before `sched` is taken: the lock order
        // sched → book must never be reversed.
        let mut st = inner.sched.lock();
        for job in jobs {
            inner.log.span_end(
                job.trace,
                SpanKind::Submit,
                WriterRole::Dispatcher,
                job.id,
                0,
            );
            inner.log.span_start(
                job.trace,
                SpanKind::Queue,
                WriterRole::Dispatcher,
                job.id,
                0,
            );
            st.queue.push(job);
        }
        try_schedule(inner, &mut st);
        ids
    }

    /// Parse and submit a stand-alone input file's jobs.
    pub fn submit_input(&self, text: &str) -> Result<Vec<JobId>, crate::spec::ParseError> {
        let specs = crate::spec::parse_input(text)?;
        Ok(self.submit_all(specs))
    }

    /// Block until no job is queued or running, or `timeout` passes.
    /// Returns true if the system went idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut book = self.inner.book.lock();
        loop {
            if book.outstanding == 0 {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner.idle_cv.wait_for(&mut book, deadline - now);
        }
    }

    /// A job's record, if known.
    pub fn job_record(&self, id: JobId) -> Option<JobRecord> {
        self.inner.book.lock().records.get(&id).cloned()
    }

    /// Block until job `id` reaches a terminal state (succeeded or
    /// failed), returning its record; `None` on timeout or unknown id.
    pub fn wait_job(&self, id: JobId, timeout: Duration) -> Option<JobRecord> {
        let deadline = Instant::now() + timeout;
        let mut book = self.inner.book.lock();
        loop {
            match book.records.get(&id) {
                None => return None,
                Some(rec) if matches!(rec.status, JobStatus::Succeeded | JobStatus::Failed) => {
                    return Some(rec.clone());
                }
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.inner.idle_cv.wait_for(&mut book, deadline - now);
        }
    }

    /// Snapshot of all job records.
    pub fn records(&self) -> Vec<JobRecord> {
        let book = self.inner.book.lock();
        let mut v: Vec<JobRecord> = book.records.values().cloned().collect();
        v.sort_by_key(|r| r.id);
        v
    }

    /// Number of live (registered, non-dead) workers.
    pub fn alive_workers(&self) -> usize {
        self.inner.sched.lock().registry.alive_count()
    }

    /// Total TCP connections accepted so far (direct workers + relays).
    /// With a relay tier this stays at O(relays) however many workers
    /// register behind them.
    pub fn connections_accepted(&self) -> u64 {
        self.inner.accepted.load(Ordering::Relaxed)
    }

    /// Number of currently connected relay daemons.
    pub fn relay_count(&self) -> usize {
        self.inner.sched.lock().relays.len()
    }

    /// The reactor's live counters (connections, wakeups, bytes, slow-
    /// consumer disconnects) — the event-loop core serving every
    /// connection.
    pub fn reactor_stats(&self) -> Arc<ReactorStats> {
        self.reactor.stats()
    }

    /// Number of reactor event-loop threads. The dispatcher's whole
    /// socket-handling thread bill, independent of connection count.
    pub fn reactor_event_loops(&self) -> usize {
        self.reactor.event_loops()
    }

    /// Snapshot of every worker ever registered.
    pub fn workers(&self) -> Vec<crate::registry::WorkerInfo> {
        self.inner.sched.lock().registry.iter().cloned().collect()
    }

    /// Number of jobs queued or running.
    pub fn outstanding(&self) -> usize {
        self.inner.book.lock().outstanding
    }

    /// True while the post-restart reconciliation window is open (no
    /// scheduling; surviving workers are claiming their in-flight tasks).
    pub fn recovering(&self) -> bool {
        self.inner.sched.lock().recovery.is_some()
    }

    /// Die the way a crash does: no goodbye frames to workers, no
    /// journal close marker — connections just drop. Chaos tests use
    /// this to exercise the journal-replay path; a successor started
    /// with the same journal path must reconcile and converge.
    pub fn kill(self) {
        self.inner.killed.store(true, Ordering::Release);
        // Drop runs `shutdown`, which sees `killed` and stays silent.
    }

    /// Stop accepting, tell every worker to shut down. Each direct worker
    /// is told on its own connection; each relay is told once and fans
    /// the shutdown out to its block.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        if self.inner.killed.load(Ordering::Acquire) {
            return; // killed: vanish silently, as a real crash would
        }
        let mut st = self.inner.sched.lock();
        let Sched {
            conns, relays, enc, ..
        } = &mut *st;
        for conn in conns.values() {
            if let ConnHandle::Direct(out) = conn {
                send_frame(out, enc, &DispatcherMsg::Shutdown);
            }
        }
        for out in relays.values() {
            send_frame(out, enc, &DispatcherMsg::Shutdown);
        }
        drop(st);
        // Clean-shutdown nicety: push the flight recorder's pages to
        // disk now. (A kill skips this on purpose — surviving *without*
        // the flush is what the mmap is for.)
        let _ = self.inner.log.sync();
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The dispatcher's periodic duties: hang detection (when a heartbeat
/// timeout is configured), per-job deadline enforcement, quarantine
/// release, and bridging reactor counters into the metric surface. One
/// thread, one tick.
fn monitor_loop(inner: Arc<Inner>) {
    let tick = inner.config.monitor_tick.max(Duration::from_millis(1));
    // The reactor's counters are monotonic; remembering the previous
    // sample lets the bridge publish deltas so the jets-obs counters
    // stay monotonic too.
    let mut prev_wakeups = 0u64;
    let mut prev_slow = 0u64;
    // The metrics-bridge cursor: a persistent ring reader whose lap and
    // torn-slot accounting makes an undersized `--flight-recorder` ring
    // visible on /metrics instead of silently overwriting history.
    let mut cursor = inner.log.reader();
    let mut prev_reader = ReaderPrev::default();
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        thread::sleep(tick);
        bridge_reactor_stats(&inner, &mut prev_wakeups, &mut prev_slow);
        bridge_event_log(&inner, &mut cursor, &mut prev_reader);
        // Under the `Interval` fsync policy the monitor tick is the
        // durability clock: one flush per tick, off the hot path.
        if inner.config.fsync_policy == FsyncPolicy::Interval {
            if let Some(j) = &inner.journal {
                if j.sync().is_err() {
                    inner.metrics.journal_errors_total.inc();
                }
            }
        }
        // Hang detection: `stale` reads only the per-worker liveness
        // atomics; the lock is held just long enough to walk the table.
        if let Some(timeout) = inner.config.heartbeat_timeout {
            let stale = {
                let st = inner.sched.lock();
                st.registry.stale(timeout)
            };
            for worker in stale {
                handle_worker_down(&inner, worker);
            }
        }
        let mut st = inner.sched.lock();
        let now = Instant::now();
        // Close the reconciliation window once every orphaned gang is
        // resolved — or the patience budget runs out, whichever is first.
        if st
            .recovery
            .as_ref()
            .is_some_and(|rs| rs.orphans.is_empty() || now >= rs.until)
        {
            reconcile_finish(&inner, &mut st);
        }
        // PMI-barrier span closure: the first fence releases on the PMI
        // server's own thread, so the monitor polls each MPI gang and
        // stamps the pmi-barrier → run boundary within one tick of the
        // release (span pushes are lock-free; holding `sched` is fine).
        for active in st.active.values_mut() {
            if active.pmi_span_open
                && active
                    .pmi
                    .as_ref()
                    .is_some_and(|p| p.first_barrier_at().is_some())
            {
                active.pmi_span_open = false;
                inner.log.span_end(
                    active.trace,
                    SpanKind::PmiBarrier,
                    WriterRole::Dispatcher,
                    active.id,
                    0,
                );
                inner.log.span_start(
                    active.trace,
                    SpanKind::Run,
                    WriterRole::Dispatcher,
                    active.id,
                    0,
                );
            }
        }
        // Deadline enforcement: cancel the whole gang of any attempt that
        // blew its wall-time budget; the failure consumes a retry.
        let expired: Vec<JobId> = st
            .active
            .iter()
            .filter(|(_, a)| a.deadline.is_some_and(|d| now >= d))
            .map(|(&id, _)| id)
            .collect();
        for job in expired {
            inner.log.record(EventKind::DeadlineExceeded { job });
            inner.metrics.deadline_exceeded_total.inc();
            journal_append(&inner, &Record::DeadlineExceeded { job });
            cancel_gang(&inner, &mut st, job, EXIT_DEADLINE, "deadline exceeded");
        }
        // Quarantine release: benched workers whose penalty expired get
        // their held `Request` replayed through the normal park path.
        let mut replayed = false;
        for worker in st.registry.release_expired() {
            if inner.journal.is_some() {
                if let Some(name) = st.registry.get(worker).map(|w| w.name.clone()) {
                    journal_append(&inner, &Record::QuarantineRelease { name });
                }
            }
            if let Some(pos) = st.quarantined_ready.iter().position(|&w| w == worker) {
                st.quarantined_ready.swap_remove(pos);
                inner.pending_ready.push(worker);
                replayed = true;
            }
        }
        if replayed {
            try_schedule(&inner, &mut st);
        }
        // Gauge sampling: the O(workers) counts are refreshed here, once
        // per tick, so the scheduling hot path never walks the registry
        // for metrics' sake (it maintains only the O(1) gauges inline).
        sample_gauges(&inner, &st);
    }
}

/// Refresh every sampled gauge from scheduler state; caller holds the
/// scheduling lock.
fn sample_gauges(inner: &Inner, st: &Sched) {
    let m = &inner.metrics;
    m.queue_depth.set(st.queue.len() as i64);
    m.workers_ready.set(st.ready.len() as i64);
    m.running_gangs.set(st.active.len() as i64);
    m.relays_current.set(st.relays.len() as i64);
    m.workers_alive.set(st.registry.alive_count() as i64);
    m.workers_busy.set(st.registry.busy_count() as i64);
    m.quarantined_current
        .set(st.registry.quarantined_count() as i64);
}

/// Publish the reactor's counters into the metric surface. Lock-free on
/// both sides: reactor stats are atomics, metric handles are atomics.
fn bridge_reactor_stats(inner: &Inner, prev_wakeups: &mut u64, prev_slow: &mut u64) {
    let rs = &inner.reactor_stats;
    let m = &inner.metrics;
    m.reactor_connections.set(rs.connections_open() as i64);
    m.reactor_outbox_high_water_bytes
        .set(rs.outbox_high_water() as i64);
    let wakeups = rs.wakeups();
    m.reactor_wakeups_total
        .add(wakeups.saturating_sub(*prev_wakeups));
    *prev_wakeups = wakeups;
    let slow = rs.slow_consumer_disconnects();
    m.reactor_slow_consumer_disconnects_total
        .add(slow.saturating_sub(*prev_slow));
    *prev_slow = slow;
}

/// Previous samples of the metrics-bridge cursor's monotonic reader
/// counters, so [`bridge_event_log`] can publish deltas and the
/// jets-obs counters stay monotonic too.
#[derive(Default)]
struct ReaderPrev {
    position: u64,
    laps: u64,
    torn: u64,
}

/// Publish the flight recorder's cursors into the metric surface. The
/// metric side is a pure ring *reader*: each tick drains the persistent
/// bridge cursor (copying committed slots, never taking a lock), so
/// `/metrics` scrapes observe the event stream — including how many
/// events the writer overwrote before this reader got to them
/// (`jets_flight_reader_laps_total`) and how many slots were lost
/// mid-copy (`jets_flight_reader_torn_total`) — without ever touching
/// the record path or any scheduling lock.
fn bridge_event_log(inner: &Inner, cursor: &mut EventCursor, prev: &mut ReaderPrev) {
    let m = &inner.metrics;
    while cursor.poll().is_some() {}
    // After a full drain the cursor's position equals the writer's
    // sequence number, so its delta is "events recorded since the last
    // tick" even when the ring lapped us in between.
    let position = cursor.position();
    m.events_recorded_total
        .add(position.saturating_sub(prev.position));
    prev.position = position;
    let laps = cursor.lapped();
    m.flight_reader_laps_total
        .add(laps.saturating_sub(prev.laps));
    prev.laps = laps;
    let torn = cursor.torn();
    m.flight_reader_torn_total
        .add(torn.saturating_sub(prev.torn));
    prev.torn = torn;
    let capacity = inner.log.capacity() as u64;
    m.events_retained.set(position.min(capacity) as i64);
    m.events_capacity.set(capacity as i64);
}

/// What one reactor connection has proven itself to be. The first frame
/// decides: `Register` makes the peer a direct worker, `RelayHello` a
/// relay fronting a block of workers.
enum ConnState {
    /// No handshake frame yet.
    Handshake,
    /// A direct worker's connection.
    Direct {
        worker_id: WorkerId,
        hb: HeartbeatHandle,
    },
    /// A relay's connection. Member liveness handles live here — relay-
    /// local, keyed by global id — so a `BatchedHeartbeat` frame fans
    /// out to N relaxed atomic stores without touching the scheduling
    /// lock: the same cost N direct heartbeats would have paid, on 1/Nth
    /// the connections.
    Relay {
        relay_id: WorkerId,
        members: HashMap<WorkerId, HeartbeatHandle>,
    },
}

/// Protocol state machine for one inbound connection (worker or relay),
/// driven by a reactor event loop. Callbacks run on the loop thread and
/// never block (rule J7): outbound frames are queued on the connection's
/// bounded [`Outbox`], and every inbound frame arrives fully reassembled.
struct DispatcherConn {
    inner: Arc<Inner>,
    outbox: Option<Arc<Outbox>>,
    /// Reusable wire-encode buffer for this connection's own replies
    /// (registration acks); frames sent under the scheduling lock use
    /// `Sched::enc` instead.
    enc: Vec<u8>,
    state: ConnState,
}

impl ConnHandler for DispatcherConn {
    fn on_open(&mut self, outbox: &Arc<Outbox>) {
        self.outbox = Some(Arc::clone(outbox));
    }

    fn on_frame(&mut self, frame: &[u8]) -> Flow {
        // An unparseable frame is a protocol violation; sever. The
        // close path unwinds whatever state the peer had.
        let Ok(msg) = decode_msg::<WorkerMsg>(frame) else {
            return Flow::Close;
        };
        if matches!(self.state, ConnState::Handshake) {
            self.on_handshake(msg)
        } else if matches!(self.state, ConnState::Direct { .. }) {
            self.on_direct(msg)
        } else {
            self.on_relay(msg)
        }
    }

    fn on_close(&mut self, _reason: CloseReason) {
        match std::mem::replace(&mut self.state, ConnState::Handshake) {
            // The peer never completed a handshake, so there is no
            // state to unwind.
            ConnState::Handshake => {}
            // Socket EOF, error, slow-consumer overflow, and `Goodbye`
            // all converge here: one death, handled exactly once.
            ConnState::Direct { worker_id, hb: _ } => {
                handle_worker_down(&self.inner, worker_id);
            }
            // Relay gone: every worker it still fronted is unreachable.
            // Each death cancels its gang exactly as a direct disconnect
            // would.
            ConnState::Relay { relay_id, members } => {
                {
                    let mut st = self.inner.sched.lock();
                    st.relays.remove(&relay_id);
                }
                self.inner
                    .log
                    .record(EventKind::RelayDown { relay: relay_id });
                for (worker, _) in members {
                    handle_worker_down(&self.inner, worker);
                }
            }
        }
    }
}

impl DispatcherConn {
    /// The handshake: the first frame decides what this peer is.
    fn on_handshake(&mut self, msg: WorkerMsg) -> Flow {
        let Some(outbox) = self.outbox.clone() else {
            return Flow::Close;
        };
        match msg {
            WorkerMsg::Register {
                name,
                cores,
                location,
            } => {
                let worker_id = self.inner.next_worker.fetch_add(1, Ordering::Relaxed);
                let hb = register_worker(
                    &self.inner,
                    worker_id,
                    name,
                    cores,
                    location,
                    None,
                    ConnHandle::Direct(Arc::clone(&outbox)),
                );
                send_frame(
                    &outbox,
                    &mut self.enc,
                    &DispatcherMsg::Registered { worker_id },
                );
                self.state = ConnState::Direct { worker_id, hb };
                Flow::Continue
            }
            WorkerMsg::RelayHello { name, .. } => {
                let relay_id = self.inner.next_worker.fetch_add(1, Ordering::Relaxed);
                {
                    let mut st = self.inner.sched.lock();
                    st.relays.insert(relay_id, Arc::clone(&outbox));
                }
                self.inner
                    .log
                    .record(EventKind::RelayUp { relay: relay_id });
                send_frame(
                    &outbox,
                    &mut self.enc,
                    &DispatcherMsg::Registered {
                        worker_id: relay_id,
                    },
                );
                let _ = name; // diagnostics only (the wire carries it for operators)
                self.state = ConnState::Relay {
                    relay_id,
                    members: HashMap::new(),
                };
                Flow::Continue
            }
            // Any other first frame is a protocol violation: the peer
            // never completed a handshake — just drop the connection.
            WorkerMsg::Request
            | WorkerMsg::Done { .. }
            | WorkerMsg::Heartbeat
            | WorkerMsg::Goodbye
            | WorkerMsg::SessionState { .. }
            | WorkerMsg::RelayRegister { .. }
            | WorkerMsg::RelayRequest { .. }
            | WorkerMsg::RelayDone { .. }
            | WorkerMsg::BatchedHeartbeat { .. }
            | WorkerMsg::RelayWorkerGone { .. }
            | WorkerMsg::RelayMemberState { .. } => Flow::Close,
        }
    }

    /// A frame from a registered direct worker.
    fn on_direct(&mut self, msg: WorkerMsg) -> Flow {
        let ConnState::Direct { worker_id, hb } = &self.state else {
            return Flow::Close;
        };
        let worker_id = *worker_id;
        match msg {
            WorkerMsg::Request => {
                // Lock-free park plus a doorbell ring; a burst of
                // `Request`s coalesces into one batched scheduling pass.
                hb.beat();
                self.inner.pending_ready.push(worker_id);
                kick_schedule(&self.inner);
                Flow::Continue
            }
            WorkerMsg::Done {
                task_id,
                exit_code,
                wall_ms,
                output,
                trace: _,
            } => {
                hb.beat();
                handle_done(&self.inner, worker_id, task_id, exit_code, wall_ms, output);
                Flow::Continue
            }
            // The liveness hot path: one relaxed atomic store. A
            // heartbeat storm never touches the scheduling lock.
            WorkerMsg::Heartbeat => {
                hb.beat();
                Flow::Continue
            }
            // Reconciliation: a surviving worker reports the task it is
            // still running from the previous incarnation. A valid claim
            // re-adopts it in place; anything else (unknown task, window
            // already closed, no restart at all) earns a `Cancel` so the
            // worker kills the zombie and rejoins the pool cleanly.
            WorkerMsg::SessionState { running } => {
                hb.beat();
                if let Some((task_id, job_id)) = running {
                    if !recover_claim(&self.inner, worker_id, task_id, job_id) {
                        if let Some(outbox) = &self.outbox {
                            send_frame(outbox, &mut self.enc, &DispatcherMsg::Cancel { task_id });
                        }
                    }
                }
                Flow::Continue
            }
            // `on_close` runs the worker-down path, exactly as EOF would.
            WorkerMsg::Goodbye => Flow::Close,
            // Re-registration or relay-scoped frames on a worker
            // connection are protocol violations; sever.
            WorkerMsg::Register { .. }
            | WorkerMsg::RelayHello { .. }
            | WorkerMsg::RelayRegister { .. }
            | WorkerMsg::RelayRequest { .. }
            | WorkerMsg::RelayDone { .. }
            | WorkerMsg::BatchedHeartbeat { .. }
            | WorkerMsg::RelayWorkerGone { .. }
            | WorkerMsg::RelayMemberState { .. } => Flow::Close,
        }
    }

    /// A frame from a registered relay: a single socket carrying a whole
    /// block's registrations, requests, results, and batched liveness.
    fn on_relay(&mut self, msg: WorkerMsg) -> Flow {
        let ConnState::Relay { relay_id, members } = &mut self.state else {
            return Flow::Close;
        };
        let relay_id = *relay_id;
        match msg {
            WorkerMsg::RelayRegister {
                local,
                name,
                cores,
                location,
            } => {
                let Some(outbox) = &self.outbox else {
                    return Flow::Close;
                };
                let worker_id = self.inner.next_worker.fetch_add(1, Ordering::Relaxed);
                let hb = register_worker(
                    &self.inner,
                    worker_id,
                    name,
                    cores,
                    location,
                    Some(relay_id),
                    ConnHandle::Relayed(Arc::clone(outbox)),
                );
                members.insert(worker_id, hb);
                send_frame(
                    outbox,
                    &mut self.enc,
                    &DispatcherMsg::RelayRegistered { local, worker_id },
                );
                Flow::Continue
            }
            WorkerMsg::RelayRequest { worker } => {
                // Same coalesced park as a direct Request; a relay that
                // routes for a worker it never registered is ignored.
                if let Some(hb) = members.get(&worker) {
                    hb.beat();
                    self.inner.pending_ready.push(worker);
                    kick_schedule(&self.inner);
                }
                Flow::Continue
            }
            WorkerMsg::RelayDone {
                worker,
                task_id,
                exit_code,
                wall_ms,
                output,
                trace: _,
            } => {
                if let Some(hb) = members.get(&worker) {
                    hb.beat();
                    handle_done(&self.inner, worker, task_id, exit_code, wall_ms, output);
                }
                Flow::Continue
            }
            // Batched-liveness ingestion: one frame, N relaxed atomic
            // stores into the same lock-free path direct heartbeats use.
            WorkerMsg::BatchedHeartbeat { workers } => {
                for worker in workers {
                    if let Some(hb) = members.get(&worker) {
                        hb.beat();
                    }
                }
                Flow::Continue
            }
            WorkerMsg::RelayWorkerGone { worker } => {
                if members.remove(&worker).is_some() {
                    handle_worker_down(&self.inner, worker);
                }
                Flow::Continue
            }
            // Reconciliation, relayed: the member's in-flight claim
            // travels in the relay's envelope. Same adopt-or-cancel
            // decision as the direct `SessionState` path.
            WorkerMsg::RelayMemberState {
                worker,
                task_id,
                job_id,
            } => {
                if members.contains_key(&worker)
                    && !recover_claim(&self.inner, worker, task_id, job_id)
                {
                    let Some(outbox) = &self.outbox else {
                        return Flow::Close;
                    };
                    send_frame(
                        outbox,
                        &mut self.enc,
                        &DispatcherMsg::RelayCancel { worker, task_id },
                    );
                }
                Flow::Continue
            }
            // The relay's own keepalive; member liveness arrives batched.
            WorkerMsg::Heartbeat => Flow::Continue,
            // `on_close` unwinds the whole block, exactly as EOF would.
            WorkerMsg::Goodbye => Flow::Close,
            // Direct-worker frames on a relay connection are protocol
            // violations; sever (taking the block down with it).
            WorkerMsg::Register { .. }
            | WorkerMsg::Request
            | WorkerMsg::Done { .. }
            | WorkerMsg::RelayHello { .. }
            | WorkerMsg::SessionState { .. } => Flow::Close,
        }
    }
}

/// Register one worker under the scheduling lock, reachable through
/// `conn`; returns its liveness handle for the caller's reader loop.
fn register_worker(
    inner: &Inner,
    worker_id: WorkerId,
    name: String,
    cores: u32,
    location: String,
    relay: Option<WorkerId>,
    conn: ConnHandle,
) -> HeartbeatHandle {
    let mut st = inner.sched.lock();
    // A name the registry has seen before is a pilot coming back after a
    // disconnect: count it so the fault layer's reconnect behavior is
    // observable from the metrics surface.
    if st.registry.known_name(&name) {
        inner.metrics.reconnects_total.inc();
    }
    let hb = st
        .registry
        .insert_via(worker_id, name, cores, location, relay);
    st.conns.insert(worker_id, conn);
    inner.log.record(EventKind::WorkerUp { worker: worker_id });
    // A name with too many recent gang-kills is admitted benched.
    if let Some(WorkerState::Quarantined { until_ms }) = st.registry.get(worker_id).map(|w| w.state)
    {
        inner.log.record(EventKind::WorkerQuarantined {
            worker: worker_id,
            strikes: st.registry.strikes(worker_id),
            until_ms,
        });
    }
    hb
}

/// Ring the scheduling doorbell. At most one caller becomes the pass
/// owner; everyone else returns immediately, their request absorbed by
/// the owner's next pass. No wakeup can be lost: a `pending_ready` push
/// happens-before its `swap(true)`, and whoever observes that flag runs
/// a pass that drains the queue.
fn kick_schedule(inner: &Inner) {
    if inner.sched_kick.swap(true, Ordering::AcqRel) {
        return; // a pass is already owed; its owner will absorb this kick
    }
    while inner.sched_kick.swap(false, Ordering::AcqRel) {
        let mut st = inner.sched.lock();
        try_schedule(inner, &mut st);
    }
}

/// Move lock-free-parked `Request`s into the ready list. Only workers
/// still idle enter ([`ReadyList::park`] additionally suppresses
/// duplicates); a worker that died since pushing is skipped, and a
/// quarantined worker's request is *held* in `quarantined_ready` — the
/// monitor replays it when the bench expires, so the worker never has to
/// re-request.
fn drain_parked(inner: &Inner, st: &mut Sched) {
    while let Some(worker) = inner.pending_ready.pop() {
        let Sched {
            ready,
            registry,
            quarantined_ready,
            ..
        } = &mut *st;
        if let Some(info) = registry.get(worker) {
            match info.state {
                WorkerState::Idle => {
                    ready.park(worker, info.loc);
                }
                WorkerState::Quarantined { .. } => {
                    if !quarantined_ready.contains(&worker) {
                        quarantined_ready.push(worker);
                    }
                }
                WorkerState::Busy(_) | WorkerState::Dead => {}
            }
        }
    }
}

/// Match queued jobs against parked workers; runs under the scheduling
/// lock. Absorbs every pending `Request` first, so one pass serves a
/// whole burst.
fn try_schedule(inner: &Inner, st: &mut Sched) {
    drain_parked(inner, st);
    // Reconciliation window: no new launches until surviving workers
    // have claimed their in-flight tasks (or the window expires). The
    // drain above still runs, so requests parked meanwhile are ready
    // the instant the window closes.
    if st.recovery.is_some() {
        return;
    }
    // Reuse the chosen-workers buffer across passes (restored on exit).
    let mut chosen = std::mem::take(&mut st.chosen);
    loop {
        chosen.clear();
        let job = {
            let Sched {
                queue,
                ready,
                scratch,
                ..
            } = &mut *st;
            let Some(job) = queue.pick(ready.len()) else {
                break;
            };
            let need = job.spec.nodes as usize;
            // A requeued job first tries a group avoiding the workers its
            // last attempt blames. Best effort: if the pool minus those is
            // too small, the hint is waived and normal selection runs.
            let picked_avoiding =
                !job.excluded.is_empty() && take_excluding(ready, &job.excluded, need, &mut chosen);
            if !picked_avoiding {
                match inner.config.grouping {
                    // FCFS fast path: dequeue the longest-parked workers.
                    GroupingPolicy::Fcfs => ready.take_front(need, &mut chosen),
                    GroupingPolicy::LocationAware => {
                        let found = select_group_ids(
                            GroupingPolicy::LocationAware,
                            ready.entries(),
                            need,
                            scratch,
                        );
                        assert!(found, "queue.pick guaranteed enough ready workers");
                        ready.take_indices(scratch.selected(), &mut chosen);
                    }
                }
            }
            job
        };
        // `chosen` is oldest-request-first == rank order.
        start_job(inner, st, job, &chosen);
    }
    st.chosen = chosen;
    // The O(1) gauges are maintained inline so scrapes between monitor
    // ticks see fresh queue/ready levels; three relaxed stores per
    // *pass* (not per job), invisible to the burst benchmarks.
    let m = &inner.metrics;
    m.queue_depth.set(st.queue.len() as i64);
    m.workers_ready.set(st.ready.len() as i64);
    m.running_gangs.set(st.active.len() as i64);
}

/// Dequeue `need` ready workers, oldest first, skipping `excluded`.
/// Returns `false` — taking nothing — when the non-excluded pool is too
/// small (the caller falls back to normal selection).
fn take_excluding(
    ready: &mut ReadyList,
    excluded: &[WorkerId],
    need: usize,
    out: &mut Vec<WorkerId>,
) -> bool {
    let mut idxs = Vec::with_capacity(need);
    for (i, &(w, _)) in ready.entries().iter().enumerate() {
        if !excluded.contains(&w) {
            idxs.push(i);
            if idxs.len() == need {
                break;
            }
        }
    }
    if idxs.len() < need {
        return false;
    }
    ready.take_indices(&idxs, out);
    true
}

/// Ship a job's tasks to its chosen workers; runs under the scheduling
/// lock (taking `book` briefly for the status flip).
fn start_job(inner: &Inner, st: &mut Sched, job: QueuedJob, workers: &[WorkerId]) {
    let QueuedJob {
        id,
        spec,
        attempts,
        submitted_at,
        enqueued_at,
        trace,
        ..
    } = job;
    inner.log.record(EventKind::JobStarted {
        job: id,
        nodes: spec.nodes,
        ppn: spec.ppn,
    });
    // Queue wait is over; the scheduling decision (group assembly +
    // assignment construction) runs inside the `sched` span.
    inner
        .log
        .span_end(trace, SpanKind::Queue, WriterRole::Dispatcher, id, 0);
    inner
        .log
        .span_start(trace, SpanKind::Sched, WriterRole::Dispatcher, id, 0);
    {
        let mut book = inner.book.lock();
        if let Some(rec) = book.records.get_mut(&id) {
            rec.status = JobStatus::Running;
            rec.attempts = attempts + 1;
        }
    }

    let started = Instant::now();
    let mut active = ActiveJob {
        id,
        spec: spec.clone(),
        attempts: attempts + 1,
        pending: HashMap::new(),
        exit_codes: Vec::new(),
        outputs: Vec::new(),
        any_failure: false,
        failed_workers: Vec::new(),
        pmi: None,
        started,
        submitted_at,
        enqueued_at,
        shipped_at: None,
        deadline: spec
            .deadline_ms
            .map(|ms| started + Duration::from_millis(ms)),
        trace,
        pmi_span_open: false,
    };

    // Build one assignment per worker.
    let assignments: Vec<(WorkerId, TaskAssignment)> = if spec.is_mpi() {
        let pmi_jobid = format!("jets-job-{id}");
        let mut pmi_config = PmiServerConfig::new(&pmi_jobid, spec.size());
        pmi_config.fence_timeout = inner.config.pmi_fence_timeout;
        let pmi = match PmiServer::start(pmi_config) {
            Ok(s) => s,
            Err(e) => {
                // Could not bind a PMI server: fail the job outright and
                // put the workers back in the ready pool (nothing was
                // shipped, so they are all still idle).
                for &w in workers {
                    let loc = st.registry.get(w).map(|i| i.loc).unwrap_or(0);
                    st.ready.park(w, loc);
                }
                inner
                    .log
                    .span_end(trace, SpanKind::Sched, WriterRole::Dispatcher, id, 0);
                finish_failed_unstarted(
                    inner,
                    id,
                    spec.nodes,
                    spec.ppn,
                    &format!("pmi server: {e}"),
                );
                return;
            }
        };
        let layout = RankLayout {
            nodes: spec.nodes,
            ppn: spec.ppn,
        };
        let proxies = ManualLauncher.proxy_commands(&pmi_jobid, layout, &pmi.addr().to_string());
        active.pmi = Some(pmi);
        workers
            .iter()
            .zip(proxies)
            .map(|(&w, proxy)| {
                let task_id = inner.next_task.fetch_add(1, Ordering::Relaxed);
                (
                    w,
                    TaskAssignment {
                        task_id,
                        job_id: id,
                        kind: TaskKind::MpiProxy {
                            cmd: spec.cmd.clone(),
                            ranks: proxy.ranks,
                            size: proxy.size,
                            pmi_addr: proxy.pmi_addr,
                            pmi_jobid: proxy.jobid,
                        },
                        stage: spec.stage.clone(),
                        trace,
                    },
                )
            })
            .collect()
    } else {
        let worker = workers[0];
        let task_id = inner.next_task.fetch_add(1, Ordering::Relaxed);
        vec![(
            worker,
            TaskAssignment {
                task_id,
                job_id: id,
                kind: TaskKind::Sequential {
                    cmd: spec.cmd.clone(),
                },
                stage: spec.stage.clone(),
                trace,
            },
        )]
    };

    // The attempt is journaled before any assignment reaches a wire:
    // a crash after this record replays with the full gang as orphans.
    if inner.journal.is_some() {
        journal_append(
            inner,
            &Record::Assigned {
                job: id,
                attempt: attempts + 1,
                tasks: assignments.iter().map(|(w, a)| (*w, a.task_id)).collect(),
            },
        );
    }

    // Assignments built: the `sched` span ends and `ship` covers the
    // send loop putting them on the wire.
    inner
        .log
        .span_end(trace, SpanKind::Sched, WriterRole::Dispatcher, id, 0);
    inner
        .log
        .span_start(trace, SpanKind::Ship, WriterRole::Dispatcher, id, 0);
    for (worker, assignment) in assignments {
        let task_id = assignment.task_id;
        st.tasks.insert(task_id, id);
        st.registry.mark_busy(worker, id);
        active.pending.insert(worker, task_id);
        inner.metrics.tasks_started_total.inc();
        inner.log.record(EventKind::TaskStarted {
            task: task_id,
            job: id,
            worker,
            ranks: spec.ppn,
        });
        let delivered = {
            let Sched { conns, enc, .. } = &mut *st;
            conns
                .get(&worker)
                .map(|conn| conn.send_assign(worker, assignment, enc))
                .unwrap_or(false)
        };
        if !delivered {
            // The worker vanished between parking and assignment; treat
            // its task as failed immediately.
            st.tasks.remove(&task_id);
            inner.log.record(EventKind::TaskEnded {
                task: task_id,
                job: id,
                worker,
                ranks: spec.ppn,
                exit_code: EXIT_UNDELIVERABLE,
                trace,
            });
            journal_append(
                inner,
                &Record::TaskEnded {
                    job: id,
                    task: task_id,
                    exit_code: EXIT_UNDELIVERABLE,
                },
            );
            active.pending.remove(&worker);
            active.any_failure = true;
            active.failed_workers.push(worker);
            active.exit_codes.push(EXIT_UNDELIVERABLE);
        }
    }

    active.shipped_at = Some(Instant::now());
    inner
        .log
        .span_end(trace, SpanKind::Ship, WriterRole::Dispatcher, id, 0);
    // What follows shipping: MPI gangs converge on the first PMI fence
    // (`pmi-barrier`, closed by the monitor when the fence releases);
    // everything else is straight into `run`.
    if active.pmi.is_some() {
        active.pmi_span_open = true;
        inner
            .log
            .span_start(trace, SpanKind::PmiBarrier, WriterRole::Dispatcher, id, 0);
    } else {
        inner
            .log
            .span_start(trace, SpanKind::Run, WriterRole::Dispatcher, id, 0);
    }

    if active.pending.is_empty() {
        // Everything failed to deliver.
        finish_job(inner, st, active);
    } else if active.any_failure {
        // Part of the gang is unreachable. The delivered members would
        // block on the PMI fence until its timeout, so tear the gang down
        // now; the failure requeues through the normal retry path.
        st.active.insert(id, active);
        cancel_gang(
            inner,
            st,
            id,
            EXIT_CANCELED,
            "peer assignment undeliverable",
        );
    } else {
        st.active.insert(id, active);
    }
}

/// A worker reported a task result.
fn handle_done(
    inner: &Inner,
    worker: WorkerId,
    task_id: TaskId,
    exit_code: i32,
    _wall_ms: u64,
    output: Option<String>,
) {
    let mut st = inner.sched.lock();
    st.registry.mark_idle(worker);
    let Some(job_id) = st.tasks.remove(&task_id) else {
        return; // stale report for an already-failed job
    };
    // During the reconciliation window, a result for an orphaned task
    // resolves its claim implicitly: the worker finished the work
    // instead of re-adopting it mid-flight. Strike it off so the window
    // close does not cancel-and-requeue a job that actually completed.
    if let Some(rs) = st.recovery.as_mut() {
        if let Some(tasks) = rs.orphans.get_mut(&job_id) {
            tasks.retain(|&t| t != task_id);
            if tasks.is_empty() {
                rs.orphans.remove(&job_id);
            }
        }
    }
    let Some(active) = st.active.get_mut(&job_id) else {
        return;
    };
    let (ppn, job) = (active.spec.ppn, active.id);
    inner.metrics.tasks_ended_total.inc();
    inner.log.record(EventKind::TaskEnded {
        task: task_id,
        job,
        worker,
        ranks: ppn,
        exit_code,
        trace: active.trace,
    });
    journal_append(
        inner,
        &Record::TaskEnded {
            job,
            task: task_id,
            exit_code,
        },
    );
    // An orphaned task reported by a worker that never sent a claim is
    // still keyed under the dead incarnation's worker id; fall back to
    // removal by task id (the stable key) so the gang can drain.
    if active.pending.remove(&worker).is_none() {
        active.pending.retain(|_, &mut t| t != task_id);
    }
    active.exit_codes.push(exit_code);
    if let Some(text) = output {
        // The final hop of the paper's output path: "into a file".
        if let Some(dir) = &inner.config.stdout_dir {
            let path = dir.join(format!("job{job_id}.task{task_id}.out"));
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(path, &text);
        }
        active.outputs.push(text);
    }
    if exit_code != 0 {
        active.any_failure = true;
        active.failed_workers.push(worker);
    }
    if active.pending.is_empty() {
        // `get_mut` above proved the entry exists, but structure the
        // removal so a future refactor can't turn this into a panic on
        // a peer-driven path.
        if let Some(active) = st.active.remove(&job_id) {
            finish_job(inner, &mut st, active);
        }
    }
}

/// A worker's connection dropped (or it was declared hung).
fn handle_worker_down(inner: &Inner, worker: WorkerId) {
    let mut st = inner.sched.lock();
    // Idempotence: the monitor and the reader can both call this.
    let already_dead = st
        .registry
        .get(worker)
        .map(|w| w.state == crate::registry::WorkerState::Dead)
        .unwrap_or(true);
    if already_dead {
        return;
    }
    let inflight_job = st.registry.mark_dead(worker);
    st.conns.remove(&worker);
    st.ready.remove(worker);
    st.quarantined_ready.retain(|&w| w != worker);
    inner.log.record(EventKind::WorkerDown { worker });

    if let Some(job_id) = inflight_job {
        // Dying mid-gang is a strike; enough strikes and the name's next
        // registration is admitted quarantined.
        st.registry.record_fault(worker);
        if inner.journal.is_some() {
            if let Some(name) = st.registry.get(worker).map(|w| w.name.clone()) {
                journal_append(inner, &Record::QuarantineStrike { name });
            }
        }
        if let Some(mut active) = st.active.remove(&job_id) {
            active.any_failure = true;
            active.failed_workers.push(worker);
            if let Some(task) = active.pending.remove(&worker) {
                st.tasks.remove(&task);
                inner.log.record(EventKind::TaskEnded {
                    task,
                    job: job_id,
                    worker,
                    ranks: active.spec.ppn,
                    exit_code: EXIT_WORKER_LOST,
                    trace: active.trace,
                });
                journal_append(
                    inner,
                    &Record::TaskEnded {
                        job: job_id,
                        task,
                        exit_code: EXIT_WORKER_LOST,
                    },
                );
                active.exit_codes.push(EXIT_WORKER_LOST);
            }
            if active.pending.is_empty() {
                finish_job(inner, &mut st, active);
            } else {
                // Survivors would hang at the PMI fence until its timeout;
                // tear the whole gang down so the job requeues promptly.
                st.active.insert(job_id, active);
                cancel_gang(
                    inner,
                    &mut st,
                    job_id,
                    EXIT_CANCELED,
                    &format!("worker {worker} died"),
                );
            }
        }
    }
    try_schedule(inner, &mut st);
    inner.idle_cv.notify_all();
}

/// Tear down a running gang: abort its PMI server (unblocking ranks stuck
/// at a fence), send `Cancel` to every worker still pending, and finish
/// the job as failed — which requeues it if retry budget remains.
///
/// Survivors are *not* added to `failed_workers`: only the worker that
/// triggered the teardown (dead, unreachable, or nonzero-exit) is blamed,
/// and a deadline cancel blames nobody. Each survivor's eventual `Done`
/// arrives as a stale report: `handle_done` marks the worker idle and
/// drops it, so canceled workers rejoin the pool on their next `Request`.
fn cancel_gang(inner: &Inner, st: &mut Sched, job_id: JobId, exit_code: i32, reason: &str) {
    let Some(mut active) = st.active.remove(&job_id) else {
        return;
    };
    if let Some(pmi) = &active.pmi {
        pmi.abort(reason);
    }
    let pending = std::mem::take(&mut active.pending);
    let mut recs = Vec::with_capacity(if inner.journal.is_some() {
        pending.len()
    } else {
        0
    });
    for (&worker, &task) in &pending {
        st.tasks.remove(&task);
        {
            let Sched { conns, enc, .. } = &mut *st;
            if let Some(conn) = conns.get(&worker) {
                conn.send_cancel(worker, task, enc);
            }
        }
        inner.log.record(EventKind::TaskEnded {
            task,
            job: job_id,
            worker,
            ranks: active.spec.ppn,
            exit_code,
            trace: active.trace,
        });
        if inner.journal.is_some() {
            recs.push(Record::TaskEnded {
                job: job_id,
                task,
                exit_code,
            });
        }
        active.exit_codes.push(exit_code);
    }
    journal_append_all(inner, &recs);
    active.any_failure = true;
    finish_job(inner, st, active);
}

/// A job finished (all participants accounted for). Requeue or record.
/// Runs under the scheduling lock; record updates take `book` briefly
/// (lock order sched → book).
fn finish_job(inner: &Inner, st: &mut Sched, mut active: ActiveJob) {
    let success = !active.any_failure;
    let done = Instant::now();
    let wall = active.started.elapsed();
    let trace = active.trace;
    // Close the execution spans. A gang torn down before its first
    // fence release still has `pmi-barrier` open: close it here with a
    // zero-length `run` so every finished job's span chain terminates.
    if active.pmi_span_open {
        active.pmi_span_open = false;
        inner.log.span_end(
            trace,
            SpanKind::PmiBarrier,
            WriterRole::Dispatcher,
            active.id,
            0,
        );
        inner
            .log
            .span_start(trace, SpanKind::Run, WriterRole::Dispatcher, active.id, 0);
    }
    inner
        .log
        .span_end(trace, SpanKind::Run, WriterRole::Dispatcher, active.id, 0);
    // Drop the PMI server; abort it first if the job failed so lingering
    // ranks unblock promptly.
    if let Some(pmi) = &active.pmi {
        if !success {
            pmi.abort("job failed");
        }
    }
    inner.log.record(EventKind::JobCompleted {
        job: active.id,
        nodes: active.spec.nodes,
        ppn: active.spec.ppn,
        success,
    });
    let retry = !success && active.attempts <= active.spec.max_retries;
    if retry {
        inner.metrics.jobs_requeued_total.inc();
        inner.log.record(EventKind::JobRequeued { job: active.id });
        journal_append(
            inner,
            &Record::Requeued {
                job: active.id,
                attempts: active.attempts,
            },
        );
        {
            let mut book = inner.book.lock();
            if let Some(rec) = book.records.get_mut(&active.id) {
                rec.status = JobStatus::Pending;
                rec.wall = Some(wall);
                rec.exit_codes = active.exit_codes.clone();
                rec.outputs = active.outputs.clone();
            }
        }
        let mut excluded = active.failed_workers;
        excluded.sort_unstable();
        excluded.dedup();
        // The trace survives the requeue with the job; the next attempt
        // opens a fresh queue span under the same trace id.
        inner
            .log
            .span_start(trace, SpanKind::Queue, WriterRole::Dispatcher, active.id, 0);
        st.queue.push_front(QueuedJob {
            id: active.id,
            spec: active.spec,
            attempts: active.attempts,
            excluded,
            // The end-to-end epoch survives the requeue; the queue-wait
            // epoch restarts now.
            submitted_at: active.submitted_at,
            enqueued_at: done,
            trace,
        });
        // outstanding unchanged: the job is still in flight.
    } else {
        inner.log.span_start(
            trace,
            SpanKind::Report,
            WriterRole::Dispatcher,
            active.id,
            0,
        );
        record_job_phases(inner, &active, done);
        inner.metrics.jobs_completed_total.inc();
        if !success {
            inner.metrics.jobs_failed_total.inc();
        }
        journal_append(
            inner,
            &Record::Finished {
                job: active.id,
                success,
            },
        );
        let mut book = inner.book.lock();
        if let Some(rec) = book.records.get_mut(&active.id) {
            rec.status = if success {
                JobStatus::Succeeded
            } else {
                JobStatus::Failed
            };
            rec.wall = Some(wall);
            rec.exit_codes = active.exit_codes.clone();
            rec.outputs = active.outputs.clone();
        }
        book.outstanding = book.outstanding.saturating_sub(1);
        drop(book);
        inner.idle_cv.notify_all();
        inner.log.span_end(
            trace,
            SpanKind::Report,
            WriterRole::Dispatcher,
            active.id,
            0,
        );
    }
    try_schedule(inner, st);
}

/// Mint a job's 64-bit trace id: the job id mixed with the dispatcher's
/// startup wall-clock seed through a splitmix64 finalizer. Ids are
/// unique within an incarnation by construction (distinct job ids),
/// collision-resistant across incarnations sharing flight files (the
/// seed differs), and never zero — zero is the "untraced" sentinel old
/// peers' frames decode to.
fn mint_trace(seed: u64, job: JobId) -> u64 {
    let mut z = seed ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z | 1
}

/// Microseconds from `a` to `b`, saturating to zero if the clock reads
/// backwards across threads (spans must stay monotone, never panic).
fn micros_between(a: Instant, b: Instant) -> u64 {
    b.checked_duration_since(a).unwrap_or_default().as_micros() as u64
}

/// Stamp the finished job's lifecycle breakdown into the phase
/// histograms and the event log (`EventKind::JobPhases`).
///
/// Phase boundaries, in order: `enqueued_at` (this attempt entered the
/// queue) → `started` (group assembled) → `shipped_at` (assignments on
/// the wire) → first PMI fence release (MPI jobs only) → `done`. The
/// `total` phase alone uses `submitted_at`, which predates any requeues.
fn record_job_phases(inner: &Inner, active: &ActiveJob, done: Instant) {
    let m = &inner.metrics;
    let shipped = active.shipped_at.unwrap_or(active.started);
    let queue_us = micros_between(active.enqueued_at, active.started);
    let launch_us = micros_between(active.started, shipped);
    let barrier = active.pmi.as_ref().and_then(|p| p.first_barrier_at());
    let pmi_us = barrier.map(|b| micros_between(shipped, b));
    let run_us = micros_between(barrier.unwrap_or(shipped), done);
    let total_us = micros_between(active.submitted_at, done);
    m.phase_queue.record(queue_us);
    m.phase_launch.record(launch_us);
    if let Some(us) = pmi_us {
        m.phase_pmi.record(us);
    }
    m.phase_run.record(run_us);
    m.phase_total.record(total_us);
    inner.log.record(EventKind::JobPhases {
        job: active.id,
        nodes: active.spec.nodes,
        queue_us,
        launch_us,
        pmi_us,
        run_us,
        total_us,
    });
}

/// Fail a job that never shipped (e.g. PMI bind failure). The caller
/// holds the scheduling lock; only `book` is touched here.
fn finish_failed_unstarted(inner: &Inner, id: JobId, nodes: u32, ppn: u32, _reason: &str) {
    inner.metrics.jobs_completed_total.inc();
    inner.metrics.jobs_failed_total.inc();
    inner.log.record(EventKind::JobCompleted {
        job: id,
        nodes,
        ppn,
        success: false,
    });
    journal_append(
        inner,
        &Record::Finished {
            job: id,
            success: false,
        },
    );
    {
        let mut book = inner.book.lock();
        if let Some(rec) = book.records.get_mut(&id) {
            rec.status = JobStatus::Failed;
        }
        book.outstanding = book.outstanding.saturating_sub(1);
    }
    inner.idle_cv.notify_all();
}

/// Append one record to the configured journal (no-op without one).
/// Append failures are counted and swallowed: the dispatcher keeps
/// serving, recovery fidelity past that point is degraded but replay
/// still converges on the journal's valid prefix.
fn journal_append(inner: &Inner, rec: &Record) {
    journal_append_all(inner, std::slice::from_ref(rec));
}

/// Batch variant of [`journal_append`]: one lock, one write, and (under
/// the `Always` policy) one fsync for the whole slice.
fn journal_append_all(inner: &Inner, recs: &[Record]) {
    if recs.is_empty() {
        return;
    }
    let Some(j) = &inner.journal else {
        return;
    };
    // A killed dispatcher must not touch the file again: the journal
    // now belongs to the successor the kill is simulating.
    if inner.killed.load(Ordering::Acquire) {
        return;
    }
    match j.append_all(recs) {
        Ok(()) => inner.metrics.journal_records_total.add(recs.len() as u64),
        Err(_) => inner.metrics.journal_errors_total.inc(),
    }
}

/// Rebuild scheduler and bookkeeping state from a replayed journal.
/// Runs at startup, before the listener accepts its first connection,
/// so every lock here is uncontended.
///
/// Queued jobs go straight back on the queue. An in-flight *sequential*
/// gang becomes an orphan: its `ActiveJob` is reconstructed with the
/// pending map still keyed by the dead incarnation's worker ids, and
/// the reconciliation window decides whether surviving workers re-claim
/// the tasks (matched by task id — the stable key) or the job is
/// cancelled and requeued. An in-flight *MPI* gang is requeued
/// immediately: its PMI server died with the old process, so the
/// attempt cannot be salvaged. A gang whose every member had already
/// reported success is completed in place — the crash merely ate the
/// `Finished` record — and anything else is requeued with the crashed
/// attempt refunded (the dispatcher failed, not the job).
fn recover_populate(inner: &Inner, rec: journal::Recovered) {
    use crate::journal::RecoveredPhase;
    inner.next_job.store(rec.next_job, Ordering::Release);
    inner.next_task.store(rec.next_task, Ordering::Release);
    inner
        .metrics
        .journal_replayed_jobs
        .set(rec.jobs.len() as i64);
    let now = Instant::now();
    let mut synthesized: Vec<Record> = Vec::new();
    let mut orphans: HashMap<JobId, Vec<TaskId>> = HashMap::new();
    let mut records: Vec<JobRecord> = Vec::new();
    let mut outstanding = 0usize;
    let mut st = inner.sched.lock();
    for (name, strikes) in &rec.strikes {
        st.registry.seed_strikes(name, *strikes);
    }
    for job in rec.jobs {
        let id = job.id;
        match job.phase {
            RecoveredPhase::Queued => {
                records.push(JobRecord {
                    id,
                    spec: job.spec.clone(),
                    status: JobStatus::Pending,
                    attempts: job.attempts,
                    wall: None,
                    exit_codes: Vec::new(),
                    outputs: Vec::new(),
                });
                outstanding += 1;
                st.queue.push(QueuedJob {
                    id,
                    spec: job.spec,
                    attempts: job.attempts,
                    excluded: Vec::new(),
                    submitted_at: now,
                    enqueued_at: now,
                    // Traces are not journaled; a recovered job gets a
                    // fresh id for the successor's span chain.
                    trace: mint_trace(inner.trace_seed, id),
                });
            }
            RecoveredPhase::Active { tasks, ended } => {
                let all_succeeded =
                    tasks.is_empty() && !ended.is_empty() && ended.iter().all(|&c| c == 0);
                if all_succeeded {
                    // The crash fell between the last task report and
                    // the terminal record: finish, don't re-run.
                    inner.metrics.jobs_completed_total.inc();
                    synthesized.push(Record::Finished {
                        job: id,
                        success: true,
                    });
                    records.push(JobRecord {
                        id,
                        spec: job.spec,
                        status: JobStatus::Succeeded,
                        attempts: job.attempts,
                        wall: None,
                        exit_codes: ended,
                        outputs: Vec::new(),
                    });
                } else if tasks.is_empty() || job.spec.is_mpi() {
                    // Unsalvageable attempt (failed gang mid-finish, or
                    // MPI whose PMI server died with the old process):
                    // requeue with the crashed attempt refunded.
                    let attempts = job.attempts.saturating_sub(1);
                    inner.metrics.jobs_requeued_total.inc();
                    inner.log.record(EventKind::JobRequeued { job: id });
                    synthesized.push(Record::Requeued { job: id, attempts });
                    records.push(JobRecord {
                        id,
                        spec: job.spec.clone(),
                        status: JobStatus::Pending,
                        attempts,
                        wall: None,
                        exit_codes: Vec::new(),
                        outputs: Vec::new(),
                    });
                    outstanding += 1;
                    st.queue.push_front(QueuedJob {
                        id,
                        spec: job.spec,
                        attempts,
                        excluded: Vec::new(),
                        submitted_at: now,
                        enqueued_at: now,
                        trace: mint_trace(inner.trace_seed, id),
                    });
                } else {
                    // Orphaned sequential gang: park it as an active job
                    // and let the reconciliation window decide.
                    let mut pending = HashMap::new();
                    for &(w, t) in &tasks {
                        pending.insert(w, t);
                        st.tasks.insert(t, id);
                    }
                    let any_failure = ended.iter().any(|&c| c != 0);
                    st.active.insert(
                        id,
                        ActiveJob {
                            id,
                            spec: job.spec.clone(),
                            attempts: job.attempts,
                            pending,
                            exit_codes: ended,
                            outputs: Vec::new(),
                            any_failure,
                            failed_workers: Vec::new(),
                            pmi: None,
                            started: now,
                            deadline: job
                                .spec
                                .deadline_ms
                                .map(|ms| now + Duration::from_millis(ms)),
                            submitted_at: now,
                            enqueued_at: now,
                            shipped_at: Some(now),
                            trace: mint_trace(inner.trace_seed, id),
                            pmi_span_open: false,
                        },
                    );
                    orphans.insert(id, tasks.iter().map(|&(_, t)| t).collect());
                    records.push(JobRecord {
                        id,
                        spec: job.spec,
                        status: JobStatus::Running,
                        attempts: job.attempts,
                        wall: None,
                        exit_codes: Vec::new(),
                        outputs: Vec::new(),
                    });
                    outstanding += 1;
                }
            }
        }
    }
    if !orphans.is_empty() {
        st.recovery = Some(RecoveryState {
            until: now + inner.config.reconcile_window,
            orphans,
        });
    }
    sample_gauges(inner, &st);
    drop(st);
    {
        let mut book = inner.book.lock();
        for r in records {
            book.records.insert(r.id, r);
        }
        book.outstanding += outstanding;
    }
    journal_append_all(inner, &synthesized);
}

/// A surviving worker (or relay member) claims the in-flight task it
/// kept running across the dispatcher restart. A valid claim re-keys
/// the orphaned gang entry from the dead incarnation's worker id to the
/// live one and marks the worker busy; the gang counts as re-adopted
/// once its last member claims. Returns false when there is nothing to
/// claim (unknown task, window closed, or no restart happened) — the
/// caller answers with a cancel so the worker kills the zombie.
fn recover_claim(inner: &Inner, worker: WorkerId, task: TaskId, job: JobId) -> bool {
    let mut st = inner.sched.lock();
    let adopted = {
        let Some(rs) = st.recovery.as_mut() else {
            return false;
        };
        let Some(tasks) = rs.orphans.get_mut(&job) else {
            return false;
        };
        let Some(pos) = tasks.iter().position(|&t| t == task) else {
            return false;
        };
        tasks.swap_remove(pos);
        if tasks.is_empty() {
            rs.orphans.remove(&job);
            true
        } else {
            false
        }
    };
    if let Some(active) = st.active.get_mut(&job) {
        let old = active
            .pending
            .iter()
            .find_map(|(&w, &t)| (t == task).then_some(w));
        if let Some(old) = old {
            active.pending.remove(&old);
        }
        active.pending.insert(worker, task);
    }
    st.ready.remove(worker);
    st.registry.mark_busy(worker, job);
    if adopted {
        inner.metrics.gangs_readopted_total.inc();
        inner.log.record(EventKind::GangReadopted { job });
        // Every orphan resolved: close the window early and resume.
        if st.recovery.as_ref().is_some_and(|rs| rs.orphans.is_empty()) {
            reconcile_finish(inner, &mut st);
        }
    }
    true
}

/// Close the reconciliation window: cancel-and-requeue every orphaned
/// gang that went unclaimed (or only partially claimed), then resume
/// scheduling. Runs under the scheduling lock.
fn reconcile_finish(inner: &Inner, st: &mut Sched) {
    let Some(rs) = st.recovery.take() else {
        return;
    };
    for (job, _unclaimed) in rs.orphans {
        reconcile_requeue(inner, st, job);
    }
    try_schedule(inner, st);
}

/// Tear down one orphaned gang the window could not fully reconcile:
/// cancel whatever members did claim, and put the job back at the queue
/// front with the crashed attempt refunded — the dispatcher failed, the
/// job did nothing wrong, so no retry budget is charged and no
/// `JobCompleted` is recorded.
fn reconcile_requeue(inner: &Inner, st: &mut Sched, job: JobId) {
    let Some(mut active) = st.active.remove(&job) else {
        return;
    };
    let pending = std::mem::take(&mut active.pending);
    for (&worker, &task) in &pending {
        st.tasks.remove(&task);
        let Sched { conns, enc, .. } = &mut *st;
        if let Some(conn) = conns.get(&worker) {
            conn.send_cancel(worker, task, enc);
        }
    }
    let attempts = active.attempts.saturating_sub(1);
    inner.metrics.jobs_requeued_total.inc();
    inner.log.record(EventKind::JobRequeued { job });
    journal_append(inner, &Record::Requeued { job, attempts });
    {
        let mut book = inner.book.lock();
        if let Some(rec) = book.records.get_mut(&job) {
            rec.status = JobStatus::Pending;
            rec.attempts = attempts;
        }
    }
    inner.log.span_start(
        active.trace,
        SpanKind::Queue,
        WriterRole::Dispatcher,
        job,
        0,
    );
    st.queue.push_front(QueuedJob {
        id: job,
        spec: active.spec,
        attempts,
        excluded: Vec::new(),
        submitted_at: active.submitted_at,
        enqueued_at: Instant::now(),
        trace: active.trace,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_msg, write_msg};
    use crate::spec::CommandSpec;
    use crossbeam::channel::unbounded;
    use std::io::BufReader;

    /// A minimal raw-protocol worker for exercising the dispatcher
    /// without depending on the jets-worker crate: executes builtin
    /// "ok" (exit 0), "fail" (exit 1), and "mpi-ok" (PMI handshake) apps.
    fn raw_worker(addr: SocketAddr, tasks_to_run: usize) -> thread::JoinHandle<usize> {
        thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            write_msg(
                &mut writer,
                &WorkerMsg::Register {
                    name: "raw".into(),
                    cores: 1,
                    location: "test".into(),
                },
            )
            .unwrap();
            let Some(DispatcherMsg::Registered { .. }) = read_msg(&mut reader).unwrap() else {
                panic!("expected Registered");
            };
            let mut done = 0;
            for _ in 0..tasks_to_run {
                write_msg(&mut writer, &WorkerMsg::Request).unwrap();
                match read_msg::<DispatcherMsg>(&mut reader).unwrap() {
                    Some(DispatcherMsg::Assign(a)) => {
                        let exit = run_assignment(&a);
                        write_msg(
                            &mut writer,
                            &WorkerMsg::Done {
                                task_id: a.task_id,
                                exit_code: exit,
                                wall_ms: 1,
                                output: None,
                                trace: a.trace,
                            },
                        )
                        .unwrap();
                        done += 1;
                    }
                    Some(DispatcherMsg::Shutdown) | None => break,
                    other => panic!("unexpected: {other:?}"),
                }
            }
            write_msg(&mut writer, &WorkerMsg::Goodbye).ok();
            done
        })
    }

    fn run_assignment(a: &TaskAssignment) -> i32 {
        match &a.kind {
            TaskKind::Sequential { cmd } => match cmd.name() {
                "ok" => 0,
                "fail" => 1,
                other => panic!("unknown builtin {other}"),
            },
            TaskKind::MpiProxy {
                ranks,
                size,
                pmi_addr,
                pmi_jobid,
                ..
            } => {
                // Perform the PMI handshake for each hosted rank, the way
                // a Hydra proxy would.
                for &rank in ranks {
                    let mut c =
                        jets_pmi::PmiClient::connect(pmi_addr, rank, *size, pmi_jobid).unwrap();
                    c.put(&format!("bc.{rank}"), "x").unwrap();
                    c.fence().unwrap();
                    c.finalize().unwrap();
                }
                0
            }
        }
    }

    fn dispatcher() -> Dispatcher {
        Dispatcher::start(DispatcherConfig::default()).unwrap()
    }

    const WAIT: Duration = Duration::from_secs(30);

    #[test]
    fn sequential_job_runs_to_success() {
        let d = dispatcher();
        let w = raw_worker(d.addr(), 1);
        let id = d.submit(JobSpec::sequential(CommandSpec::builtin("ok", vec![])));
        assert!(d.wait_idle(WAIT));
        let rec = d.job_record(id).unwrap();
        assert_eq!(rec.status, JobStatus::Succeeded);
        assert_eq!(rec.exit_codes, vec![0]);
        d.shutdown();
        assert_eq!(w.join().unwrap(), 1);
    }

    #[test]
    fn failing_job_is_recorded_failed() {
        let d = dispatcher();
        let _w = raw_worker(d.addr(), 1);
        let id = d.submit(JobSpec::sequential(CommandSpec::builtin("fail", vec![])));
        assert!(d.wait_idle(WAIT));
        let rec = d.job_record(id).unwrap();
        assert_eq!(rec.status, JobStatus::Failed);
        assert_eq!(rec.exit_codes, vec![1]);
    }

    #[test]
    fn mpi_job_aggregates_workers_and_runs_pmi() {
        let d = dispatcher();
        let workers: Vec<_> = (0..3).map(|_| raw_worker(d.addr(), 1)).collect();
        let id = d.submit(JobSpec::mpi(3, CommandSpec::builtin("mpi", vec![])));
        assert!(d.wait_idle(WAIT));
        let rec = d.job_record(id).unwrap();
        assert_eq!(rec.status, JobStatus::Succeeded);
        assert_eq!(rec.exit_codes.len(), 3);
        d.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn many_sequential_jobs_complete() {
        let d = dispatcher();
        let workers: Vec<_> = (0..4).map(|_| raw_worker(d.addr(), 25)).collect();
        let ids =
            d.submit_all((0..100).map(|_| JobSpec::sequential(CommandSpec::builtin("ok", vec![]))));
        assert!(d.wait_idle(WAIT));
        for id in ids {
            assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        }
        d.shutdown();
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn job_larger_than_pool_waits_until_workers_arrive() {
        let d = dispatcher();
        let id = d.submit(JobSpec::mpi(2, CommandSpec::builtin("mpi", vec![])));
        // Nothing can run yet.
        assert!(!d.wait_idle(Duration::from_millis(50)));
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Pending);
        let w1 = raw_worker(d.addr(), 1);
        let w2 = raw_worker(d.addr(), 1);
        assert!(d.wait_idle(WAIT));
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        d.shutdown();
        w1.join().unwrap();
        w2.join().unwrap();
    }

    #[test]
    fn worker_death_requeues_job_with_retries() {
        let d = dispatcher();
        // First worker registers, requests, then hangs up without running
        // anything (simulating death after assignment).
        let addr = d.addr();
        let killer = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            write_msg(
                &mut writer,
                &WorkerMsg::Register {
                    name: "doomed".into(),
                    cores: 1,
                    location: "test".into(),
                },
            )
            .unwrap();
            let _: Option<DispatcherMsg> = read_msg(&mut reader).unwrap();
            write_msg(&mut writer, &WorkerMsg::Request).unwrap();
            // Wait for the assignment, then die.
            let _: Option<DispatcherMsg> = read_msg(&mut reader).unwrap();
            drop(writer);
        });
        let id = d.submit(JobSpec::sequential(CommandSpec::builtin("ok", vec![])).with_retries(2));
        killer.join().unwrap();
        // A healthy worker picks up the requeued job.
        let w = raw_worker(d.addr(), 1);
        assert!(d.wait_idle(WAIT));
        let rec = d.job_record(id).unwrap();
        assert_eq!(rec.status, JobStatus::Succeeded);
        assert!(rec.attempts >= 2, "attempts = {}", rec.attempts);
        d.shutdown();
        w.join().unwrap();
    }

    #[test]
    fn worker_death_without_retries_fails_job() {
        let d = dispatcher();
        let addr = d.addr();
        let killer = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            write_msg(
                &mut writer,
                &WorkerMsg::Register {
                    name: "doomed".into(),
                    cores: 1,
                    location: "test".into(),
                },
            )
            .unwrap();
            let _: Option<DispatcherMsg> = read_msg(&mut reader).unwrap();
            write_msg(&mut writer, &WorkerMsg::Request).unwrap();
            let _: Option<DispatcherMsg> = read_msg(&mut reader).unwrap();
        });
        let id = d.submit(JobSpec::sequential(CommandSpec::builtin("ok", vec![])));
        killer.join().unwrap();
        assert!(d.wait_idle(WAIT));
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Failed);
    }

    #[test]
    fn event_log_tells_the_story() {
        let d = dispatcher();
        let _w = raw_worker(d.addr(), 1);
        d.submit(JobSpec::sequential(CommandSpec::builtin("ok", vec![])));
        assert!(d.wait_idle(WAIT));
        let events = d.events().snapshot();
        let kinds: Vec<&'static str> = events
            .iter()
            .map(|e| match e.kind {
                EventKind::WorkerUp { .. } => "up",
                EventKind::JobSubmitted { .. } => "submit",
                EventKind::JobStarted { .. } => "start",
                EventKind::TaskStarted { .. } => "tstart",
                EventKind::TaskEnded { .. } => "tend",
                EventKind::JobCompleted { .. } => "complete",
                _ => "other",
            })
            .collect();
        assert!(kinds.contains(&"up"));
        assert!(kinds.contains(&"submit"));
        assert!(kinds.contains(&"tstart"));
        assert!(kinds.contains(&"tend"));
        assert!(kinds.contains(&"complete"));
        // Submission precedes start precedes task end.
        let pos = |k: &str| kinds.iter().position(|&x| x == k).unwrap();
        assert!(pos("submit") < pos("start"));
        assert!(pos("tstart") < pos("tend"));
    }

    fn journal_tmp(name: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("jets-dispatcher-{name}-{}.wal", std::process::id()));
        std::fs::remove_file(&path).ok();
        path
    }

    #[test]
    fn killed_dispatcher_replays_queued_jobs_from_journal() {
        let path = journal_tmp("queued");
        let config = DispatcherConfig {
            journal: Some(path.clone()),
            ..DispatcherConfig::default()
        };
        let d = Dispatcher::start(config.clone()).unwrap();
        let ids =
            d.submit_all((0..5).map(|_| JobSpec::sequential(CommandSpec::builtin("ok", vec![]))));
        assert_eq!(d.outstanding(), 5);
        d.kill();
        // The successor replays the journal: all five jobs pending
        // again, no reconciliation window (nothing was in flight).
        let d2 = Dispatcher::start(config).unwrap();
        assert_eq!(d2.outstanding(), 5);
        assert!(!d2.recovering(), "queued-only journal needs no window");
        assert_eq!(d2.metrics().journal_replayed_jobs.get(), 5);
        for &id in &ids {
            assert_eq!(d2.job_record(id).unwrap().status, JobStatus::Pending);
        }
        // A worker drains them in the new incarnation, exactly once each.
        let w = raw_worker(d2.addr(), 5);
        assert!(d2.wait_idle(WAIT));
        assert_eq!(d2.metrics().jobs_completed_total.get(), 5);
        for id in ids {
            assert_eq!(d2.job_record(id).unwrap().status, JobStatus::Succeeded);
        }
        d2.shutdown();
        w.join().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clean_finish_leaves_nothing_to_replay() {
        let path = journal_tmp("clean");
        let config = DispatcherConfig {
            journal: Some(path.clone()),
            ..DispatcherConfig::default()
        };
        {
            let d = Dispatcher::start(config.clone()).unwrap();
            let w = raw_worker(d.addr(), 3);
            d.submit_all((0..3).map(|_| JobSpec::sequential(CommandSpec::builtin("ok", vec![]))));
            assert!(d.wait_idle(WAIT));
            assert!(d.metrics().journal_records_total.get() >= 3 * 4);
            d.shutdown();
            w.join().unwrap();
        }
        // Every journaled job reached a terminal record, so a restart
        // resurrects nothing.
        let d2 = Dispatcher::start(config).unwrap();
        assert_eq!(d2.outstanding(), 0);
        assert_eq!(d2.metrics().journal_replayed_jobs.get(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wait_idle_times_out_without_workers() {
        let d = dispatcher();
        d.submit(JobSpec::sequential(CommandSpec::builtin("ok", vec![])));
        assert!(!d.wait_idle(Duration::from_millis(40)));
        assert_eq!(d.outstanding(), 1);
    }

    /// Speak the relay side of the handshake by hand: hello, register
    /// `members` workers, return (writer, reader, member global ids).
    fn raw_relay_handshake(
        addr: SocketAddr,
        members: usize,
    ) -> (TcpStream, BufReader<TcpStream>, Vec<u64>) {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write_msg(
            &mut writer,
            &WorkerMsg::RelayHello {
                name: "raw-relay".into(),
                location: "test".into(),
            },
        )
        .unwrap();
        let Some(DispatcherMsg::Registered { .. }) = read_msg(&mut reader).unwrap() else {
            panic!("expected relay Registered ack");
        };
        let mut ids = Vec::with_capacity(members);
        for local in 0..members as u64 {
            write_msg(
                &mut writer,
                &WorkerMsg::RelayRegister {
                    local,
                    name: format!("blk-{local}"),
                    cores: 1,
                    location: "test".into(),
                },
            )
            .unwrap();
            match read_msg(&mut reader).unwrap() {
                Some(DispatcherMsg::RelayRegistered {
                    local: echoed,
                    worker_id,
                }) => {
                    assert_eq!(echoed, local);
                    ids.push(worker_id);
                }
                other => panic!("expected RelayRegistered, got {other:?}"),
            }
        }
        (writer, reader, ids)
    }

    /// A relay fronting 4 workers runs a batch of sequential jobs over a
    /// single inbound connection.
    #[test]
    fn relayed_workers_run_jobs_over_one_connection() {
        let d = dispatcher();
        let addr = d.addr();
        let relay = thread::spawn(move || {
            let (mut writer, mut reader, ids) = raw_relay_handshake(addr, 4);
            for &w in &ids {
                write_msg(&mut writer, &WorkerMsg::RelayRequest { worker: w }).unwrap();
            }
            let mut done = 0usize;
            while done < 20 {
                match read_msg::<DispatcherMsg>(&mut reader).unwrap() {
                    Some(DispatcherMsg::RelayAssign { worker, assignment }) => {
                        assert!(ids.contains(&worker), "routed to a member we own");
                        let exit = run_assignment(&assignment);
                        write_msg(
                            &mut writer,
                            &WorkerMsg::RelayDone {
                                worker,
                                task_id: assignment.task_id,
                                exit_code: exit,
                                wall_ms: 1,
                                output: None,
                                trace: assignment.trace,
                            },
                        )
                        .unwrap();
                        write_msg(&mut writer, &WorkerMsg::RelayRequest { worker }).unwrap();
                        done += 1;
                    }
                    Some(DispatcherMsg::Shutdown) | None => break,
                    other => panic!("unexpected: {other:?}"),
                }
            }
            write_msg(&mut writer, &WorkerMsg::Goodbye).ok();
            done
        });
        // Wait for the block to register.
        let deadline = Instant::now() + WAIT;
        while d.alive_workers() < 4 {
            assert!(Instant::now() < deadline, "relayed workers never arrived");
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(d.relay_count(), 1);
        assert_eq!(
            d.connections_accepted(),
            1,
            "one socket for the whole block"
        );
        let ids =
            d.submit_all((0..20).map(|_| JobSpec::sequential(CommandSpec::builtin("ok", vec![]))));
        assert!(d.wait_idle(WAIT));
        for id in ids {
            assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        }
        // Every registered worker is marked as relayed in the registry.
        for w in d.workers() {
            assert!(w.relay.is_some());
        }
        d.shutdown();
        assert_eq!(relay.join().unwrap(), 20);
    }

    /// Batched liveness frames keep relayed workers alive under hang
    /// detection; once the frames stop, the monitor declares them hung.
    #[test]
    fn batched_heartbeats_feed_the_liveness_path() {
        let d = Dispatcher::start(DispatcherConfig {
            heartbeat_timeout: Some(Duration::from_millis(250)),
            monitor_tick: Duration::from_millis(10),
            ..DispatcherConfig::default()
        })
        .unwrap();
        let addr = d.addr();
        let (beats_tx, beats_rx) = unbounded::<()>();
        let relay = thread::spawn(move || {
            let (mut writer, _reader, ids) = raw_relay_handshake(addr, 2);
            // Batch liveness until told to stop, then keep the connection
            // open silently so only the heartbeat path can kill them.
            while beats_rx.recv_timeout(Duration::from_millis(50)).is_err() {
                write_msg(
                    &mut writer,
                    &WorkerMsg::BatchedHeartbeat {
                        workers: ids.clone(),
                    },
                )
                .unwrap();
            }
            thread::sleep(Duration::from_secs(1));
        });
        let deadline = Instant::now() + WAIT;
        while d.alive_workers() < 2 {
            assert!(Instant::now() < deadline);
            thread::sleep(Duration::from_millis(5));
        }
        // Well past the heartbeat timeout, the batched frames alone keep
        // both members alive.
        thread::sleep(Duration::from_millis(600));
        assert_eq!(
            d.alive_workers(),
            2,
            "batched frames must count as liveness"
        );
        // Stop the batches: the monitor declares both hung.
        beats_tx.send(()).unwrap();
        let deadline = Instant::now() + WAIT;
        while d.alive_workers() != 0 {
            assert!(
                Instant::now() < deadline,
                "silent members never declared hung"
            );
            thread::sleep(Duration::from_millis(10));
        }
        relay.join().unwrap();
    }

    /// A relay connection dropping takes its whole block down: the
    /// in-flight job fails with EXIT_WORKER_LOST and the log records the
    /// relay's lifecycle.
    #[test]
    fn relay_death_downs_all_members() {
        let d = dispatcher();
        let addr = d.addr();
        let relay = thread::spawn(move || {
            let (mut writer, mut reader, ids) = raw_relay_handshake(addr, 3);
            write_msg(&mut writer, &WorkerMsg::RelayRequest { worker: ids[0] }).unwrap();
            // Take one assignment, then die without reporting.
            let _: Option<DispatcherMsg> = read_msg(&mut reader).unwrap();
        });
        let id = d.submit(JobSpec::sequential(CommandSpec::builtin("ok", vec![])));
        relay.join().unwrap();
        assert!(d.wait_idle(WAIT));
        let rec = d.job_record(id).unwrap();
        assert_eq!(rec.status, JobStatus::Failed);
        assert!(rec.exit_codes.contains(&EXIT_WORKER_LOST));
        let deadline = Instant::now() + WAIT;
        while d.alive_workers() != 0 {
            assert!(Instant::now() < deadline, "members outlived their relay");
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(d.relay_count(), 0);
        let events = d.events().snapshot();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RelayUp { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RelayDown { .. })));
        // All three members were declared down.
        let downs = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::WorkerDown { .. }))
            .count();
        assert_eq!(downs, 3);
    }
}
