//! The JETS engine: accepts workers, aggregates them, launches jobs.
//!
//! Pipeline stages, each arbitrarily concurrent (paper Section 3,
//! principles 1–2):
//!
//! * **Socket management** — an accept loop plus one reader and one writer
//!   thread per worker connection.
//! * **Handler processing** — job submission (API or input file) feeds the
//!   [`crate::queue::JobQueue`]; worker `Request`s park in the ready list;
//!   `try_schedule` matches the two under one lock.
//! * **External process management** — each MPI job gets a background PMI
//!   server (the `mpiexec` process of the paper, see `jets-pmi`), whose
//!   manual-launcher proxy commands are shipped to the group's workers.
//!
//! Fault tolerance: a worker death (socket EOF, error, or heartbeat
//! silence) marks its in-flight job failed, aborts the job's PMI server so
//! peer ranks unblock, and requeues the job at the front of the queue if
//! it has retry budget left.

use crate::events::{EventKind, EventLog};
use crate::group::{select_group, Candidate, GroupingPolicy};
use crate::protocol::{read_msg, write_msg, DispatcherMsg, TaskAssignment, TaskKind, WorkerMsg};
use crate::queue::{JobQueue, QueuePolicy, QueuedJob};
use crate::registry::Registry;
use crate::spec::{JobId, JobSpec, TaskId, WorkerId};
use crossbeam::channel::{unbounded, Sender};
use jets_pmi::{ManualLauncher, PmiServer, PmiServerConfig, RankLayout};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for a dispatcher instance.
#[derive(Debug, Clone)]
pub struct DispatcherConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub bind_addr: String,
    /// Pending-job queue discipline.
    pub queue_policy: QueuePolicy,
    /// Worker-group selection policy.
    pub grouping: GroupingPolicy,
    /// If set, workers silent for longer than this are declared hung and
    /// disregarded. `None` disables hang detection (socket EOF still
    /// detects outright death).
    pub heartbeat_timeout: Option<Duration>,
    /// Patience for PMI fences inside launched MPI jobs.
    pub pmi_fence_timeout: Duration,
    /// When set, each task's captured standard output is also written to
    /// `<dir>/job<J>.task<T>.out` — the paper's "into a file" step of the
    /// output path (Section 6.1.6).
    pub stdout_dir: Option<std::path::PathBuf>,
}

impl Default for DispatcherConfig {
    fn default() -> Self {
        DispatcherConfig {
            bind_addr: "127.0.0.1:0".to_string(),
            queue_policy: QueuePolicy::Fifo,
            grouping: GroupingPolicy::Fcfs,
            heartbeat_timeout: None,
            pmi_fence_timeout: Duration::from_secs(60),
            stdout_dir: None,
        }
    }
}

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Pending,
    /// Tasks shipped to workers.
    Running,
    /// All tasks exited zero.
    Succeeded,
    /// A task failed or a worker died, and retries were exhausted.
    Failed,
}

/// What the dispatcher remembers about a job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job.
    pub id: JobId,
    /// Its specification.
    pub spec: JobSpec,
    /// Current status.
    pub status: JobStatus,
    /// Launch attempts made so far.
    pub attempts: u32,
    /// Wall time of the final (successful or last) attempt.
    pub wall: Option<Duration>,
    /// Exit codes reported by the final attempt's tasks.
    pub exit_codes: Vec<i32>,
    /// Captured standard-output tails from the final attempt's tasks.
    pub outputs: Vec<String>,
}

struct ActiveJob {
    id: JobId,
    spec: JobSpec,
    attempts: u32,
    /// Workers that have not yet reported (or died).
    pending: HashSet<WorkerId>,
    exit_codes: Vec<i32>,
    outputs: Vec<String>,
    any_failure: bool,
    /// Keeps the job's PMI server alive for the duration of the job.
    pmi: Option<PmiServer>,
    started: Instant,
}

struct State {
    queue: JobQueue,
    registry: Registry,
    conns: HashMap<WorkerId, Sender<DispatcherMsg>>,
    /// Parked `Request`s, oldest first.
    ready: Vec<WorkerId>,
    active: HashMap<JobId, ActiveJob>,
    /// Maps in-flight tasks to their jobs.
    tasks: HashMap<TaskId, JobId>,
    records: HashMap<JobId, JobRecord>,
    /// Jobs queued or active; `wait_idle` watches this reach zero.
    outstanding: usize,
}

struct Inner {
    config: DispatcherConfig,
    log: EventLog,
    state: Mutex<State>,
    idle_cv: Condvar,
    next_worker: AtomicU64,
    next_job: AtomicU64,
    next_task: AtomicU64,
    shutdown: AtomicBool,
}

/// Stack size for connection service threads.
const CONN_STACK: usize = 192 * 1024;

/// A running JETS dispatcher.
///
/// Dropping the dispatcher shuts it down: workers receive `Shutdown`, the
/// accept loop stops, and service threads drain.
pub struct Dispatcher {
    inner: Arc<Inner>,
    addr: SocketAddr,
}

impl Dispatcher {
    /// Bind and start serving.
    pub fn start(config: DispatcherConfig) -> io::Result<Dispatcher> {
        let listener = TcpListener::bind(&config.bind_addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: JobQueue::new(config.queue_policy),
                registry: Registry::new(),
                conns: HashMap::new(),
                ready: Vec::new(),
                active: HashMap::new(),
                tasks: HashMap::new(),
                records: HashMap::new(),
                outstanding: 0,
            }),
            config,
            log: EventLog::new(),
            idle_cv: Condvar::new(),
            next_worker: AtomicU64::new(1),
            next_job: AtomicU64::new(1),
            next_task: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let accept_inner = Arc::clone(&inner);
        thread::Builder::new()
            .name("jets-accept".to_string())
            .stack_size(CONN_STACK)
            .spawn(move || accept_loop(listener, accept_inner))
            .expect("spawn dispatcher accept thread");
        if let Some(timeout) = inner.config.heartbeat_timeout {
            let monitor_inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("jets-monitor".to_string())
                .stack_size(CONN_STACK)
                .spawn(move || monitor_loop(monitor_inner, timeout))
                .expect("spawn dispatcher monitor thread");
        }
        Ok(Dispatcher { inner, addr })
    }

    /// Address workers should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The dispatcher's event log (cheap to clone; shared).
    pub fn events(&self) -> EventLog {
        self.inner.log.clone()
    }

    /// Submit one job; returns its identifier.
    pub fn submit(&self, spec: JobSpec) -> JobId {
        let id = self.inner.next_job.fetch_add(1, Ordering::Relaxed);
        let mut st = self.inner.state.lock();
        self.inner.log.record(EventKind::JobSubmitted {
            job: id,
            nodes: spec.nodes,
            ppn: spec.ppn,
        });
        st.records.insert(
            id,
            JobRecord {
                id,
                spec: spec.clone(),
                status: JobStatus::Pending,
                attempts: 0,
                wall: None,
                exit_codes: Vec::new(),
                outputs: Vec::new(),
            },
        );
        st.queue.push(QueuedJob {
            id,
            spec,
            attempts: 0,
        });
        st.outstanding += 1;
        try_schedule(&self.inner, &mut st);
        id
    }

    /// Submit many jobs at once.
    pub fn submit_all(&self, specs: impl IntoIterator<Item = JobSpec>) -> Vec<JobId> {
        specs.into_iter().map(|s| self.submit(s)).collect()
    }

    /// Parse and submit a stand-alone input file's jobs.
    pub fn submit_input(&self, text: &str) -> Result<Vec<JobId>, crate::spec::ParseError> {
        let specs = crate::spec::parse_input(text)?;
        Ok(self.submit_all(specs))
    }

    /// Block until no job is queued or running, or `timeout` passes.
    /// Returns true if the system went idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            if st.outstanding == 0 {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner.idle_cv.wait_for(&mut st, deadline - now);
        }
    }

    /// A job's record, if known.
    pub fn job_record(&self, id: JobId) -> Option<JobRecord> {
        self.inner.state.lock().records.get(&id).cloned()
    }

    /// Block until job `id` reaches a terminal state (succeeded or
    /// failed), returning its record; `None` on timeout or unknown id.
    pub fn wait_job(&self, id: JobId, timeout: Duration) -> Option<JobRecord> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            match st.records.get(&id) {
                None => return None,
                Some(rec)
                    if matches!(rec.status, JobStatus::Succeeded | JobStatus::Failed) =>
                {
                    return Some(rec.clone());
                }
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.inner.idle_cv.wait_for(&mut st, deadline - now);
        }
    }

    /// Snapshot of all job records.
    pub fn records(&self) -> Vec<JobRecord> {
        let st = self.inner.state.lock();
        let mut v: Vec<JobRecord> = st.records.values().cloned().collect();
        v.sort_by_key(|r| r.id);
        v
    }

    /// Number of live (registered, non-dead) workers.
    pub fn alive_workers(&self) -> usize {
        self.inner.state.lock().registry.alive_count()
    }

    /// Snapshot of every worker ever registered.
    pub fn workers(&self) -> Vec<crate::registry::WorkerInfo> {
        self.inner.state.lock().registry.iter().cloned().collect()
    }

    /// Number of jobs queued or running.
    pub fn outstanding(&self) -> usize {
        self.inner.state.lock().outstanding
    }

    /// Stop accepting, tell every worker to shut down.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        let st = self.inner.state.lock();
        for tx in st.conns.values() {
            let _ = tx.send(DispatcherMsg::Shutdown);
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    let mut backoff = Duration::from_micros(500);
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = Duration::from_micros(500);
                let conn_inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name("jets-conn".to_string())
                    .stack_size(CONN_STACK)
                    .spawn(move || serve_worker(stream, conn_inner))
                    .expect("spawn worker connection thread");
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

fn monitor_loop(inner: Arc<Inner>, timeout: Duration) {
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        thread::sleep(timeout / 2);
        let stale = {
            let st = inner.state.lock();
            st.registry.stale(timeout)
        };
        for worker in stale {
            handle_worker_down(&inner, worker);
        }
    }
}

/// Reader side of one worker connection; owns the registration handshake.
fn serve_worker(stream: TcpStream, inner: Arc<Inner>) {
    stream.set_nodelay(true).ok();
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    // Handshake: first message must be Register.
    let (name, cores, location) = match read_msg::<WorkerMsg>(&mut reader) {
        Ok(Some(WorkerMsg::Register {
            name,
            cores,
            location,
        })) => (name, cores, location),
        _ => return,
    };
    let worker_id = inner.next_worker.fetch_add(1, Ordering::Relaxed);

    // Writer thread: channel → socket, so any dispatcher thread can send.
    let (tx, rx) = unbounded::<DispatcherMsg>();
    thread::Builder::new()
        .name(format!("jets-write-{worker_id}"))
        .stack_size(CONN_STACK)
        .spawn(move || {
            let mut sock = write_half;
            while let Ok(msg) = rx.recv() {
                if write_msg(&mut sock, &msg).is_err() {
                    return;
                }
            }
        })
        .expect("spawn worker writer thread");

    {
        let mut st = inner.state.lock();
        st.registry.insert(worker_id, name, cores, location);
        st.conns.insert(worker_id, tx.clone());
        inner.log.record(EventKind::WorkerUp { worker: worker_id });
    }
    let _ = tx.send(DispatcherMsg::Registered { worker_id });

    loop {
        match read_msg::<WorkerMsg>(&mut reader) {
            Ok(Some(WorkerMsg::Request)) => {
                let mut st = inner.state.lock();
                st.registry.touch(worker_id);
                st.ready.push(worker_id);
                try_schedule(&inner, &mut st);
            }
            Ok(Some(WorkerMsg::Done {
                task_id,
                exit_code,
                wall_ms,
                output,
            })) => {
                handle_done(&inner, worker_id, task_id, exit_code, wall_ms, output);
            }
            Ok(Some(WorkerMsg::Heartbeat)) => {
                inner.state.lock().registry.touch(worker_id);
            }
            Ok(Some(WorkerMsg::Goodbye)) | Ok(None) => break,
            Ok(Some(WorkerMsg::Register { .. })) | Err(_) => break,
        }
    }
    handle_worker_down(&inner, worker_id);
}

/// Match queued jobs against parked workers; runs under the state lock.
fn try_schedule(inner: &Inner, st: &mut State) {
    loop {
        // Purge workers that died while parked.
        st.ready.retain(|w| {
            st.registry
                .get(*w)
                .is_some_and(|info| info.state == crate::registry::WorkerState::Idle)
        });
        let Some(job) = st.queue.pick(st.ready.len()) else {
            return;
        };
        let candidates: Vec<Candidate> = st
            .ready
            .iter()
            .map(|&w| Candidate {
                worker: w,
                location: st
                    .registry
                    .get(w)
                    .map(|i| i.location.clone())
                    .unwrap_or_default(),
            })
            .collect();
        let indices = select_group(inner.config.grouping, &candidates, job.spec.nodes as usize)
            .expect("queue.pick guaranteed enough ready workers");
        // Remove chosen workers from the ready list, highest index first.
        let mut chosen: Vec<WorkerId> = Vec::with_capacity(indices.len());
        let mut sorted = indices;
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        for idx in sorted {
            chosen.push(st.ready.remove(idx));
        }
        chosen.reverse(); // oldest request first == rank order
        start_job(inner, st, job, chosen);
    }
}

/// Ship a job's tasks to its chosen workers; runs under the state lock.
fn start_job(inner: &Inner, st: &mut State, job: QueuedJob, workers: Vec<WorkerId>) {
    let QueuedJob { id, spec, attempts } = job;
    inner.log.record(EventKind::JobStarted {
        job: id,
        nodes: spec.nodes,
        ppn: spec.ppn,
    });
    if let Some(rec) = st.records.get_mut(&id) {
        rec.status = JobStatus::Running;
        rec.attempts = attempts + 1;
    }

    let mut active = ActiveJob {
        id,
        spec: spec.clone(),
        attempts: attempts + 1,
        pending: workers.iter().copied().collect(),
        exit_codes: Vec::new(),
        outputs: Vec::new(),
        any_failure: false,
        pmi: None,
        started: Instant::now(),
    };

    // Build one assignment per worker.
    let assignments: Vec<(WorkerId, TaskAssignment)> = if spec.is_mpi() {
        let pmi_jobid = format!("jets-job-{id}");
        let mut pmi_config = PmiServerConfig::new(&pmi_jobid, spec.size());
        pmi_config.fence_timeout = inner.config.pmi_fence_timeout;
        let pmi = match PmiServer::start(pmi_config) {
            Ok(s) => s,
            Err(e) => {
                // Could not bind a PMI server: fail the job outright and
                // put the workers back in the ready pool.
                st.ready.extend(workers);
                finish_failed_unstarted(inner, st, id, &format!("pmi server: {e}"));
                return;
            }
        };
        let layout = RankLayout {
            nodes: spec.nodes,
            ppn: spec.ppn,
        };
        let proxies = ManualLauncher.proxy_commands(&pmi_jobid, layout, &pmi.addr().to_string());
        active.pmi = Some(pmi);
        workers
            .iter()
            .zip(proxies)
            .map(|(&w, proxy)| {
                let task_id = inner.next_task.fetch_add(1, Ordering::Relaxed);
                (
                    w,
                    TaskAssignment {
                        task_id,
                        job_id: id,
                        kind: TaskKind::MpiProxy {
                            cmd: spec.cmd.clone(),
                            ranks: proxy.ranks,
                            size: proxy.size,
                            pmi_addr: proxy.pmi_addr,
                            pmi_jobid: proxy.jobid,
                        },
                        stage: spec.stage.clone(),
                    },
                )
            })
            .collect()
    } else {
        let worker = workers[0];
        let task_id = inner.next_task.fetch_add(1, Ordering::Relaxed);
        vec![(
            worker,
            TaskAssignment {
                task_id,
                job_id: id,
                kind: TaskKind::Sequential {
                    cmd: spec.cmd.clone(),
                },
                stage: spec.stage.clone(),
            },
        )]
    };

    for (worker, assignment) in assignments {
        let task_id = assignment.task_id;
        st.tasks.insert(task_id, id);
        st.registry.mark_busy(worker, id);
        inner.log.record(EventKind::TaskStarted {
            task: task_id,
            job: id,
            worker,
            ranks: spec.ppn,
        });
        let delivered = st
            .conns
            .get(&worker)
            .map(|tx| tx.send(DispatcherMsg::Assign(assignment)).is_ok())
            .unwrap_or(false);
        if !delivered {
            // The worker vanished between parking and assignment; treat
            // its task as failed immediately.
            st.tasks.remove(&task_id);
            inner.log.record(EventKind::TaskEnded {
                task: task_id,
                job: id,
                worker,
                ranks: spec.ppn,
                exit_code: -128,
            });
            active.pending.remove(&worker);
            active.any_failure = true;
            active.exit_codes.push(-128);
        }
    }

    if active.pending.is_empty() {
        // Everything failed to deliver.
        finish_job(inner, st, active);
    } else {
        st.active.insert(id, active);
    }
}

/// A worker reported a task result.
fn handle_done(
    inner: &Inner,
    worker: WorkerId,
    task_id: TaskId,
    exit_code: i32,
    _wall_ms: u64,
    output: Option<String>,
) {
    let mut st = inner.state.lock();
    st.registry.mark_idle(worker);
    let Some(job_id) = st.tasks.remove(&task_id) else {
        return; // stale report for an already-failed job
    };
    let Some(active) = st.active.get_mut(&job_id) else {
        return;
    };
    let (ppn, job) = (active.spec.ppn, active.id);
    inner.log.record(EventKind::TaskEnded {
        task: task_id,
        job,
        worker,
        ranks: ppn,
        exit_code,
    });
    active.pending.remove(&worker);
    active.exit_codes.push(exit_code);
    if let Some(text) = output {
        // The final hop of the paper's output path: "into a file".
        if let Some(dir) = &inner.config.stdout_dir {
            let path = dir.join(format!("job{job_id}.task{task_id}.out"));
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(path, &text);
        }
        active.outputs.push(text);
    }
    if exit_code != 0 {
        active.any_failure = true;
    }
    if active.pending.is_empty() {
        let active = st.active.remove(&job_id).expect("checked above");
        finish_job(inner, &mut st, active);
    }
}

/// A worker's connection dropped (or it was declared hung).
fn handle_worker_down(inner: &Inner, worker: WorkerId) {
    let mut st = inner.state.lock();
    // Idempotence: the monitor and the reader can both call this.
    let already_dead = st
        .registry
        .get(worker)
        .map(|w| w.state == crate::registry::WorkerState::Dead)
        .unwrap_or(true);
    if already_dead {
        return;
    }
    let inflight_job = st.registry.mark_dead(worker);
    st.conns.remove(&worker);
    st.ready.retain(|&w| w != worker);
    inner.log.record(EventKind::WorkerDown { worker });

    if let Some(job_id) = inflight_job {
        if let Some(active) = st.active.get_mut(&job_id) {
            active.any_failure = true;
            active.pending.remove(&worker);
            if let Some(pmi) = &active.pmi {
                pmi.abort(&format!("worker {worker} died"));
            }
            let ppn = active.spec.ppn;
            inner.log.record(EventKind::TaskEnded {
                task: 0, // synthetic: the dead worker's task id is unknown here
                job: job_id,
                worker,
                ranks: ppn,
                exit_code: -127,
            });
            if active.pending.is_empty() {
                let active = st.active.remove(&job_id).expect("checked above");
                finish_job(inner, &mut st, active);
            }
        }
    }
    try_schedule(inner, &mut st);
    inner.idle_cv.notify_all();
}

/// A job finished (all participants accounted for). Requeue or record.
fn finish_job(inner: &Inner, st: &mut State, active: ActiveJob) {
    let success = !active.any_failure;
    let wall = active.started.elapsed();
    // Drop the PMI server; abort it first if the job failed so lingering
    // ranks unblock promptly.
    if let Some(pmi) = &active.pmi {
        if !success {
            pmi.abort("job failed");
        }
    }
    inner.log.record(EventKind::JobCompleted {
        job: active.id,
        nodes: active.spec.nodes,
        ppn: active.spec.ppn,
        success,
    });
    let retry = !success && active.attempts <= active.spec.max_retries;
    if retry {
        inner.log.record(EventKind::JobRequeued { job: active.id });
        if let Some(rec) = st.records.get_mut(&active.id) {
            rec.status = JobStatus::Pending;
            rec.wall = Some(wall);
            rec.exit_codes = active.exit_codes.clone();
            rec.outputs = active.outputs.clone();
        }
        st.queue.push_front(QueuedJob {
            id: active.id,
            spec: active.spec,
            attempts: active.attempts,
        });
        // outstanding unchanged: the job is still in flight.
    } else {
        if let Some(rec) = st.records.get_mut(&active.id) {
            rec.status = if success {
                JobStatus::Succeeded
            } else {
                JobStatus::Failed
            };
            rec.wall = Some(wall);
            rec.exit_codes = active.exit_codes.clone();
            rec.outputs = active.outputs.clone();
        }
        st.outstanding = st.outstanding.saturating_sub(1);
        inner.idle_cv.notify_all();
    }
    try_schedule(inner, st);
}

/// Fail a job that never shipped (e.g. PMI bind failure).
fn finish_failed_unstarted(inner: &Inner, st: &mut State, id: JobId, _reason: &str) {
    inner.log.record(EventKind::JobCompleted {
        job: id,
        nodes: st.records.get(&id).map(|r| r.spec.nodes).unwrap_or(0),
        ppn: st.records.get(&id).map(|r| r.spec.ppn).unwrap_or(0),
        success: false,
    });
    if let Some(rec) = st.records.get_mut(&id) {
        rec.status = JobStatus::Failed;
    }
    st.outstanding = st.outstanding.saturating_sub(1);
    inner.idle_cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CommandSpec;
    use std::io::BufReader;

    /// A minimal raw-protocol worker for exercising the dispatcher
    /// without depending on the jets-worker crate: executes builtin
    /// "ok" (exit 0), "fail" (exit 1), and "mpi-ok" (PMI handshake) apps.
    fn raw_worker(addr: SocketAddr, tasks_to_run: usize) -> thread::JoinHandle<usize> {
        thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            write_msg(
                &mut writer,
                &WorkerMsg::Register {
                    name: "raw".into(),
                    cores: 1,
                    location: "test".into(),
                },
            )
            .unwrap();
            let Some(DispatcherMsg::Registered { .. }) = read_msg(&mut reader).unwrap() else {
                panic!("expected Registered");
            };
            let mut done = 0;
            for _ in 0..tasks_to_run {
                write_msg(&mut writer, &WorkerMsg::Request).unwrap();
                match read_msg::<DispatcherMsg>(&mut reader).unwrap() {
                    Some(DispatcherMsg::Assign(a)) => {
                        let exit = run_assignment(&a);
                        write_msg(
                            &mut writer,
                            &WorkerMsg::Done {
                                task_id: a.task_id,
                                exit_code: exit,
                                wall_ms: 1,
                                output: None,
                            },
                        )
                        .unwrap();
                        done += 1;
                    }
                    Some(DispatcherMsg::Shutdown) | None => break,
                    other => panic!("unexpected: {other:?}"),
                }
            }
            write_msg(&mut writer, &WorkerMsg::Goodbye).ok();
            done
        })
    }

    fn run_assignment(a: &TaskAssignment) -> i32 {
        match &a.kind {
            TaskKind::Sequential { cmd } => match cmd.name() {
                "ok" => 0,
                "fail" => 1,
                other => panic!("unknown builtin {other}"),
            },
            TaskKind::MpiProxy {
                ranks,
                size,
                pmi_addr,
                pmi_jobid,
                ..
            } => {
                // Perform the PMI handshake for each hosted rank, the way
                // a Hydra proxy would.
                for &rank in ranks {
                    let mut c =
                        jets_pmi::PmiClient::connect(pmi_addr, rank, *size, pmi_jobid).unwrap();
                    c.put(&format!("bc.{rank}"), "x").unwrap();
                    c.fence().unwrap();
                    c.finalize().unwrap();
                }
                0
            }
        }
    }

    fn dispatcher() -> Dispatcher {
        Dispatcher::start(DispatcherConfig::default()).unwrap()
    }

    const WAIT: Duration = Duration::from_secs(30);

    #[test]
    fn sequential_job_runs_to_success() {
        let d = dispatcher();
        let w = raw_worker(d.addr(), 1);
        let id = d.submit(JobSpec::sequential(CommandSpec::builtin("ok", vec![])));
        assert!(d.wait_idle(WAIT));
        let rec = d.job_record(id).unwrap();
        assert_eq!(rec.status, JobStatus::Succeeded);
        assert_eq!(rec.exit_codes, vec![0]);
        d.shutdown();
        assert_eq!(w.join().unwrap(), 1);
    }

    #[test]
    fn failing_job_is_recorded_failed() {
        let d = dispatcher();
        let _w = raw_worker(d.addr(), 1);
        let id = d.submit(JobSpec::sequential(CommandSpec::builtin("fail", vec![])));
        assert!(d.wait_idle(WAIT));
        let rec = d.job_record(id).unwrap();
        assert_eq!(rec.status, JobStatus::Failed);
        assert_eq!(rec.exit_codes, vec![1]);
    }

    #[test]
    fn mpi_job_aggregates_workers_and_runs_pmi() {
        let d = dispatcher();
        let workers: Vec<_> = (0..3).map(|_| raw_worker(d.addr(), 1)).collect();
        let id = d.submit(JobSpec::mpi(3, CommandSpec::builtin("mpi", vec![])));
        assert!(d.wait_idle(WAIT));
        let rec = d.job_record(id).unwrap();
        assert_eq!(rec.status, JobStatus::Succeeded);
        assert_eq!(rec.exit_codes.len(), 3);
        d.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn many_sequential_jobs_complete() {
        let d = dispatcher();
        let workers: Vec<_> = (0..4).map(|_| raw_worker(d.addr(), 25)).collect();
        let ids =
            d.submit_all((0..100).map(|_| JobSpec::sequential(CommandSpec::builtin("ok", vec![]))));
        assert!(d.wait_idle(WAIT));
        for id in ids {
            assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        }
        d.shutdown();
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn job_larger_than_pool_waits_until_workers_arrive() {
        let d = dispatcher();
        let id = d.submit(JobSpec::mpi(2, CommandSpec::builtin("mpi", vec![])));
        // Nothing can run yet.
        assert!(!d.wait_idle(Duration::from_millis(50)));
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Pending);
        let w1 = raw_worker(d.addr(), 1);
        let w2 = raw_worker(d.addr(), 1);
        assert!(d.wait_idle(WAIT));
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
        d.shutdown();
        w1.join().unwrap();
        w2.join().unwrap();
    }

    #[test]
    fn worker_death_requeues_job_with_retries() {
        let d = dispatcher();
        // First worker registers, requests, then hangs up without running
        // anything (simulating death after assignment).
        let addr = d.addr();
        let killer = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            write_msg(
                &mut writer,
                &WorkerMsg::Register {
                    name: "doomed".into(),
                    cores: 1,
                    location: "test".into(),
                },
            )
            .unwrap();
            let _: Option<DispatcherMsg> = read_msg(&mut reader).unwrap();
            write_msg(&mut writer, &WorkerMsg::Request).unwrap();
            // Wait for the assignment, then die.
            let _: Option<DispatcherMsg> = read_msg(&mut reader).unwrap();
            drop(writer);
        });
        let id = d.submit(
            JobSpec::sequential(CommandSpec::builtin("ok", vec![])).with_retries(2),
        );
        killer.join().unwrap();
        // A healthy worker picks up the requeued job.
        let w = raw_worker(d.addr(), 1);
        assert!(d.wait_idle(WAIT));
        let rec = d.job_record(id).unwrap();
        assert_eq!(rec.status, JobStatus::Succeeded);
        assert!(rec.attempts >= 2, "attempts = {}", rec.attempts);
        d.shutdown();
        w.join().unwrap();
    }

    #[test]
    fn worker_death_without_retries_fails_job() {
        let d = dispatcher();
        let addr = d.addr();
        let killer = thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            write_msg(
                &mut writer,
                &WorkerMsg::Register {
                    name: "doomed".into(),
                    cores: 1,
                    location: "test".into(),
                },
            )
            .unwrap();
            let _: Option<DispatcherMsg> = read_msg(&mut reader).unwrap();
            write_msg(&mut writer, &WorkerMsg::Request).unwrap();
            let _: Option<DispatcherMsg> = read_msg(&mut reader).unwrap();
        });
        let id = d.submit(JobSpec::sequential(CommandSpec::builtin("ok", vec![])));
        killer.join().unwrap();
        assert!(d.wait_idle(WAIT));
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Failed);
    }

    #[test]
    fn event_log_tells_the_story() {
        let d = dispatcher();
        let _w = raw_worker(d.addr(), 1);
        d.submit(JobSpec::sequential(CommandSpec::builtin("ok", vec![])));
        assert!(d.wait_idle(WAIT));
        let events = d.events().snapshot();
        let kinds: Vec<&'static str> = events
            .iter()
            .map(|e| match e.kind {
                EventKind::WorkerUp { .. } => "up",
                EventKind::JobSubmitted { .. } => "submit",
                EventKind::JobStarted { .. } => "start",
                EventKind::TaskStarted { .. } => "tstart",
                EventKind::TaskEnded { .. } => "tend",
                EventKind::JobCompleted { .. } => "complete",
                _ => "other",
            })
            .collect();
        assert!(kinds.contains(&"up"));
        assert!(kinds.contains(&"submit"));
        assert!(kinds.contains(&"tstart"));
        assert!(kinds.contains(&"tend"));
        assert!(kinds.contains(&"complete"));
        // Submission precedes start precedes task end.
        let pos = |k: &str| kinds.iter().position(|&x| x == k).unwrap();
        assert!(pos("submit") < pos("start"));
        assert!(pos("tstart") < pos("tend"));
    }

    #[test]
    fn wait_idle_times_out_without_workers() {
        let d = dispatcher();
        d.submit(JobSpec::sequential(CommandSpec::builtin("ok", vec![])));
        assert!(!d.wait_idle(Duration::from_millis(40)));
        assert_eq!(d.outstanding(), 1);
    }
}
