//! # jets-core — the JETS dispatcher
//!
//! The centralized, single-user scheduler at the heart of JETS (Wozniak,
//! Wilde, Katz; ICPP 2011 / J Grid Computing 2013). Persistent pilot-job
//! *workers* register over TCP and request work; the dispatcher reads
//! batches of possibly-MPI job specifications, aggregates free workers
//! first-come-first-served into MPI-capable groups, runs one background
//! PMI process manager per MPI job (the `mpiexec launcher=manual`
//! mechanism, see `jets-pmi`), and ships the resulting proxy launch
//! commands to the group's workers. Sequential (1-node) jobs skip PMI and
//! dispatch directly, Falkon-style.
//!
//! The architecture follows the paper's stated principles: simple reusable
//! threading abstractions (channels + mutex/condvar), separate service
//! pipeline stages (socket management / handler processing / process
//! management) connected through obvious interfaces, ready composition and
//! decomposition, and the assumption that disconnection is likely (worker
//! death is detected by socket EOF and heartbeat timeout; in-flight jobs
//! are requeued).
//!
//! Modules:
//!
//! * [`spec`] — job specifications and the stand-alone `jets` input-file
//!   format (`MPI: 4 namd2.sh input-1.pdb output-1.log`).
//! * [`protocol`] — the dispatcher ⇄ worker wire protocol (JSON lines).
//! * [`queue`] — FIFO job queue, plus the priority/backfill policy the
//!   paper lists as future work (ablated in `bench/ablation_queue`).
//! * [`registry`] — worker bookkeeping; liveness is lock-free per-worker
//!   atomics ([`registry::HeartbeatHandle`]).
//! * [`group`] — worker-group selection: first-come-first-served (the
//!   paper's default) or location-aware (future work, ablated), over
//!   interned location ids.
//! * [`ready`] — the parked-`Request` ready list the scheduler consumes.
//! * [`events`] — timestamped event log of everything the dispatcher does.
//! * [`stats`] — utilization (Eq. 1 of the paper), load-level series, and
//!   run-time histograms computed from the event log.
//! * [`metrics`] — the live metric surface (`jets-obs` handles) behind
//!   `GET /metrics`; see `docs/observability.md`.
//! * [`journal`] — crash-durable write-ahead journal of dispatcher state
//!   transitions; replayed on restart (see `docs/fault-tolerance.md`).
//! * [`dispatcher`] — the engine tying it all together.

#![warn(missing_docs)]

pub mod dispatcher;
pub mod events;
pub mod group;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod ready;
pub mod registry;
pub mod spec;
pub mod stats;

pub use dispatcher::{Dispatcher, DispatcherConfig, JobRecord, JobStatus};
pub use events::{
    read_flight, read_jsonl, tail_flight, Event, EventCursor, EventKind, EventLog, EventRecord,
    FlightTail, FlightView, JsonlLoad, SpanKind, WriterRole,
};
pub use group::GroupingPolicy;
pub use journal::{FsyncPolicy, Journal};
pub use metrics::DispatcherMetrics;
pub use protocol::{DispatcherMsg, TaskAssignment, TaskKind, WorkerMsg};
pub use queue::QueuePolicy;
pub use spec::{CommandSpec, JobId, JobSpec, TaskId, WorkerId};
