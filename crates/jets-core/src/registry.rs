//! Worker registry: who is alive, where, and what they are doing.
//!
//! Workers are persistent pilot jobs; the dispatcher tracks each one from
//! registration to death. Death is detected two ways, per the paper's
//! fault-tolerance feature ("JETS automatically disregards workers that
//! fail or hang"): the connection dropping (fail) and heartbeat silence
//! (hang).
//!
//! ## Liveness is lock-free
//!
//! Last-seen tracking lives in one `AtomicU64` per worker (milliseconds
//! since the registry's epoch), shared between the registry and the
//! worker's connection thread through a [`HeartbeatHandle`]. A heartbeat
//! storm from ten thousand pilots therefore never touches the scheduling
//! lock — each `Heartbeat` message is a single relaxed atomic store. The
//! monitor thread reads the same atomics when hunting for hung workers.

use crate::group::{LocId, LocationInterner};
use crate::spec::{JobId, WorkerId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A lock-free handle to one worker's last-seen clock.
///
/// Cloned into the worker's connection thread at registration;
/// [`HeartbeatHandle::beat`] is the entire cost of a `Heartbeat` message.
#[derive(Debug, Clone)]
pub struct HeartbeatHandle {
    /// Milliseconds since `epoch` at which the worker was last heard.
    last_seen_ms: Arc<AtomicU64>,
    /// The registry's shared epoch.
    epoch: Instant,
}

impl HeartbeatHandle {
    fn new(epoch: Instant) -> Self {
        let h = HeartbeatHandle {
            last_seen_ms: Arc::new(AtomicU64::new(0)),
            epoch,
        };
        h.beat();
        h
    }

    /// Record "heard from now". Lock-free; safe from any thread.
    pub fn beat(&self) {
        // jets-lint: allow(relaxed) monotonic liveness clock: the monitor tolerates a stale read (one extra tick of apparent silence); no data is published through this store
        self.last_seen_ms
            .store(self.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    /// Milliseconds since this worker was last heard from.
    pub fn silence_ms(&self) -> u64 {
        let now = self.epoch.elapsed().as_millis() as u64;
        now.saturating_sub(self.last_seen_ms.load(Ordering::Relaxed))
    }
}

/// What a worker is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Connected, waiting to be handed work.
    Idle,
    /// Executing a task of the given job.
    Busy(JobId),
    /// Connected but benched: this worker's *name* killed too many recent
    /// gangs, so the scheduler skips it until the penalty expires at
    /// `until_ms` (milliseconds since the registry epoch). Quarantined
    /// workers still count as alive and their `Request` is held, not
    /// dropped.
    Quarantined {
        /// Release time, in milliseconds since the registry's epoch.
        until_ms: u64,
    },
    /// Gone (EOF, error, heartbeat timeout, or orderly goodbye).
    Dead,
}

/// Policy for benching workers that keep killing gangs.
///
/// Strikes are charged to the worker's *name*, not its connection: a
/// pilot that dies mid-gang and reconnects gets a fresh `WorkerId` but
/// inherits its record. A strike older than `decay` clears the whole
/// record (the node has been behaving), and a worker re-registering with
/// `threshold` or more live strikes is admitted `Quarantined` for
/// `penalty × strikes`, capped at `max_penalty`.
#[derive(Debug, Clone)]
pub struct QuarantinePolicy {
    /// Live strikes at which a re-registering worker is benched.
    pub threshold: u32,
    /// Bench time per live strike.
    pub penalty: Duration,
    /// A strike this old clears the record.
    pub decay: Duration,
    /// Upper bound on one bench period.
    pub max_penalty: Duration,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            threshold: 2,
            penalty: Duration::from_millis(500),
            decay: Duration::from_secs(60),
            max_penalty: Duration::from_secs(10),
        }
    }
}

/// A worker name's recent gang-kill record.
#[derive(Debug, Clone, Copy)]
struct FaultRecord {
    strikes: u32,
    last_ms: u64,
}

/// Everything the dispatcher knows about one worker.
#[derive(Debug, Clone)]
pub struct WorkerInfo {
    /// Dispatcher-assigned identifier.
    pub id: WorkerId,
    /// Self-reported name.
    pub name: String,
    /// Cores on the node.
    pub cores: u32,
    /// Network location label (used by location-aware grouping).
    pub location: String,
    /// The label's interned id (what the scheduling hot path uses).
    pub loc: LocId,
    /// Current state.
    pub state: WorkerState,
    /// Lock-free last-seen clock, shared with the connection thread.
    pub liveness: HeartbeatHandle,
    /// Completed task count.
    pub tasks_done: u64,
    /// The relay this worker registered through (`None` for a direct
    /// connection). Relayed workers share their relay's TCP connection;
    /// their liveness arrives in `BatchedHeartbeat` frames.
    pub relay: Option<WorkerId>,
}

/// The set of known workers.
#[derive(Debug)]
pub struct Registry {
    workers: HashMap<WorkerId, WorkerInfo>,
    locations: LocationInterner,
    epoch: Instant,
    /// Gang-kill strikes by worker *name*, surviving reconnects.
    faults: HashMap<String, FaultRecord>,
    quarantine: Option<QuarantinePolicy>,
    /// Every name that has ever registered. A registration whose name is
    /// already here is a *reconnect* — the same pilot coming back after a
    /// disconnect — which the dispatcher surfaces as `reconnects_total`
    /// so fault-layer behavior is observable without private accessors.
    seen_names: std::collections::HashSet<String>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            workers: HashMap::new(),
            locations: LocationInterner::new(),
            epoch: Instant::now(),
            faults: HashMap::new(),
            quarantine: None,
            seen_names: std::collections::HashSet::new(),
        }
    }
}

impl Registry {
    /// An empty registry with no quarantine policy.
    pub fn new() -> Self {
        Registry::default()
    }

    /// An empty registry that benches repeat gang-killers per `policy`.
    pub fn with_quarantine(policy: Option<QuarantinePolicy>) -> Self {
        Registry {
            quarantine: policy,
            ..Registry::default()
        }
    }

    /// Milliseconds since the registry's epoch (the clock quarantine
    /// release times are expressed in).
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Record a newly registered worker, returning its liveness handle
    /// for the connection thread. Admitted `Idle` unless the name has
    /// `threshold`+ live strikes under the quarantine policy, in which
    /// case it starts `Quarantined`.
    pub fn insert(
        &mut self,
        id: WorkerId,
        name: String,
        cores: u32,
        location: String,
    ) -> HeartbeatHandle {
        self.insert_via(id, name, cores, location, None)
    }

    /// [`Registry::insert`], recording the relay the worker registered
    /// through (`None` for a direct connection).
    pub fn insert_via(
        &mut self,
        id: WorkerId,
        name: String,
        cores: u32,
        location: String,
        relay: Option<WorkerId>,
    ) -> HeartbeatHandle {
        let loc = self.locations.intern(&location);
        let liveness = HeartbeatHandle::new(self.epoch);
        let state = self.admission_state(&name);
        self.seen_names.insert(name.clone());
        self.workers.insert(
            id,
            WorkerInfo {
                id,
                name,
                cores,
                location,
                loc,
                state,
                liveness: liveness.clone(),
                tasks_done: 0,
                relay,
            },
        );
        liveness
    }

    /// Ids of live workers registered through `relay`.
    pub fn relayed_by(&self, relay: WorkerId) -> Vec<WorkerId> {
        self.workers
            .values()
            .filter(|w| w.relay == Some(relay) && w.state != WorkerState::Dead)
            .map(|w| w.id)
            .collect()
    }

    /// Decide a (re-)registering name's initial state under the
    /// quarantine policy, pruning decayed strike records on the way.
    fn admission_state(&mut self, name: &str) -> WorkerState {
        let Some(policy) = &self.quarantine else {
            return WorkerState::Idle;
        };
        let now = self.epoch.elapsed().as_millis() as u64;
        let decay_ms = policy.decay.as_millis() as u64;
        let Some(rec) = self.faults.get(name) else {
            return WorkerState::Idle;
        };
        if now.saturating_sub(rec.last_ms) > decay_ms {
            self.faults.remove(name);
            return WorkerState::Idle;
        }
        if rec.strikes < policy.threshold {
            return WorkerState::Idle;
        }
        let bench = (policy.penalty * rec.strikes).min(policy.max_penalty);
        WorkerState::Quarantined {
            until_ms: now + bench.as_millis() as u64,
        }
    }

    /// Charge a gang-kill strike to `id`'s name (the worker died or hung
    /// while a task was in flight). Returns the name's live strike count,
    /// or `None` when the id is unknown or no quarantine policy is set.
    pub fn record_fault(&mut self, id: WorkerId) -> Option<u32> {
        self.quarantine.as_ref()?;
        let name = self.workers.get(&id)?.name.clone();
        let now = self.epoch.elapsed().as_millis() as u64;
        let rec = self.faults.entry(name).or_insert(FaultRecord {
            strikes: 0,
            last_ms: now,
        });
        rec.strikes += 1;
        rec.last_ms = now;
        Some(rec.strikes)
    }

    /// Seed `strikes` live strikes against `name` — journal replay after
    /// a dispatcher restart. The decay clock restarts now: the journal
    /// records strike counts, not the wall-clock instants they were
    /// earned (those died with the previous incarnation's epoch).
    pub fn seed_strikes(&mut self, name: &str, strikes: u32) {
        if self.quarantine.is_none() || strikes == 0 {
            return;
        }
        let now = self.epoch.elapsed().as_millis() as u64;
        self.faults.insert(
            name.to_string(),
            FaultRecord {
                strikes,
                last_ms: now,
            },
        );
    }

    /// Live strike count against a worker's name (diagnostics; does not
    /// prune decayed records).
    pub fn strikes(&self, id: WorkerId) -> u32 {
        self.workers
            .get(&id)
            .and_then(|w| self.faults.get(&w.name))
            .map(|r| r.strikes)
            .unwrap_or(0)
    }

    /// Release every quarantined worker whose penalty has expired,
    /// returning their ids (now `Idle`). Called by the monitor loop.
    pub fn release_expired(&mut self) -> Vec<WorkerId> {
        let now = self.epoch.elapsed().as_millis() as u64;
        let mut released = Vec::new();
        for w in self.workers.values_mut() {
            if let WorkerState::Quarantined { until_ms } = w.state {
                if now >= until_ms {
                    w.state = WorkerState::Idle;
                    released.push(w.id);
                }
            }
        }
        released
    }

    /// Look up a worker.
    pub fn get(&self, id: WorkerId) -> Option<&WorkerInfo> {
        self.workers.get(&id)
    }

    /// The interned-location table (label ↔ id).
    pub fn locations(&self) -> &LocationInterner {
        &self.locations
    }

    /// Update a worker's liveness timestamp. Lock-free once you hold the
    /// worker's [`HeartbeatHandle`]; this by-id variant is for callers
    /// that only have the registry.
    pub fn touch(&self, id: WorkerId) {
        if let Some(w) = self.workers.get(&id) {
            w.liveness.beat();
        }
    }

    /// Transition a worker to `Busy(job)`.
    pub fn mark_busy(&mut self, id: WorkerId, job: JobId) {
        if let Some(w) = self.workers.get_mut(&id) {
            w.state = WorkerState::Busy(job);
            w.liveness.beat();
        }
    }

    /// Transition a worker back to `Idle`, crediting a completed task.
    /// Dead and quarantined workers stay put: a late `Done` (stale report
    /// after a hang verdict or a cancellation) must not resurrect or
    /// un-bench them.
    pub fn mark_idle(&mut self, id: WorkerId) {
        if let Some(w) = self.workers.get_mut(&id) {
            match w.state {
                WorkerState::Busy(_) => {
                    w.tasks_done += 1;
                    w.state = WorkerState::Idle;
                }
                WorkerState::Idle => {}
                WorkerState::Quarantined { .. } | WorkerState::Dead => return,
            }
            w.liveness.beat();
        }
    }

    /// Transition a worker to `Dead`; returns the job it was running, if
    /// any, so the dispatcher can requeue it.
    pub fn mark_dead(&mut self, id: WorkerId) -> Option<JobId> {
        let w = self.workers.get_mut(&id)?;
        let job = match w.state {
            WorkerState::Busy(j) => Some(j),
            _ => None,
        };
        w.state = WorkerState::Dead;
        job
    }

    /// Workers not seen for longer than `timeout` (hang detection).
    /// Does not report already-dead workers. Reads only the per-worker
    /// atomics — no worker's connection thread is ever blocked by this.
    pub fn stale(&self, timeout: Duration) -> Vec<WorkerId> {
        let timeout_ms = timeout.as_millis() as u64;
        self.workers
            .values()
            .filter(|w| w.state != WorkerState::Dead && w.liveness.silence_ms() > timeout_ms)
            .map(|w| w.id)
            .collect()
    }

    /// Number of workers in any live state.
    pub fn alive_count(&self) -> usize {
        self.workers
            .values()
            .filter(|w| w.state != WorkerState::Dead)
            .count()
    }

    /// Number of busy workers.
    pub fn busy_count(&self) -> usize {
        self.workers
            .values()
            .filter(|w| matches!(w.state, WorkerState::Busy(_)))
            .count()
    }

    /// Number of currently quarantined workers (the live value behind
    /// the `jets_quarantined_current` gauge).
    pub fn quarantined_count(&self) -> usize {
        self.workers
            .values()
            .filter(|w| matches!(w.state, WorkerState::Quarantined { .. }))
            .count()
    }

    /// True if `name` has registered before — i.e. a registration under
    /// this name now would be a reconnect, not a first contact.
    pub fn known_name(&self, name: &str) -> bool {
        self.seen_names.contains(name)
    }

    /// All workers (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &WorkerInfo> {
        self.workers.values()
    }

    /// Total workers ever registered.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when no worker has ever registered.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(ids: &[WorkerId]) -> Registry {
        let mut r = Registry::new();
        for &id in ids {
            r.insert(id, format!("w{id}"), 4, "rack-0".into());
        }
        r
    }

    #[test]
    fn lifecycle_idle_busy_idle() {
        let mut r = reg_with(&[1]);
        assert_eq!(r.get(1).unwrap().state, WorkerState::Idle);
        r.mark_busy(1, 77);
        assert_eq!(r.get(1).unwrap().state, WorkerState::Busy(77));
        assert_eq!(r.busy_count(), 1);
        r.mark_idle(1);
        assert_eq!(r.get(1).unwrap().state, WorkerState::Idle);
        assert_eq!(r.get(1).unwrap().tasks_done, 1);
    }

    #[test]
    fn idle_to_idle_does_not_inflate_task_count() {
        let mut r = reg_with(&[1]);
        r.mark_idle(1);
        assert_eq!(r.get(1).unwrap().tasks_done, 0);
    }

    #[test]
    fn death_reports_inflight_job() {
        let mut r = reg_with(&[1, 2]);
        r.mark_busy(1, 5);
        assert_eq!(r.mark_dead(1), Some(5));
        assert_eq!(r.mark_dead(2), None);
        assert_eq!(r.alive_count(), 0);
    }

    #[test]
    fn stale_detection_skips_dead_workers() {
        let mut r = reg_with(&[1, 2]);
        r.mark_dead(2);
        std::thread::sleep(Duration::from_millis(15));
        let stale = r.stale(Duration::from_millis(5));
        assert_eq!(stale, vec![1]);
        // Touch resets staleness.
        r.touch(1);
        assert!(r.stale(Duration::from_millis(5)).is_empty());
    }

    /// A heartbeat handle keeps a worker fresh without any registry call
    /// — the lock-free path the dispatcher's heartbeat handling uses.
    #[test]
    fn heartbeat_handle_is_shared_with_the_registry() {
        let mut r = Registry::new();
        let hb = r.insert(1, "w1".into(), 1, "rack-0".into());
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(r.stale(Duration::from_millis(5)), vec![1]);
        hb.beat();
        assert!(r.stale(Duration::from_millis(5)).is_empty());
        assert!(hb.silence_ms() < 5);
    }

    #[test]
    fn locations_are_interned_per_registry() {
        let mut r = Registry::new();
        r.insert(1, "a".into(), 1, "rack-0".into());
        r.insert(2, "b".into(), 1, "rack-1".into());
        r.insert(3, "c".into(), 1, "rack-0".into());
        assert_eq!(r.get(1).unwrap().loc, r.get(3).unwrap().loc);
        assert_ne!(r.get(1).unwrap().loc, r.get(2).unwrap().loc);
        assert_eq!(r.locations().len(), 2);
        assert_eq!(r.locations().name(r.get(2).unwrap().loc), "rack-1");
    }

    #[test]
    fn counts() {
        let mut r = reg_with(&[1, 2, 3]);
        r.mark_busy(2, 1);
        r.mark_dead(3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.alive_count(), 2);
        assert_eq!(r.busy_count(), 1);
        assert!(!r.is_empty());
    }

    fn quarantine_policy(penalty_ms: u64, decay_ms: u64) -> QuarantinePolicy {
        QuarantinePolicy {
            threshold: 2,
            penalty: Duration::from_millis(penalty_ms),
            decay: Duration::from_millis(decay_ms),
            max_penalty: Duration::from_secs(10),
        }
    }

    #[test]
    fn strikes_quarantine_a_reconnecting_name() {
        let mut r = Registry::with_quarantine(Some(quarantine_policy(50, 10_000)));
        // First incarnation dies mid-gang twice (reconnect between).
        r.insert(1, "flaky".into(), 1, "rack-0".into());
        r.mark_busy(1, 9);
        assert_eq!(r.record_fault(1), Some(1));
        r.mark_dead(1);
        r.insert(2, "flaky".into(), 1, "rack-0".into());
        assert_eq!(
            r.get(2).unwrap().state,
            WorkerState::Idle,
            "one strike is tolerated"
        );
        r.mark_busy(2, 10);
        assert_eq!(r.record_fault(2), Some(2));
        r.mark_dead(2);
        // Third incarnation is benched.
        r.insert(3, "flaky".into(), 1, "rack-0".into());
        assert!(matches!(
            r.get(3).unwrap().state,
            WorkerState::Quarantined { .. }
        ));
        // Quarantined still counts as alive, and a stale Done does not
        // un-bench it.
        assert_eq!(r.alive_count(), 1);
        r.mark_idle(3);
        assert!(matches!(
            r.get(3).unwrap().state,
            WorkerState::Quarantined { .. }
        ));
        // The penalty expires and the monitor releases it.
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(r.release_expired(), vec![3]);
        assert_eq!(r.get(3).unwrap().state, WorkerState::Idle);
    }

    #[test]
    fn strikes_decay() {
        let mut r = Registry::with_quarantine(Some(quarantine_policy(50, 20)));
        r.insert(1, "w".into(), 1, "rack-0".into());
        r.mark_busy(1, 1);
        r.record_fault(1);
        r.record_fault(1);
        r.mark_dead(1);
        std::thread::sleep(Duration::from_millis(40));
        // Strikes are stale: the name re-registers Idle.
        r.insert(2, "w".into(), 1, "rack-0".into());
        assert_eq!(r.get(2).unwrap().state, WorkerState::Idle);
    }

    #[test]
    fn seeded_strikes_quarantine_like_earned_ones() {
        let mut r = Registry::with_quarantine(Some(quarantine_policy(50, 10_000)));
        r.seed_strikes("flaky", 2);
        r.seed_strikes("fine", 0); // no-op
        r.insert(1, "flaky".into(), 1, "rack-0".into());
        assert!(matches!(
            r.get(1).unwrap().state,
            WorkerState::Quarantined { .. }
        ));
        assert_eq!(r.strikes(1), 2);
        r.insert(2, "fine".into(), 1, "rack-0".into());
        assert_eq!(r.get(2).unwrap().state, WorkerState::Idle);
        // Without a policy, seeding is a no-op.
        let mut bare = Registry::new();
        bare.seed_strikes("flaky", 5);
        bare.insert(3, "flaky".into(), 1, "rack-0".into());
        assert_eq!(bare.get(3).unwrap().state, WorkerState::Idle);
    }

    #[test]
    fn no_policy_means_no_quarantine() {
        let mut r = reg_with(&[1]);
        r.mark_busy(1, 1);
        assert_eq!(r.record_fault(1), None);
        r.mark_dead(1);
        r.insert(2, "w1".into(), 4, "rack-0".into());
        assert_eq!(r.get(2).unwrap().state, WorkerState::Idle);
        assert!(r.release_expired().is_empty());
    }

    #[test]
    fn relayed_workers_are_tracked_per_relay() {
        let mut r = Registry::new();
        r.insert(1, "direct".into(), 4, "rack-0".into());
        r.insert_via(2, "a".into(), 4, "rack-0".into(), Some(100));
        r.insert_via(3, "b".into(), 4, "rack-0".into(), Some(100));
        r.insert_via(4, "c".into(), 4, "rack-0".into(), Some(200));
        assert_eq!(r.get(1).unwrap().relay, None);
        assert_eq!(r.get(2).unwrap().relay, Some(100));
        let mut via_100 = r.relayed_by(100);
        via_100.sort_unstable();
        assert_eq!(via_100, vec![2, 3]);
        r.mark_dead(3);
        assert_eq!(r.relayed_by(100), vec![2]);
        assert_eq!(r.relayed_by(200), vec![4]);
        assert!(r.relayed_by(999).is_empty());
    }

    #[test]
    fn unknown_ids_are_harmless() {
        let mut r = Registry::new();
        r.touch(9);
        r.mark_busy(9, 1);
        r.mark_idle(9);
        assert_eq!(r.mark_dead(9), None);
        assert!(r.get(9).is_none());
    }
}
