//! Worker registry: who is alive, where, and what they are doing.
//!
//! Workers are persistent pilot jobs; the dispatcher tracks each one from
//! registration to death. Death is detected two ways, per the paper's
//! fault-tolerance feature ("JETS automatically disregards workers that
//! fail or hang"): the connection dropping (fail) and heartbeat silence
//! (hang).

use crate::spec::{JobId, WorkerId};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// What a worker is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Connected, waiting to be handed work.
    Idle,
    /// Executing a task of the given job.
    Busy(JobId),
    /// Gone (EOF, error, heartbeat timeout, or orderly goodbye).
    Dead,
}

/// Everything the dispatcher knows about one worker.
#[derive(Debug, Clone)]
pub struct WorkerInfo {
    /// Dispatcher-assigned identifier.
    pub id: WorkerId,
    /// Self-reported name.
    pub name: String,
    /// Cores on the node.
    pub cores: u32,
    /// Network location label (used by location-aware grouping).
    pub location: String,
    /// Current state.
    pub state: WorkerState,
    /// Last time we heard anything from this worker.
    pub last_seen: Instant,
    /// Completed task count.
    pub tasks_done: u64,
}

/// The set of known workers.
#[derive(Debug, Default)]
pub struct Registry {
    workers: HashMap<WorkerId, WorkerInfo>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Record a newly registered worker (state `Idle`).
    pub fn insert(&mut self, id: WorkerId, name: String, cores: u32, location: String) {
        self.workers.insert(
            id,
            WorkerInfo {
                id,
                name,
                cores,
                location,
                state: WorkerState::Idle,
                last_seen: Instant::now(),
                tasks_done: 0,
            },
        );
    }

    /// Look up a worker.
    pub fn get(&self, id: WorkerId) -> Option<&WorkerInfo> {
        self.workers.get(&id)
    }

    /// Update a worker's liveness timestamp.
    pub fn touch(&mut self, id: WorkerId) {
        if let Some(w) = self.workers.get_mut(&id) {
            w.last_seen = Instant::now();
        }
    }

    /// Transition a worker to `Busy(job)`.
    pub fn mark_busy(&mut self, id: WorkerId, job: JobId) {
        if let Some(w) = self.workers.get_mut(&id) {
            w.state = WorkerState::Busy(job);
            w.last_seen = Instant::now();
        }
    }

    /// Transition a worker back to `Idle`, crediting a completed task.
    pub fn mark_idle(&mut self, id: WorkerId) {
        if let Some(w) = self.workers.get_mut(&id) {
            if matches!(w.state, WorkerState::Busy(_)) {
                w.tasks_done += 1;
            }
            w.state = WorkerState::Idle;
            w.last_seen = Instant::now();
        }
    }

    /// Transition a worker to `Dead`; returns the job it was running, if
    /// any, so the dispatcher can requeue it.
    pub fn mark_dead(&mut self, id: WorkerId) -> Option<JobId> {
        let w = self.workers.get_mut(&id)?;
        let job = match w.state {
            WorkerState::Busy(j) => Some(j),
            _ => None,
        };
        w.state = WorkerState::Dead;
        job
    }

    /// Workers not seen for longer than `timeout` (hang detection).
    /// Does not report already-dead workers.
    pub fn stale(&self, timeout: Duration) -> Vec<WorkerId> {
        let now = Instant::now();
        self.workers
            .values()
            .filter(|w| w.state != WorkerState::Dead && now - w.last_seen > timeout)
            .map(|w| w.id)
            .collect()
    }

    /// Number of workers in any live state.
    pub fn alive_count(&self) -> usize {
        self.workers
            .values()
            .filter(|w| w.state != WorkerState::Dead)
            .count()
    }

    /// Number of busy workers.
    pub fn busy_count(&self) -> usize {
        self.workers
            .values()
            .filter(|w| matches!(w.state, WorkerState::Busy(_)))
            .count()
    }

    /// All workers (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &WorkerInfo> {
        self.workers.values()
    }

    /// Total workers ever registered.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when no worker has ever registered.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(ids: &[WorkerId]) -> Registry {
        let mut r = Registry::new();
        for &id in ids {
            r.insert(id, format!("w{id}"), 4, "rack-0".into());
        }
        r
    }

    #[test]
    fn lifecycle_idle_busy_idle() {
        let mut r = reg_with(&[1]);
        assert_eq!(r.get(1).unwrap().state, WorkerState::Idle);
        r.mark_busy(1, 77);
        assert_eq!(r.get(1).unwrap().state, WorkerState::Busy(77));
        assert_eq!(r.busy_count(), 1);
        r.mark_idle(1);
        assert_eq!(r.get(1).unwrap().state, WorkerState::Idle);
        assert_eq!(r.get(1).unwrap().tasks_done, 1);
    }

    #[test]
    fn idle_to_idle_does_not_inflate_task_count() {
        let mut r = reg_with(&[1]);
        r.mark_idle(1);
        assert_eq!(r.get(1).unwrap().tasks_done, 0);
    }

    #[test]
    fn death_reports_inflight_job() {
        let mut r = reg_with(&[1, 2]);
        r.mark_busy(1, 5);
        assert_eq!(r.mark_dead(1), Some(5));
        assert_eq!(r.mark_dead(2), None);
        assert_eq!(r.alive_count(), 0);
    }

    #[test]
    fn stale_detection_skips_dead_workers() {
        let mut r = reg_with(&[1, 2]);
        r.mark_dead(2);
        std::thread::sleep(Duration::from_millis(15));
        let stale = r.stale(Duration::from_millis(5));
        assert_eq!(stale, vec![1]);
        // Touch resets staleness.
        r.touch(1);
        assert!(r.stale(Duration::from_millis(5)).is_empty());
    }

    #[test]
    fn counts() {
        let mut r = reg_with(&[1, 2, 3]);
        r.mark_busy(2, 1);
        r.mark_dead(3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.alive_count(), 2);
        assert_eq!(r.busy_count(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn unknown_ids_are_harmless() {
        let mut r = Registry::new();
        r.touch(9);
        r.mark_busy(9, 1);
        r.mark_idle(9);
        assert_eq!(r.mark_dead(9), None);
        assert!(r.get(9).is_none());
    }
}
