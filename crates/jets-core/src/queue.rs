//! The dispatcher's job queue.
//!
//! JETS "operates at high speed in part because it uses a simple FIFO
//! queuing approach" (paper, Section 7); the same section plans
//! priority-based scheduling and backfill as future work. Both policies
//! are implemented here so the trade-off can be measured
//! (`bench/ablation_queue`):
//!
//! * [`QueuePolicy::Fifo`] — strict arrival order. A job that does not
//!   fit the currently-free workers blocks everything behind it
//!   (head-of-line blocking), but dequeue is O(1) and starvation-free.
//! * [`QueuePolicy::PriorityBackfill`] — jobs are ordered by priority
//!   (stable within a priority level), and the scheduler may reach past a
//!   job that cannot start yet to *backfill* smaller jobs onto idle
//!   workers.

use crate::spec::{JobId, JobSpec, WorkerId};
use std::collections::VecDeque;
use std::time::Instant;

/// Queue discipline for pending jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Strict first-in-first-out (the paper's default).
    #[default]
    Fifo,
    /// Priority order with backfill past blocked jobs.
    PriorityBackfill,
}

/// A job waiting to be scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedJob {
    /// The job's identifier.
    pub id: JobId,
    /// Its specification.
    pub spec: JobSpec,
    /// Retries already consumed (set when a job is requeued after a
    /// worker failure).
    pub attempts: u32,
    /// Workers the previous attempt blames (died mid-gang, reported a
    /// nonzero exit, or went unreachable). The scheduler avoids them for
    /// exactly one attempt — best effort, never blocking: if avoiding
    /// them would leave the job unschedulable, they are used anyway.
    pub excluded: Vec<WorkerId>,
    /// When the job was first submitted: the span epoch for the
    /// end-to-end (`total`) phase, carried unchanged across requeues.
    pub submitted_at: Instant,
    /// When this attempt entered the queue: the span epoch for the
    /// queue-wait phase, reset on every requeue.
    pub enqueued_at: Instant,
    /// The job's trace id, minted at submission and carried unchanged
    /// across requeues: the correlation key for cross-process span
    /// tracing (see `docs/observability.md`).
    pub trace: u64,
}

/// Pending-job queue under a [`QueuePolicy`].
#[derive(Debug, Default)]
pub struct JobQueue {
    policy: QueuePolicy,
    jobs: VecDeque<QueuedJob>,
}

impl JobQueue {
    /// An empty queue with the given policy.
    pub fn new(policy: QueuePolicy) -> Self {
        JobQueue {
            policy,
            jobs: VecDeque::new(),
        }
    }

    /// The queue's policy.
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    /// Number of pending jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are pending.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Enqueue a job. Under FIFO it goes to the back; under
    /// priority/backfill it is inserted behind the last job of priority
    /// ≥ its own (stable priority order).
    pub fn push(&mut self, job: QueuedJob) {
        match self.policy {
            QueuePolicy::Fifo => self.jobs.push_back(job),
            QueuePolicy::PriorityBackfill => {
                let pos = self
                    .jobs
                    .iter()
                    .position(|j| j.spec.priority < job.spec.priority)
                    .unwrap_or(self.jobs.len());
                self.jobs.insert(pos, job);
            }
        }
    }

    /// Requeue a failed job at the *front* of its class so a transient
    /// worker failure does not send the job to the back of a long batch.
    ///
    /// Under FIFO that is the literal queue front. Under
    /// priority/backfill a blind `push_front` would break the
    /// sorted-by-priority invariant that [`JobQueue::push`]'s insertion
    /// scan relies on (a low-priority requeue parked at the head would
    /// make later high-priority pushes land behind it), so the requeue is
    /// inserted *ahead of equal-priority peers* but still behind strictly
    /// higher priorities.
    pub fn push_front(&mut self, job: QueuedJob) {
        match self.policy {
            QueuePolicy::Fifo => self.jobs.push_front(job),
            QueuePolicy::PriorityBackfill => {
                let pos = self
                    .jobs
                    .iter()
                    .position(|j| j.spec.priority <= job.spec.priority)
                    .unwrap_or(self.jobs.len());
                self.jobs.insert(pos, job);
            }
        }
    }

    /// Select the next runnable job given `free_workers` currently-idle
    /// workers, removing and returning it.
    ///
    /// FIFO considers only the head; priority/backfill scans forward for
    /// the first job that fits.
    pub fn pick(&mut self, free_workers: usize) -> Option<QueuedJob> {
        match self.policy {
            QueuePolicy::Fifo => {
                if self
                    .jobs
                    .front()
                    .is_some_and(|j| j.spec.nodes as usize <= free_workers)
                {
                    self.jobs.pop_front()
                } else {
                    None
                }
            }
            QueuePolicy::PriorityBackfill => {
                let pos = self
                    .jobs
                    .iter()
                    .position(|j| j.spec.nodes as usize <= free_workers)?;
                self.jobs.remove(pos)
            }
        }
    }

    /// Peek at the pending jobs in scheduling order (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &QueuedJob> {
        self.jobs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CommandSpec;

    fn job(id: JobId, nodes: u32, priority: i32) -> QueuedJob {
        QueuedJob {
            id,
            spec: JobSpec::mpi(nodes, CommandSpec::builtin("x", vec![])).with_priority(priority),
            attempts: 0,
            excluded: Vec::new(),
            submitted_at: Instant::now(),
            enqueued_at: Instant::now(),
            trace: 0,
        }
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut q = JobQueue::new(QueuePolicy::Fifo);
        q.push(job(1, 1, 0));
        q.push(job(2, 1, 9)); // priority ignored by FIFO
        q.push(job(3, 1, 0));
        assert_eq!(q.pick(8).unwrap().id, 1);
        assert_eq!(q.pick(8).unwrap().id, 2);
        assert_eq!(q.pick(8).unwrap().id, 3);
        assert!(q.pick(8).is_none());
    }

    #[test]
    fn fifo_blocks_behind_oversized_head() {
        let mut q = JobQueue::new(QueuePolicy::Fifo);
        q.push(job(1, 16, 0));
        q.push(job(2, 1, 0));
        // Only 4 workers free: the 16-node head blocks the 1-node job.
        assert!(q.pick(4).is_none());
        assert_eq!(q.len(), 2);
        // Once enough workers free up, the head goes first.
        assert_eq!(q.pick(16).unwrap().id, 1);
        assert_eq!(q.pick(16).unwrap().id, 2);
    }

    #[test]
    fn backfill_reaches_past_blocked_head() {
        let mut q = JobQueue::new(QueuePolicy::PriorityBackfill);
        q.push(job(1, 16, 0));
        q.push(job(2, 2, 0));
        q.push(job(3, 1, 0));
        assert_eq!(q.pick(4).unwrap().id, 2);
        assert_eq!(q.pick(1).unwrap().id, 3);
        assert!(q.pick(4).is_none());
        assert_eq!(q.pick(16).unwrap().id, 1);
    }

    #[test]
    fn priority_orders_jobs_stably() {
        let mut q = JobQueue::new(QueuePolicy::PriorityBackfill);
        q.push(job(1, 1, 0));
        q.push(job(2, 1, 5));
        q.push(job(3, 1, 5));
        q.push(job(4, 1, 10));
        let order: Vec<JobId> = std::iter::from_fn(|| q.pick(8).map(|j| j.id)).collect();
        assert_eq!(order, vec![4, 2, 3, 1]);
    }

    #[test]
    fn push_front_requeues_ahead_of_everything() {
        let mut q = JobQueue::new(QueuePolicy::Fifo);
        q.push(job(1, 1, 0));
        q.push_front(job(9, 1, 0));
        assert_eq!(q.pick(8).unwrap().id, 9);
    }

    /// Regression: under PriorityBackfill a requeued job must not jump
    /// ahead of strictly higher-priority work, but must still beat its
    /// equal-priority peers — and the queue must stay priority-sorted so
    /// subsequent `push`es land correctly.
    #[test]
    fn push_front_respects_priority_order() {
        let mut q = JobQueue::new(QueuePolicy::PriorityBackfill);
        q.push(job(1, 1, 10));
        q.push(job(2, 1, 5));
        q.push(job(3, 1, 5));
        q.push(job(4, 1, 0));
        // Requeue a priority-5 job: behind the 10, ahead of both 5s.
        q.push_front(job(9, 1, 5));
        // The sorted invariant must still hold for later pushes.
        q.push(job(5, 1, 7));
        let order: Vec<JobId> = std::iter::from_fn(|| q.pick(8).map(|j| j.id)).collect();
        assert_eq!(order, vec![1, 5, 9, 2, 3, 4]);
    }

    /// Regression: a requeued low-priority job must not block the head.
    #[test]
    fn push_front_low_priority_requeue_does_not_park_at_head() {
        let mut q = JobQueue::new(QueuePolicy::PriorityBackfill);
        q.push(job(1, 1, 0));
        q.push_front(job(9, 1, -3));
        q.push(job(2, 1, 8));
        let order: Vec<JobId> = std::iter::from_fn(|| q.pick(8).map(|j| j.id)).collect();
        assert_eq!(order, vec![2, 1, 9]);
    }

    #[test]
    fn empty_queue_reports_empty() {
        let mut q = JobQueue::new(QueuePolicy::Fifo);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pick(100).is_none());
    }
}
