//! Derived statistics: the quantities the paper's figures plot.
//!
//! * [`utilization_eq1`] — Equation (1) of the paper:
//!   `utilization = duration × jobs × n / (allocation_size × time)`.
//! * [`measured_utilization`] — the same quantity computed from observed
//!   task start/end events rather than nominal durations.
//! * [`load_series`] — running tasks / busy ranks over time (Figs. 10, 13).
//! * [`availability_series`] — live-worker count over time (Fig. 10).
//! * [`histogram`] — run-time distribution binning (Fig. 11).

use crate::events::{Event, EventKind};
use std::collections::HashMap;
use std::time::Duration;

/// Equation (1): utilization of an allocation of `allocation_size` nodes
/// over `total_time`, by `jobs` jobs of `n` nodes each running for
/// `duration`.
pub fn utilization_eq1(
    duration: Duration,
    jobs: usize,
    n: usize,
    allocation_size: usize,
    total_time: Duration,
) -> f64 {
    if allocation_size == 0 || total_time.is_zero() {
        return 0.0;
    }
    duration.as_secs_f64() * jobs as f64 * n as f64
        / (allocation_size as f64 * total_time.as_secs_f64())
}

/// Utilization computed from the event log: total busy node-seconds
/// (between each `TaskStarted` and its `TaskEnded`) divided by
/// `allocation_size × makespan`, where the makespan runs from the first
/// task start to the last task end.
pub fn measured_utilization(events: &[Event], allocation_size: usize) -> f64 {
    let mut open: HashMap<u64, Duration> = HashMap::new();
    let mut busy = Duration::ZERO;
    let mut first: Option<Duration> = None;
    let mut last: Option<Duration> = None;
    for e in events {
        match &e.kind {
            EventKind::TaskStarted { task, .. } => {
                open.insert(*task, e.t);
                if first.is_none() {
                    first = Some(e.t);
                }
            }
            EventKind::TaskEnded { task, .. } => {
                if let Some(start) = open.remove(task) {
                    busy += e.t.saturating_sub(start);
                    last = Some(e.t);
                }
            }
            _ => {}
        }
    }
    let (Some(first), Some(last)) = (first, last) else {
        return 0.0;
    };
    let makespan = last.saturating_sub(first);
    if makespan.is_zero() || allocation_size == 0 {
        return 0.0;
    }
    busy.as_secs_f64() / (allocation_size as f64 * makespan.as_secs_f64())
}

/// One sample of system load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadSample {
    /// Sample time since the log epoch.
    pub t: Duration,
    /// Tasks executing at this instant.
    pub running_tasks: usize,
    /// Sum of ranks of executing tasks ("busy cores" in Fig. 13).
    pub busy_ranks: usize,
}

/// Sample running-task and busy-rank counts every `step` across the span
/// of the log.
pub fn load_series(events: &[Event], step: Duration) -> Vec<LoadSample> {
    assert!(!step.is_zero(), "step must be positive");
    // Build a delta list: +ranks at task start, −ranks at task end.
    let mut deltas: Vec<(Duration, i64, i64)> = Vec::new();
    for e in events {
        match &e.kind {
            EventKind::TaskStarted { ranks, .. } => deltas.push((e.t, 1, *ranks as i64)),
            EventKind::TaskEnded { ranks, .. } => deltas.push((e.t, -1, -(*ranks as i64))),
            _ => {}
        }
    }
    if deltas.is_empty() {
        return Vec::new();
    }
    deltas.sort_by_key(|d| d.0);
    let end = deltas.last().expect("nonempty").0;
    let mut samples = Vec::new();
    let mut tasks: i64 = 0;
    let mut ranks: i64 = 0;
    let mut di = 0;
    let mut t = Duration::ZERO;
    loop {
        while di < deltas.len() && deltas[di].0 <= t {
            tasks += deltas[di].1;
            ranks += deltas[di].2;
            di += 1;
        }
        samples.push(LoadSample {
            t,
            running_tasks: tasks.max(0) as usize,
            busy_ranks: ranks.max(0) as usize,
        });
        if t >= end {
            break;
        }
        t += step;
    }
    samples
}

/// One sample of worker availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvailabilitySample {
    /// Sample time since the log epoch.
    pub t: Duration,
    /// Workers alive at this instant.
    pub alive: usize,
}

/// Sample the live-worker count every `step` across the span of the log
/// (the "nodes available" line of Fig. 10).
pub fn availability_series(events: &[Event], step: Duration) -> Vec<AvailabilitySample> {
    assert!(!step.is_zero(), "step must be positive");
    let mut deltas: Vec<(Duration, i64)> = Vec::new();
    for e in events {
        match &e.kind {
            EventKind::WorkerUp { .. } => deltas.push((e.t, 1)),
            EventKind::WorkerDown { .. } => deltas.push((e.t, -1)),
            _ => {}
        }
    }
    if deltas.is_empty() {
        return Vec::new();
    }
    deltas.sort_by_key(|d| d.0);
    let end = events.iter().map(|e| e.t).max().unwrap_or(Duration::ZERO);
    let mut samples = Vec::new();
    let mut alive: i64 = 0;
    let mut di = 0;
    let mut t = Duration::ZERO;
    loop {
        while di < deltas.len() && deltas[di].0 <= t {
            alive += deltas[di].1;
            di += 1;
        }
        samples.push(AvailabilitySample {
            t,
            alive: alive.max(0) as usize,
        });
        if t >= end {
            break;
        }
        t += step;
    }
    samples
}

/// Task wall times (seconds) extracted from the log, one per completed
/// task.
pub fn task_wall_times(events: &[Event]) -> Vec<f64> {
    let mut open: HashMap<u64, Duration> = HashMap::new();
    let mut walls = Vec::new();
    for e in events {
        match &e.kind {
            EventKind::TaskStarted { task, .. } => {
                open.insert(*task, e.t);
            }
            EventKind::TaskEnded { task, .. } => {
                if let Some(start) = open.remove(task) {
                    walls.push(e.t.saturating_sub(start).as_secs_f64());
                }
            }
            _ => {}
        }
    }
    walls
}

/// A histogram bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramBin {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge.
    pub hi: f64,
    /// Sample count in `[lo, hi)`.
    pub count: usize,
}

/// Bin `samples` into fixed-width bins from the sample minimum.
pub fn histogram(samples: &[f64], bin_width: f64) -> Vec<HistogramBin> {
    assert!(bin_width > 0.0, "bin width must be positive");
    if samples.is_empty() {
        return Vec::new();
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let nbins = (((max - min) / bin_width).floor() as usize) + 1;
    let mut bins: Vec<HistogramBin> = (0..nbins)
        .map(|i| HistogramBin {
            lo: min + i as f64 * bin_width,
            hi: min + (i + 1) as f64 * bin_width,
            count: 0,
        })
        .collect();
    for &s in samples {
        let idx = (((s - min) / bin_width).floor() as usize).min(nbins - 1);
        bins[idx].count += 1;
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;

    fn ev(ms: u64, kind: EventKind) -> Event {
        Event {
            t: Duration::from_millis(ms),
            kind,
        }
    }

    fn task_started(ms: u64, task: u64, ranks: u32) -> Event {
        ev(
            ms,
            EventKind::TaskStarted {
                task,
                job: 0,
                worker: task,
                ranks,
            },
        )
    }

    fn task_ended(ms: u64, task: u64, ranks: u32) -> Event {
        ev(
            ms,
            EventKind::TaskEnded {
                task,
                job: 0,
                worker: task,
                ranks,
                exit_code: 0,
                trace: 0,
            },
        )
    }

    #[test]
    fn eq1_matches_the_paper_formula() {
        // 64 jobs of 4 nodes × 10 s in a 256-node allocation over 10 s:
        // exactly full.
        let u = utilization_eq1(Duration::from_secs(10), 64, 4, 256, Duration::from_secs(10));
        assert!((u - 1.0).abs() < 1e-12);
        // Twice the time: 50 %.
        let u = utilization_eq1(Duration::from_secs(10), 64, 4, 256, Duration::from_secs(20));
        assert!((u - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eq1_degenerate_inputs() {
        assert_eq!(
            utilization_eq1(Duration::from_secs(1), 1, 1, 0, Duration::from_secs(1)),
            0.0
        );
        assert_eq!(
            utilization_eq1(Duration::from_secs(1), 1, 1, 1, Duration::ZERO),
            0.0
        );
    }

    #[test]
    fn measured_utilization_from_events() {
        // Two workers; each busy 100 ms of a 200 ms makespan → 50 %.
        let events = vec![
            task_started(0, 1, 1),
            task_ended(100, 1, 1),
            task_started(100, 2, 1),
            task_ended(200, 2, 1),
        ];
        let u = measured_utilization(&events, 2);
        assert!((u - 0.5).abs() < 1e-9, "u = {u}");
    }

    #[test]
    fn measured_utilization_empty_log() {
        assert_eq!(measured_utilization(&[], 4), 0.0);
    }

    #[test]
    fn load_series_counts_overlap() {
        let events = vec![
            task_started(0, 1, 4),
            task_started(10, 2, 2),
            task_ended(20, 1, 4),
            task_ended(30, 2, 2),
        ];
        let series = load_series(&events, Duration::from_millis(10));
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].running_tasks, 1);
        assert_eq!(series[0].busy_ranks, 4);
        assert_eq!(series[1].running_tasks, 2);
        assert_eq!(series[1].busy_ranks, 6);
        assert_eq!(series[2].running_tasks, 1);
        assert_eq!(series[2].busy_ranks, 2);
        assert_eq!(series[3].running_tasks, 0);
    }

    #[test]
    fn availability_series_tracks_deaths() {
        let events = vec![
            ev(0, EventKind::WorkerUp { worker: 1 }),
            ev(0, EventKind::WorkerUp { worker: 2 }),
            ev(15, EventKind::WorkerDown { worker: 1 }),
            ev(30, EventKind::WorkerDown { worker: 2 }),
        ];
        let series = availability_series(&events, Duration::from_millis(10));
        assert_eq!(series[0].alive, 2);
        assert_eq!(series[2].alive, 1); // t = 20 ms, after first death
        assert_eq!(series.last().unwrap().alive, 0);
    }

    #[test]
    fn wall_times_extracted() {
        let events = vec![
            task_started(0, 1, 1),
            task_started(5, 2, 1),
            task_ended(100, 1, 1),
            task_ended(55, 2, 1),
        ];
        let mut walls = task_wall_times(&events);
        walls.sort_by(f64::total_cmp);
        assert_eq!(walls.len(), 2);
        assert!((walls[0] - 0.050).abs() < 1e-9);
        assert!((walls[1] - 0.100).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins_cover_all_samples() {
        let samples = [100.0, 101.0, 105.0, 119.9, 160.0];
        let bins = histogram(&samples, 10.0);
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, samples.len());
        assert_eq!(bins[0].lo, 100.0);
        assert_eq!(bins[0].count, 3); // 100, 101, 105
        assert_eq!(bins[1].count, 1); // 119.9
        assert_eq!(bins.last().unwrap().count, 1); // 160 in the top bin
    }

    #[test]
    fn histogram_single_sample() {
        let bins = histogram(&[42.0], 5.0);
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].count, 1);
    }

    #[test]
    fn histogram_empty() {
        assert!(histogram(&[], 1.0).is_empty());
    }
}
