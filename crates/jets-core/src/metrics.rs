//! The dispatcher's live metric surface.
//!
//! One [`DispatcherMetrics`] per dispatcher: a fixed set of `jets-obs`
//! handles registered at startup, so every hot-path recording is a field
//! access plus one relaxed `fetch_add` — no map lookup, no lock, no
//! allocation. The registry behind the handles renders Prometheus text
//! for `GET /metrics` (see [`crate::Dispatcher::serve_metrics`]) and the
//! name constants here are shared with `jets events --stats`, so offline
//! percentile tables and live scrapes use identical metric names.
//!
//! Deliberately absent: a heartbeats counter. Worker liveness is one
//! relaxed store into a *per-worker* atomic precisely so a heartbeat
//! storm shares no cache line across connections; a single shared
//! counter would reintroduce that contention for a number nobody pages
//! on. The monitor samples liveness-derived gauges instead.

use jets_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Metric name of the per-phase job latency summary. Series are labelled
/// `phase="queue" | "launch" | "pmi" | "run" | "total"`.
pub const JOB_PHASE_METRIC: &str = "jets_job_phase_seconds";

/// The phase labels of [`JOB_PHASE_METRIC`], in lifecycle order.
pub const JOB_PHASES: [&str; 5] = ["queue", "launch", "pmi", "run", "total"];

/// Static metric handles for one dispatcher instance.
pub struct DispatcherMetrics {
    registry: Arc<Registry>,
    /// Jobs accepted into the queue (`submit_batch`).
    pub jobs_submitted_total: Arc<Counter>,
    /// Jobs that reached a terminal state (succeeded or failed).
    pub jobs_completed_total: Arc<Counter>,
    /// Terminal jobs whose final attempt failed.
    pub jobs_failed_total: Arc<Counter>,
    /// Failed attempts sent back to the queue with retry budget left.
    pub jobs_requeued_total: Arc<Counter>,
    /// Attempts canceled for blowing their wall-time budget.
    pub deadline_exceeded_total: Arc<Counter>,
    /// Task assignments shipped to workers.
    pub tasks_started_total: Arc<Counter>,
    /// Task results reported by workers.
    pub tasks_ended_total: Arc<Counter>,
    /// Registrations under a name seen before: pilots coming back after
    /// a disconnect (the fault layer's reconnect path).
    pub reconnects_total: Arc<Counter>,
    /// TCP connections taken by the accept loop (workers + relays).
    pub connections_accepted_total: Arc<Counter>,
    /// Jobs waiting in the queue.
    pub queue_depth: Arc<Gauge>,
    /// Gangs currently executing.
    pub running_gangs: Arc<Gauge>,
    /// Registered workers in any live state.
    pub workers_alive: Arc<Gauge>,
    /// Idle workers parked in the ready list.
    pub workers_ready: Arc<Gauge>,
    /// Workers executing a task.
    pub workers_busy: Arc<Gauge>,
    /// Workers currently benched by quarantine.
    pub quarantined_current: Arc<Gauge>,
    /// Connected relay daemons.
    pub relays_current: Arc<Gauge>,
    /// Connections currently registered on the reactor's event loops
    /// (workers + relays + anything else the reactor multiplexes).
    pub reactor_connections: Arc<Gauge>,
    /// Event-loop threads the reactor runs — the dispatcher's whole
    /// connection-handling thread bill, independent of connections.
    pub reactor_event_loops: Arc<Gauge>,
    /// Readiness wakeups across all event loops.
    pub reactor_wakeups_total: Arc<Counter>,
    /// High-water mark of any single connection's bounded outbox.
    pub reactor_outbox_high_water_bytes: Arc<Gauge>,
    /// Connections dropped because their bounded outbox overflowed
    /// (the slow-consumer disconnect policy).
    pub reactor_slow_consumer_disconnects_total: Arc<Counter>,
    /// State-transition records appended to the write-ahead journal.
    pub journal_records_total: Arc<Counter>,
    /// Journal appends that failed (disk error); the dispatcher keeps
    /// running, but crash recovery from that point is degraded.
    pub journal_errors_total: Arc<Counter>,
    /// Non-terminal jobs rebuilt from the journal at the last restart.
    pub journal_replayed_jobs: Arc<Gauge>,
    /// In-flight gangs re-adopted (instead of relaunched) after a
    /// dispatcher restart.
    pub gangs_readopted_total: Arc<Counter>,
    /// Events recorded into the flight-recorder ring. Bridged from the
    /// ring's claim cursor by the monitor — the metric surface is a
    /// ring *reader* and never touches the record path.
    pub events_recorded_total: Arc<Counter>,
    /// Events currently retained in the ring window.
    pub events_retained: Arc<Gauge>,
    /// The ring's capacity: events held before overwriting the oldest.
    pub events_capacity: Arc<Gauge>,
    /// Times the writer lapped the metrics-bridge cursor — events
    /// overwritten before any reader saw them. Nonzero means the
    /// `--flight-recorder` ring is too small for the event rate.
    pub flight_reader_laps_total: Arc<Counter>,
    /// Slots the metrics-bridge cursor lost mid-copy (the writer moved
    /// the slot stamp during the read).
    pub flight_reader_torn_total: Arc<Counter>,
    /// Queue-wait phase: last enqueue → workers selected.
    pub phase_queue: Arc<Histogram>,
    /// Launch phase: workers selected → assignments shipped.
    pub phase_launch: Arc<Histogram>,
    /// PMI-negotiation phase: assignments shipped → first fence release.
    pub phase_pmi: Arc<Histogram>,
    /// Run phase: execution start → terminal state.
    pub phase_run: Arc<Histogram>,
    /// End-to-end: first submission → terminal state.
    pub phase_total: Arc<Histogram>,
}

impl DispatcherMetrics {
    /// Register the dispatcher's full metric set on a fresh registry.
    pub fn new() -> DispatcherMetrics {
        let r = Arc::new(Registry::new());
        jets_obs::register_build_info(
            &r,
            env!("CARGO_PKG_VERSION"),
            option_env!("JETS_GIT_HASH").unwrap_or("unknown"),
        );
        let phase = |name: &'static str| {
            r.histogram_micros(
                JOB_PHASE_METRIC,
                "Per-phase job latency breakdown (final attempt)",
                &[("phase", name)],
            )
        };
        DispatcherMetrics {
            jobs_submitted_total: r
                .counter("jets_jobs_submitted_total", "Jobs accepted into the queue"),
            jobs_completed_total: r.counter(
                "jets_jobs_completed_total",
                "Jobs that reached a terminal state",
            ),
            jobs_failed_total: r.counter(
                "jets_jobs_failed_total",
                "Terminal jobs whose final attempt failed",
            ),
            jobs_requeued_total: r.counter(
                "jets_jobs_requeued_total",
                "Failed attempts requeued for retry",
            ),
            deadline_exceeded_total: r.counter(
                "jets_deadline_exceeded_total",
                "Attempts canceled for exceeding their deadline",
            ),
            tasks_started_total: r.counter(
                "jets_tasks_started_total",
                "Task assignments shipped to workers",
            ),
            tasks_ended_total: r
                .counter("jets_tasks_ended_total", "Task results reported by workers"),
            reconnects_total: r.counter(
                "jets_reconnects_total",
                "Registrations under a previously seen worker name",
            ),
            connections_accepted_total: r.counter(
                "jets_connections_accepted_total",
                "TCP connections accepted (workers + relays)",
            ),
            queue_depth: r.gauge("jets_queue_depth", "Jobs waiting in the queue"),
            running_gangs: r.gauge("jets_running_gangs", "Gangs currently executing"),
            workers_alive: r.gauge("jets_workers_alive", "Registered workers in any live state"),
            workers_ready: r.gauge(
                "jets_workers_ready",
                "Idle workers parked in the ready list",
            ),
            workers_busy: r.gauge("jets_workers_busy", "Workers executing a task"),
            quarantined_current: r.gauge(
                "jets_quarantined_current",
                "Workers currently benched by quarantine",
            ),
            relays_current: r.gauge("jets_relays_current", "Connected relay daemons"),
            reactor_connections: r.gauge(
                "jets_reactor_connections",
                "Connections registered on the reactor event loops",
            ),
            reactor_event_loops: r.gauge("jets_reactor_event_loops", "Reactor event-loop threads"),
            reactor_wakeups_total: r.counter(
                "jets_reactor_wakeups_total",
                "Readiness wakeups across all event loops",
            ),
            reactor_outbox_high_water_bytes: r.gauge(
                "jets_reactor_outbox_high_water_bytes",
                "High-water mark of any connection's bounded outbox",
            ),
            reactor_slow_consumer_disconnects_total: r.counter(
                "jets_reactor_slow_consumer_disconnects_total",
                "Connections dropped for overflowing their bounded outbox",
            ),
            journal_records_total: r.counter(
                "jets_journal_records_total",
                "Records appended to the write-ahead journal",
            ),
            journal_errors_total: r
                .counter("jets_journal_errors_total", "Journal appends that failed"),
            journal_replayed_jobs: r.gauge(
                "jets_journal_replayed_jobs",
                "Non-terminal jobs rebuilt from the journal at the last restart",
            ),
            gangs_readopted_total: r.counter(
                "jets_gangs_readopted_total",
                "In-flight gangs re-adopted after a dispatcher restart",
            ),
            events_recorded_total: r.counter(
                "jets_events_recorded_total",
                "Events recorded into the flight-recorder ring",
            ),
            events_retained: r.gauge(
                "jets_events_retained",
                "Events currently retained in the ring window",
            ),
            events_capacity: r.gauge(
                "jets_events_capacity",
                "Ring capacity before overwriting the oldest event",
            ),
            flight_reader_laps_total: r.counter(
                "jets_flight_reader_laps_total",
                "Events the ring writer overwrote before the metrics-bridge cursor read them",
            ),
            flight_reader_torn_total: r.counter(
                "jets_flight_reader_torn_total",
                "Ring slots the metrics-bridge cursor lost mid-copy",
            ),
            phase_queue: phase("queue"),
            phase_launch: phase("launch"),
            phase_pmi: phase("pmi"),
            phase_run: phase("run"),
            phase_total: phase("total"),
            registry: r,
        }
    }

    /// The registry backing these handles (what `/metrics` renders).
    pub fn registry(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// Render the current values as Prometheus text exposition format.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

impl Default for DispatcherMetrics {
    fn default() -> Self {
        DispatcherMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_metric_names_render() {
        let m = DispatcherMetrics::new();
        m.jobs_submitted_total.inc();
        m.workers_ready.set(4);
        m.phase_queue.record(1_000);
        let text = m.render();
        for name in [
            "jets_jobs_submitted_total",
            "jets_jobs_completed_total",
            "jets_jobs_failed_total",
            "jets_jobs_requeued_total",
            "jets_deadline_exceeded_total",
            "jets_tasks_started_total",
            "jets_tasks_ended_total",
            "jets_reconnects_total",
            "jets_connections_accepted_total",
            "jets_queue_depth",
            "jets_running_gangs",
            "jets_workers_alive",
            "jets_workers_ready",
            "jets_workers_busy",
            "jets_quarantined_current",
            "jets_relays_current",
            "jets_reactor_connections",
            "jets_reactor_event_loops",
            "jets_reactor_wakeups_total",
            "jets_reactor_outbox_high_water_bytes",
            "jets_reactor_slow_consumer_disconnects_total",
            "jets_journal_records_total",
            "jets_journal_errors_total",
            "jets_journal_replayed_jobs",
            "jets_gangs_readopted_total",
            "jets_events_recorded_total",
            "jets_events_retained",
            "jets_events_capacity",
            "jets_flight_reader_laps_total",
            "jets_flight_reader_torn_total",
            "jets_build_info",
            JOB_PHASE_METRIC,
        ] {
            assert!(text.contains(name), "missing {name} in render");
        }
        // The identity gauge carries the build's version label and the
        // constant sample value 1.
        assert!(text.contains(&format!("version=\"{}\"", env!("CARGO_PKG_VERSION"))));
        for phase in JOB_PHASES {
            assert!(
                text.contains(&format!("phase=\"{phase}\"")),
                "missing phase {phase}"
            );
        }
    }
}
