//! Property tests for the scheduling hot path's data structures.
//!
//! * [`ReadyList`] is driven with random operation sequences against a
//!   naive ordered-vector model. The invariants under test are the ones
//!   the dispatcher relies on: a worker is parked at most once (no
//!   double assignment), nothing is ever lost (every parked worker is
//!   either still parked, taken exactly once, or removed), and FCFS
//!   order is arrival order.
//! * [`select_group_ids`] must agree with the legacy string-based
//!   [`select_group`] on arbitrary layouts, needs, and policies.

use jets_core::group::{
    select_group, select_group_ids, Candidate, GroupScratch, GroupingPolicy, LocId,
    LocationInterner,
};
use jets_core::ready::ReadyList;
use jets_core::spec::WorkerId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Park(WorkerId, LocId),
    Remove(WorkerId),
    /// Take up to this many from the front (clamped to the current len).
    TakeFront(usize),
    /// Take the entries whose index bit is set in this mask (indices
    /// ≥ 64 are never selected; that's fine for these sequences).
    TakeIndices(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..24, 0u32..5).prop_map(|(w, l)| Op::Park(w, l)),
        (0u64..24).prop_map(Op::Remove),
        (0usize..10).prop_map(Op::TakeFront),
        any::<u64>().prop_map(Op::TakeIndices),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ready_list_matches_ordered_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut real = ReadyList::new();
        // The model: parked (worker, loc) pairs in arrival order.
        let mut model: Vec<(WorkerId, LocId)> = Vec::new();
        // Workers handed out by take_*; used to prove no double assignment.
        let mut assigned: Vec<WorkerId> = Vec::new();

        for op in ops {
            match op {
                Op::Park(w, l) => {
                    let expect_new = !model.iter().any(|&(m, _)| m == w);
                    prop_assert_eq!(real.park(w, l), expect_new);
                    if expect_new {
                        model.push((w, l));
                    }
                }
                Op::Remove(w) => {
                    let expect_present = model.iter().any(|&(m, _)| m == w);
                    prop_assert_eq!(real.remove(w), expect_present);
                    model.retain(|&(m, _)| m != w);
                }
                Op::TakeFront(n) => {
                    let n = n.min(model.len());
                    let mut out = Vec::new();
                    real.take_front(n, &mut out);
                    let expected: Vec<WorkerId> =
                        model.drain(..n).map(|(w, _)| w).collect();
                    prop_assert_eq!(&out, &expected, "take_front must be FCFS");
                    assigned.extend(out);
                }
                Op::TakeIndices(mask) => {
                    let indices: Vec<usize> = (0..model.len().min(64))
                        .filter(|i| mask & (1u64 << i) != 0)
                        .collect();
                    let mut out = Vec::new();
                    real.take_indices(&indices, &mut out);
                    let expected: Vec<WorkerId> =
                        indices.iter().map(|&i| model[i].0).collect();
                    prop_assert_eq!(&out, &expected, "take_indices order");
                    for &i in indices.iter().rev() {
                        model.remove(i);
                    }
                    assigned.extend(out);
                }
            }
            // Core invariants after every operation.
            prop_assert_eq!(real.len(), model.len());
            let order: Vec<WorkerId> = real.iter().collect();
            let model_order: Vec<WorkerId> = model.iter().map(|&(w, _)| w).collect();
            prop_assert_eq!(order, model_order, "arrival order must be preserved");
            let entries: Vec<(WorkerId, LocId)> = real.entries().to_vec();
            prop_assert_eq!(&entries, &model, "locations must track workers");
            // No double assignment: a worker taken by the scheduler is no
            // longer parked until it parks again (model membership is the
            // ground truth the `contains` set must agree with).
            for &(w, _) in &model {
                prop_assert!(real.contains(w));
            }
            for &w in &assigned {
                let parked = model.iter().any(|&(m, _)| m == w);
                prop_assert_eq!(real.contains(w), parked);
            }
        }
    }

    /// The interned selector is a drop-in for the legacy string selector:
    /// identical accept/reject decisions and identical chosen indices.
    #[test]
    fn interned_group_selection_matches_legacy(
        locs in proptest::collection::vec(0u8..5, 0..24),
        need in 0usize..10,
        location_aware in any::<bool>(),
    ) {
        let labels: Vec<String> = locs.iter().map(|l| format!("loc{l}")).collect();
        let ready_strings: Vec<Candidate> = labels
            .iter()
            .enumerate()
            .map(|(i, label)| Candidate {
                worker: i as WorkerId,
                location: label.clone(),
            })
            .collect();
        let mut interner = LocationInterner::new();
        let ready_ids: Vec<(WorkerId, LocId)> = labels
            .iter()
            .enumerate()
            .map(|(i, label)| (i as WorkerId, interner.intern(label)))
            .collect();
        let policy = if location_aware {
            GroupingPolicy::LocationAware
        } else {
            GroupingPolicy::Fcfs
        };
        let mut scratch = GroupScratch::new();
        let legacy = select_group(policy, &ready_strings, need);
        let ok = select_group_ids(policy, &ready_ids, need, &mut scratch);
        match legacy {
            None => prop_assert!(!ok),
            Some(idx) => {
                prop_assert!(ok);
                prop_assert_eq!(scratch.selected(), &idx[..]);
            }
        }
    }
}
