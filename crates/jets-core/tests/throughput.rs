//! Loopback throughput and contention tests for the dispatcher hot path.
//!
//! These drive the real TCP socket path with raw-protocol workers using
//! the buffered wire API ([`MsgReader`]/[`MsgWriter`]), exercising:
//!
//! * many workers × many short jobs submitted as one batch (`Request`
//!   bursts coalesce into batched scheduling passes);
//! * a heartbeat flood running concurrently with scheduling — heartbeats
//!   are lock-free, so the flood must not stall job completion;
//! * oversized frames, which must drop the offending connection without
//!   taking the dispatcher down.

use jets_core::protocol::{DispatcherMsg, MsgReader, MsgWriter, WorkerMsg, MAX_FRAME_BYTES};
use jets_core::spec::{CommandSpec, JobSpec};
use jets_core::{Dispatcher, DispatcherConfig, JobStatus};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);

/// A minimal raw-protocol worker on the buffered wire paths: requests
/// work and reports success until the dispatcher says `Shutdown`.
fn worker(addr: SocketAddr) -> thread::JoinHandle<usize> {
    thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).ok();
        let mut writer = MsgWriter::new(stream.try_clone().unwrap());
        let mut reader = MsgReader::new(BufReader::new(stream));
        writer
            .send(&WorkerMsg::Register {
                name: "loopback".into(),
                cores: 1,
                location: "rack-0".into(),
            })
            .unwrap();
        let Ok(Some(DispatcherMsg::Registered { .. })) = reader.recv::<DispatcherMsg>() else {
            panic!("expected Registered");
        };
        let mut done = 0usize;
        loop {
            writer.send(&WorkerMsg::Request).unwrap();
            match reader.recv::<DispatcherMsg>().unwrap() {
                Some(DispatcherMsg::Assign(a)) => {
                    writer
                        .send(&WorkerMsg::Done {
                            task_id: a.task_id,
                            exit_code: 0,
                            wall_ms: 0,
                            output: None,
                            trace: a.trace,
                        })
                        .unwrap();
                    done += 1;
                }
                Some(DispatcherMsg::Shutdown) | None => break,
                other => panic!("unexpected message: {other:?}"),
            }
        }
        let _ = writer.send(&WorkerMsg::Goodbye);
        done
    })
}

/// Many workers race through many short jobs submitted as one batch.
/// Every job must succeed and every completion must be accounted for —
/// no lost `Request`, no double assignment.
#[test]
fn loopback_many_workers_many_short_jobs() {
    const WORKERS: usize = 16;
    const JOBS: usize = 400;
    let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
    let handles: Vec<_> = (0..WORKERS).map(|_| worker(d.addr())).collect();
    let ids =
        d.submit_all((0..JOBS).map(|_| JobSpec::sequential(CommandSpec::builtin("ok", vec![]))));
    assert!(d.wait_idle(WAIT), "jobs did not drain");
    for id in ids {
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
    }
    d.shutdown();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, JOBS, "every job ran exactly once");
}

/// Workers all park *before* any job exists, so submission releases one
/// burst of parked `Request`s through the coalesced scheduling path.
#[test]
fn request_burst_before_submission_is_fully_absorbed() {
    const WORKERS: usize = 8;
    let d = Dispatcher::start(DispatcherConfig::default()).unwrap();
    let handles: Vec<_> = (0..WORKERS).map(|_| worker(d.addr())).collect();
    // Wait for all workers to register and park their first Request.
    let deadline = std::time::Instant::now() + WAIT;
    while d.alive_workers() < WORKERS {
        assert!(
            std::time::Instant::now() < deadline,
            "workers never arrived"
        );
        thread::sleep(Duration::from_millis(5));
    }
    thread::sleep(Duration::from_millis(50));
    let ids =
        d.submit_all((0..WORKERS).map(|_| JobSpec::sequential(CommandSpec::builtin("ok", vec![]))));
    assert!(d.wait_idle(WAIT));
    for id in ids {
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
    }
    d.shutdown();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, WORKERS);
}

/// Registered workers hammer heartbeats as fast as the socket allows
/// while other workers churn through a batch. Heartbeat handling is
/// lock-free, so the flood must not stall scheduling.
#[test]
fn heartbeat_flood_does_not_stall_scheduling() {
    const FLOODERS: usize = 4;
    const WORKERS: usize = 4;
    const JOBS: usize = 200;
    let d = Dispatcher::start(DispatcherConfig {
        heartbeat_timeout: Some(Duration::from_secs(10)),
        ..DispatcherConfig::default()
    })
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let flooders: Vec<_> = (0..FLOODERS)
        .map(|i| {
            let addr = d.addr();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut writer = MsgWriter::new(stream.try_clone().unwrap());
                let mut reader = MsgReader::new(BufReader::new(stream));
                writer
                    .send(&WorkerMsg::Register {
                        name: format!("flood{i}"),
                        cores: 1,
                        location: "storm".into(),
                    })
                    .unwrap();
                let _ = reader.recv::<DispatcherMsg>().unwrap();
                let mut beats = 0u64;
                while !stop.load(Ordering::Acquire) {
                    if writer.send(&WorkerMsg::Heartbeat).is_err() {
                        break;
                    }
                    beats += 1;
                }
                let _ = writer.send(&WorkerMsg::Goodbye);
                beats
            })
        })
        .collect();

    let handles: Vec<_> = (0..WORKERS).map(|_| worker(d.addr())).collect();
    let ids =
        d.submit_all((0..JOBS).map(|_| JobSpec::sequential(CommandSpec::builtin("ok", vec![]))));
    assert!(
        d.wait_idle(WAIT),
        "scheduling stalled under heartbeat flood"
    );
    for id in ids {
        assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
    }
    stop.store(true, Ordering::Release);
    let beats: u64 = flooders.into_iter().map(|f| f.join().unwrap()).sum();
    assert!(beats > 0, "the flood never ran");
    d.shutdown();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, JOBS);
}

/// A connection that sends an oversized frame is dropped without
/// buffering the whole line, and the dispatcher keeps serving others.
#[test]
fn oversized_frame_drops_connection_not_dispatcher() {
    let d = Dispatcher::start(DispatcherConfig::default()).unwrap();

    let mut evil = TcpStream::connect(d.addr()).unwrap();
    // One newline-free blob just past the cap. The server may close the
    // connection before consuming it all, so a write error is fine.
    let blob = vec![b'x'; MAX_FRAME_BYTES + 2];
    let _ = evil.write_all(&blob);
    let _ = evil.flush();
    // The server must hang up (EOF or reset) instead of accumulating.
    evil.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut sink = [0u8; 64];
    match evil.read(&mut sink) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("server sent {n} unexpected bytes"),
    }

    // The dispatcher is still healthy: a normal worker completes a job.
    let h = worker(d.addr());
    let id = d.submit(JobSpec::sequential(CommandSpec::builtin("ok", vec![])));
    assert!(d.wait_idle(WAIT));
    assert_eq!(d.job_record(id).unwrap().status, JobStatus::Succeeded);
    d.shutdown();
    assert_eq!(h.join().unwrap(), 1);
}
