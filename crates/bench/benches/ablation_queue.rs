//! Ablation — FIFO vs priority/backfill scheduling.
//!
//! Paper, Section 7: "While JETS currently operates at high speed in part
//! because it uses a simple FIFO queuing approach, we plan to explore the
//! addition of priority-based scheduling and backfill and to measure
//! scheduler performance on workloads of varying size tasks." This
//! harness is that measurement: a mixed workload of wide (12-node) and
//! narrow (1-node) jobs, where FIFO suffers head-of-line blocking behind
//! wide jobs that cannot start while narrow work idles.

use cluster_sim::workload::TimeScale;
use jets_bench::{banner, boot, env_or};
use jets_core::spec::{CommandSpec, JobSpec};
use jets_core::{stats, DispatcherConfig, EventKind, QueuePolicy};
use std::collections::HashMap;
use std::time::{Duration, Instant};

struct Outcome {
    makespan: f64,
    utilization: f64,
    mean_narrow_turnaround: f64,
}

fn run(policy: QueuePolicy) -> Outcome {
    let nodes = 16u32;
    let bed = boot(
        nodes,
        DispatcherConfig {
            queue_policy: policy,
            ..DispatcherConfig::default()
        },
    );
    let scale = TimeScale::speedup(env_or("JETS_BENCH_SPEEDUP", 50) as f64);
    let wide_ms = scale.real_ms(20.0).to_string();
    let narrow_ms = scale.real_ms(5.0).to_string();
    // Interleave wide and narrow jobs: wide jobs block FIFO heads while
    // most of the machine sits idle.
    let mut batch = Vec::new();
    let mut narrow_ids_expected = 0usize;
    for _ in 0..6 {
        batch.push(JobSpec::mpi(
            12,
            CommandSpec::builtin("mpi-sleep", vec![wide_ms.clone()]),
        ));
        for _ in 0..8 {
            batch.push(JobSpec::sequential(CommandSpec::builtin(
                "sleep",
                vec![narrow_ms.clone()],
            )));
            narrow_ids_expected += 1;
        }
    }
    let t = Instant::now();
    let ids = bed.dispatcher.submit_all(batch);
    assert!(bed.dispatcher.wait_idle(Duration::from_secs(600)));
    let makespan = t.elapsed().as_secs_f64();
    let events = bed.dispatcher.events().snapshot();
    let utilization = stats::measured_utilization(&events, nodes as usize);

    // Turnaround of narrow jobs: submit → completion, from the log.
    let mut submitted: HashMap<u64, std::time::Duration> = HashMap::new();
    let mut turnaround = Vec::new();
    let narrow: std::collections::HashSet<u64> = ids
        .iter()
        .copied()
        .filter(|id| {
            bed.dispatcher
                .job_record(*id)
                .map(|r| r.spec.nodes == 1)
                .unwrap_or(false)
        })
        .collect();
    for e in &events {
        match e.kind {
            EventKind::JobSubmitted { job, .. } => {
                submitted.insert(job, e.t);
            }
            EventKind::JobCompleted { job, .. } if narrow.contains(&job) => {
                if let Some(s) = submitted.get(&job) {
                    turnaround.push((e.t.saturating_sub(*s)).as_secs_f64());
                }
            }
            _ => {}
        }
    }
    assert_eq!(turnaround.len(), narrow_ids_expected);
    bed.teardown();
    Outcome {
        makespan,
        utilization,
        mean_narrow_turnaround: turnaround.iter().sum::<f64>() / turnaround.len() as f64,
    }
}

fn main() {
    banner(
        "Ablation: queue policy",
        "FIFO vs priority/backfill on a mixed wide/narrow workload (16 nodes)",
    );
    println!(
        "{:>20} {:>14} {:>14} {:>24}",
        "policy", "makespan (s)", "utilization", "narrow turnaround (s)"
    );
    for (name, policy) in [
        ("fifo", QueuePolicy::Fifo),
        ("priority+backfill", QueuePolicy::PriorityBackfill),
    ] {
        let o = run(policy);
        println!(
            "{:>20} {:>14.2} {:>13.1}% {:>24.3}",
            name,
            o.makespan,
            100.0 * o.utilization,
            o.mean_narrow_turnaround
        );
    }
    println!("\nexpected: backfill slips narrow jobs into nodes a blocked wide job");
    println!("cannot use yet, cutting narrow-job turnaround severalfold at a small");
    println!("makespan/packing cost; FIFO remains simpler and starvation-free (the");
    println!("paper's default, and why JETS 'operates at high speed').");
}
