//! Figure 13 — NAMD/JETS load level over time.
//!
//! Paper: for the full-rack (1,024-node, 1,536-job) NAMD batch, the
//! number of busy cores over time shows a fast ramp-up, a long plateau at
//! machine capacity, and a decaying tail as the last long tasks finish.
//!
//! Here: the same batch shape at 1:100 scale; busy ranks sampled from the
//! dispatcher event log.

use cluster_sim::workload::{namd_batch, NamdDurationModel, TimeScale};
use jets_bench::{banner, boot, env_or};
use jets_core::{stats, DispatcherConfig};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;

fn main() {
    banner("Figure 13", "NAMD/JETS load level (busy ranks) over time");
    let speedup = env_or("JETS_BENCH_SPEEDUP", 50) as f64;
    let scale = TimeScale::speedup(speedup);
    let nodes = env_or("JETS_BENCH_MAX_NODES", 1024).min(1024) as u32;
    let nproc = 4u32;
    let jobs = ((nodes / nproc) as usize * 6).max(1);

    let bed = boot(nodes, DispatcherConfig::default());
    let mut rng = StdRng::seed_from_u64(13);
    bed.dispatcher.submit_all(namd_batch(
        jobs,
        nproc,
        1,
        NamdDurationModel::default(),
        scale,
        &mut rng,
    ));
    assert!(bed.dispatcher.wait_idle(Duration::from_secs(1800)));
    let events = bed.dispatcher.events().snapshot();
    bed.teardown();

    // Sample every 20 virtual seconds.
    let bin = scale.real_duration(20.0);
    let series = stats::load_series(&events, bin);
    let capacity = nodes as usize; // one task rank per node in this batch
    println!(
        "{jobs} jobs × {nproc} ranks on {nodes} nodes (capacity {} concurrent jobs)\n",
        nodes / nproc
    );
    println!(
        "{:>12} {:>12} {:>10}  load",
        "t(virt s)", "busy nodes", "% of peak"
    );
    for s in &series {
        let busy = s.running_tasks; // each task occupies one node
        let bar = "#".repeat(busy * 50 / capacity.max(1));
        println!(
            "{:>12.0} {:>12} {:>9.0}%  {bar}",
            scale.to_virtual_secs(s.t),
            busy,
            100.0 * busy as f64 / capacity as f64
        );
    }
    println!("\npaper shape: quick ramp-up, plateau near full capacity, long tail");
    println!("as the slowest tasks of the final wave finish.");
}
