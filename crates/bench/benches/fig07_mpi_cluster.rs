//! Figure 7 — MPI/JETS results, cluster setting (Breadboard).
//!
//! Paper: a barrier–sleep(1 s)–barrier MPI application run as large
//! batches of 4-proc and 8-proc jobs inside allocations of increasing
//! size, versus a "shell script" mode that simply calls `mpiexec`
//! repeatedly (serially, monopolizing the whole allocation). JETS reaches
//! ≈90 % utilization for these extremely short tasks; the shell script
//! mode falls far below.
//!
//! Here: virtual seconds scale 1:20 (a 1 s task runs 50 ms); utilization
//! is Equation (1) with the nominal task duration. The shell-script mode
//! submits the same n-proc jobs strictly one at a time.

use cluster_sim::workload::{mpi_sleep_batch, TimeScale};
use jets_bench::{banner, boot, env_or};
use jets_core::{stats, DispatcherConfig};
use std::time::{Duration, Instant};

const VIRTUAL_TASK_SECS: f64 = 1.0;
const WAVES: usize = 8;

fn run_jets(nodes: u32, nproc: u32, scale: TimeScale) -> f64 {
    let bed = boot(nodes, DispatcherConfig::default());
    let jobs = WAVES * (nodes / nproc) as usize;
    let batch = mpi_sleep_batch(jobs, nproc, 1, VIRTUAL_TASK_SECS, scale);
    let t = Instant::now();
    bed.dispatcher.submit_all(batch);
    assert!(bed.dispatcher.wait_idle(Duration::from_secs(600)));
    let wall = t.elapsed();
    bed.teardown();
    stats::utilization_eq1(
        scale.real_duration(VIRTUAL_TASK_SECS),
        jobs,
        nproc as usize,
        nodes as usize,
        wall,
    )
}

fn run_shell_script(nodes: u32, nproc: u32, scale: TimeScale) -> f64 {
    let bed = boot(nodes, DispatcherConfig::default());
    let jobs = WAVES * (nodes / nproc) as usize;
    let batch = mpi_sleep_batch(jobs, nproc, 1, VIRTUAL_TASK_SECS, scale);
    let t = Instant::now();
    for spec in batch {
        // `mpiexec` in a loop: one job at a time, nothing overlaps.
        let id = bed.dispatcher.submit(spec);
        assert!(bed
            .dispatcher
            .wait_job(id, Duration::from_secs(120))
            .is_some());
    }
    let wall = t.elapsed();
    bed.teardown();
    stats::utilization_eq1(
        scale.real_duration(VIRTUAL_TASK_SECS),
        jobs,
        nproc as usize,
        nodes as usize,
        wall,
    )
}

fn main() {
    banner(
        "Figure 7",
        "MPI task utilization, cluster setting: JETS vs mpiexec shell script",
    );
    let speedup = env_or("JETS_BENCH_SPEEDUP", 10) as f64;
    let scale = TimeScale::speedup(speedup);
    println!(
        "1 s virtual tasks at 1:{speedup} scale ({} ms real), {WAVES} waves per point\n",
        scale.real_ms(VIRTUAL_TASK_SECS)
    );
    println!(
        "{:>10} {:>14} {:>14} {:>18}",
        "alloc", "jets 4-proc", "jets 8-proc", "shell-script 4-proc"
    );
    let max_nodes = env_or("JETS_BENCH_MAX_NODES", 1024) as u32;
    for nodes in [8u32, 16, 32] {
        if nodes > max_nodes {
            continue;
        }
        let jets4 = run_jets(nodes, 4, scale);
        let jets8 = run_jets(nodes, 8, scale);
        let shell = run_shell_script(nodes, 4, scale);
        println!(
            "{:>10} {:>13.1}% {:>13.1}% {:>17.1}%",
            nodes,
            100.0 * jets4,
            100.0 * jets8,
            100.0 * shell
        );
    }
    println!("\npaper shape: JETS ≈90 % for single-second tasks; the serial");
    println!("mpiexec loop wastes (alloc − n)/alloc of the machine plus launch gaps.");
}
