//! Microbenchmarks of the MPI collectives (criterion).
//!
//! Measures the cost of one collective round over the in-process fabric
//! (no network model) at several communicator sizes — the launch-path
//! costs that shape Figures 7, 9, and 15: every task start executes at
//! least two barriers.

use criterion::Criterion;
use jets_mpi::{runner, NetModel, ReduceOp};
use std::time::Duration;

/// Run `rounds` collective rounds at `size` ranks and return the mean
/// per-round wall time of rank 0.
fn collective_rounds(size: u32, rounds: usize, which: &'static str) -> f64 {
    let results = runner::run_threads(size, NetModel::ideal(), move |comm| {
        comm.barrier().unwrap();
        let t0 = comm.wtime();
        match which {
            "barrier" => {
                for _ in 0..rounds {
                    comm.barrier().unwrap();
                }
            }
            "allreduce64" => {
                let data = vec![1.0f64; 64];
                for _ in 0..rounds {
                    comm.allreduce(&data, ReduceOp::Sum).unwrap();
                }
            }
            "bcast4k" => {
                let data = vec![0u8; 4096];
                for _ in 0..rounds {
                    comm.bcast(
                        0,
                        if comm.rank() == 0 {
                            data.clone()
                        } else {
                            vec![]
                        },
                    )
                    .unwrap();
                }
            }
            other => panic!("unknown collective {other}"),
        }
        let dt = comm.wtime() - t0;
        comm.barrier().unwrap();
        dt / rounds as f64
    })
    .unwrap();
    results[0]
}

fn main() {
    let mut criterion = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
        .configure_from_args();

    for size in [2u32, 4, 8] {
        for which in ["barrier", "allreduce64", "bcast4k"] {
            criterion.bench_function(&format!("{which}_{size}ranks"), |b| {
                b.iter_custom(|iters| {
                    let per_round = collective_rounds(size, (iters as usize).max(8), which);
                    Duration::from_secs_f64(per_round * iters as f64)
                });
            });
        }
    }

    criterion.final_summary();
}
