//! Figure 12 — NAMD/JETS utilization results.
//!
//! Paper: batches of 4-processor NAMD jobs (6 executions per node on
//! average) at allocation sizes 256 → 1,024 nodes hold utilization near
//! 90 %; "for a longer run, utilization could be higher as the effect of
//! the ramp-up and long-tail effects are amortized".
//!
//! Here: NAMD-profile tasks (the Fig. 11 duration model) through the full
//! dispatcher at 1:100 scale; utilization by Equation (1) with the mean
//! nominal duration, exactly the paper's accounting.

use cluster_sim::workload::{namd_batch, NamdDurationModel, TimeScale};
use jets_bench::{banner, boot, env_or};
use jets_core::{stats, DispatcherConfig};
use rand::{rngs::StdRng, SeedableRng};
use std::time::{Duration, Instant};

fn main() {
    banner("Figure 12", "NAMD/JETS utilization vs allocation size");
    let speedup = env_or("JETS_BENCH_SPEEDUP", 50) as f64;
    let scale = TimeScale::speedup(speedup);
    let max_nodes = env_or("JETS_BENCH_MAX_NODES", 1024) as u32;
    let nproc = 4u32;
    let model = NamdDurationModel::default();
    println!("4-proc NAMD-profile tasks, 6 per node, 1:{speedup} scale\n");
    println!(
        "{:>10} {:>8} {:>12} {:>14} {:>14}",
        "alloc", "jobs", "wall(s)", "util (Eq.1)", "util (events)"
    );
    for nodes in [256u32, 512, 1024] {
        if nodes > max_nodes {
            continue;
        }
        let jobs = 6 * (nodes / nproc) as usize;
        let bed = boot(nodes, DispatcherConfig::default());
        let mut rng = StdRng::seed_from_u64(12);
        let batch = namd_batch(jobs, nproc, 1, model, scale, &mut rng);
        // Mean nominal duration of the generated batch, for Eq. (1).
        let mean_ms: f64 = batch
            .iter()
            .map(|j| j.cmd.args()[0].parse::<f64>().expect("duration arg"))
            .sum::<f64>()
            / jobs as f64;
        let t = Instant::now();
        bed.dispatcher.submit_all(batch);
        assert!(bed.dispatcher.wait_idle(Duration::from_secs(1800)));
        let wall = t.elapsed();
        let events = bed.dispatcher.events().snapshot();
        bed.teardown();
        let eq1 = stats::utilization_eq1(
            Duration::from_secs_f64(mean_ms / 1000.0),
            jobs,
            nproc as usize,
            nodes as usize,
            wall,
        );
        let measured = stats::measured_utilization(&events, nodes as usize);
        println!(
            "{:>10} {:>8} {:>12.2} {:>13.1}% {:>13.1}%",
            nodes,
            jobs,
            wall.as_secs_f64(),
            100.0 * eq1,
            100.0 * measured
        );
    }
    println!("\npaper shape: utilization near 90 % across allocation sizes, limited");
    println!("by ramp-up and the long tail of the NAMD duration distribution.");
}
