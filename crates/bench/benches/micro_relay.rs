//! Microbenchmarks of the relay tier (criterion): the same worker pool
//! direct vs behind one relay.
//!
//! * `dispatch_burst_{direct,relayed}_…` — one batched submission
//!   drained to idle by 16 workers, connected directly vs through a
//!   single relay. Measures what the routed-envelope hop costs the
//!   assignment fan-out path end to end.
//! * `heartbeat_flood_{direct,batched}_32` — wire-encoding cost of a
//!   liveness interval for a 32-node block: 32 individual `Heartbeat`
//!   frames vs the one `BatchedHeartbeat` frame a relay sends instead.
//!
//! Run with:
//!   cargo bench -p jets-bench --features criterion --bench micro_relay

use cluster_sim::{science_registry, RelayedAllocation, RelayedAllocationConfig};
use criterion::Criterion;
use jets_bench::boot;
use jets_core::protocol::{MsgWriter, WorkerMsg};
use jets_core::spec::{CommandSpec, JobSpec};
use jets_core::{Dispatcher, DispatcherConfig};
use jets_worker::Executor;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn drain_burst(dispatcher: &Dispatcher, jobs: usize) {
    dispatcher
        .submit_all((0..jobs).map(|_| JobSpec::sequential(CommandSpec::builtin("noop", vec![]))));
    assert!(dispatcher.wait_idle(Duration::from_secs(30)));
}

fn main() {
    let mut criterion = Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1))
        .configure_from_args();

    {
        let bed = boot(16, DispatcherConfig::default());
        criterion.bench_function("dispatch_burst_direct_128_jobs_16_workers", |b| {
            b.iter(|| drain_burst(&bed.dispatcher, 128));
        });
        bed.teardown();
    }

    {
        let dispatcher = Dispatcher::start(DispatcherConfig::default()).expect("start dispatcher");
        let topo = RelayedAllocation::start(
            &dispatcher.addr().to_string(),
            RelayedAllocationConfig::new(1, 16),
            Arc::new(Executor::new(science_registry())),
        )
        .expect("start relayed allocation");
        let deadline = Instant::now() + Duration::from_secs(120);
        while dispatcher.alive_workers() < 16 {
            assert!(
                Instant::now() < deadline,
                "relayed workers never registered"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(dispatcher.connections_accepted(), 1);
        criterion.bench_function("dispatch_burst_relayed_128_jobs_16_workers", |b| {
            b.iter(|| drain_burst(&dispatcher, 128));
        });
        dispatcher.shutdown();
        topo.join_all();
    }

    // One liveness interval for a 32-node block, at the wire-encoding
    // level: what the dispatcher's reader must ingest either way.
    criterion.bench_function("heartbeat_flood_direct_32", |b| {
        let mut writer = MsgWriter::new(Vec::with_capacity(4096));
        b.iter(|| {
            writer.get_mut().clear();
            for _ in 0..32 {
                writer.send(&WorkerMsg::Heartbeat).expect("encode");
            }
            writer.get_ref().len()
        });
    });
    criterion.bench_function("heartbeat_flood_batched_32", |b| {
        let mut writer = MsgWriter::new(Vec::with_capacity(4096));
        let workers: Vec<u64> = (0..32).collect();
        b.iter(|| {
            writer.get_mut().clear();
            writer
                .send(&WorkerMsg::BatchedHeartbeat {
                    workers: workers.clone(),
                })
                .expect("encode");
            writer.get_ref().len()
        });
    });

    criterion.final_summary();
}
