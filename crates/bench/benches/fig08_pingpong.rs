//! Figure 8 — MPI messaging performance on the BG/P.
//!
//! Paper: a two-node ping-pong compares *native* mode (IBM's DCMF
//! messaging, default CNK kernel) against *MPICH/sockets* mode (MPICH2
//! over the ZeptoOS TCP layer). Sockets mode shows much higher latency
//! for small messages and slightly lower bandwidth for large ones —
//! "primarily due to the use of TCP by the ZeptoOS mechanism".
//!
//! Here: the same ping-pong runs over the in-process fabric under the two
//! calibrated network models (`NetModel::native_bgp`, `NetModel::
//! zepto_tcp`); timing uses `MPI_Wtime` exactly as the paper describes
//! ("the buffer was filled once with random data of the given size and
//! sent back and forth the given number of times").

use jets_bench::banner;
use jets_mpi::{runner, NetModel};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn ping_pong(model: NetModel, bytes: usize, reps: usize) -> (f64, f64) {
    let results = runner::run_threads(2, model, move |comm| {
        let mut rng = StdRng::seed_from_u64(7);
        let buffer: Vec<u8> = (0..bytes).map(|_| rng.gen()).collect();
        comm.barrier().unwrap();
        let t0 = comm.wtime();
        if comm.rank() == 0 {
            for _ in 0..reps {
                comm.send(1, 1, &buffer).unwrap();
                let _ = comm.recv_vec::<u8>(1, 2).unwrap();
            }
        } else {
            for _ in 0..reps {
                let (_, data) = comm.recv_vec::<u8>(0, 1).unwrap();
                comm.send(0, 2, &data).unwrap();
            }
        }
        let elapsed = comm.wtime() - t0;
        comm.barrier().unwrap();
        elapsed
    })
    .unwrap();
    let elapsed = results[0];
    // One rep = two one-way transfers.
    let one_way = elapsed / (2.0 * reps as f64);
    let bandwidth = bytes as f64 / one_way;
    (one_way * 1e6, bandwidth / 1e6)
}

fn main() {
    banner(
        "Figure 8",
        "MPI ping-pong: native (DCMF model) vs MPICH/sockets (ZeptoOS TCP model)",
    );
    println!(
        "{:>10} | {:>14} {:>12} | {:>14} {:>12} | {:>8}",
        "bytes", "native lat µs", "native MB/s", "sockets lat µs", "sockets MB/s", "ratio"
    );
    let sizes: &[(usize, usize)] = &[
        (1, 400),
        (8, 400),
        (64, 400),
        (512, 300),
        (4 << 10, 200),
        (32 << 10, 100),
        (256 << 10, 30),
        (1 << 20, 12),
        (4 << 20, 5),
    ];
    for &(bytes, reps) in sizes {
        let (native_lat, native_bw) = ping_pong(NetModel::native_bgp(), bytes, reps);
        let (sockets_lat, sockets_bw) = ping_pong(NetModel::zepto_tcp(), bytes, reps);
        println!(
            "{:>10} | {:>14.2} {:>12.1} | {:>14.2} {:>12.1} | {:>7.1}x",
            bytes,
            native_lat,
            native_bw,
            sockets_lat,
            sockets_bw,
            sockets_lat / native_lat
        );
    }
    println!("\npaper shape: sockets mode pays ~20× small-message latency and a");
    println!("modest large-message bandwidth penalty, converging as size grows.");
}
