//! Microbenchmarks of the flight-recorder record path (criterion).
//!
//! * `event_record_mutex_vec_baseline` — the replaced design: a
//!   `Mutex<Vec<..>>` append with overwrite-oldest on wrap. Every
//!   producer serializes on the lock, and a reader holding it stalls
//!   them all.
//! * `event_record_ring` — the shipped path: `EventLog::record`
//!   (fixed-buffer encode + lock-free ring push) into an anonymous
//!   mapping.
//! * `event_record_ring_file` — the same path into a file-backed
//!   mapping (`--flight-recorder` mode): the page-cache write the
//!   dispatcher pays in production.
//! * `event_record_ring_hammered` — `record` while three reader
//!   threads spin `snapshot()` and cursor `poll()` flat out: the
//!   acceptance claim that readers never block the writer, measured.
//! * `ring_push_raw_120b` — the bare `jets_ring::Ring::push` floor
//!   without the event codec, isolating encode cost by subtraction.
//!
//! `ringbench` (`cargo run -p jets-ring --bin ringbench`) reports the
//! same floor dependency-free for the committed BENCH numbers; this
//! harness adds the criterion statistics and the locked baseline.

use criterion::Criterion;
use jets_core::{EventKind, EventLog};
use jets_ring::{Ring, PAYLOAD_BYTES};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn kind(task: u64) -> EventKind {
    EventKind::TaskEnded {
        task,
        job: task % 17,
        worker: task % 8,
        ranks: 4,
        exit_code: 0,
    }
}

fn main() {
    let mut criterion = Criterion::default()
        .sample_size(30)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1))
        .configure_from_args();

    {
        // The design the ring replaced: one mutex around a bounded Vec,
        // overwrite-oldest by index. Same retention semantics, but the
        // lock is on every producer's path.
        const CAP: usize = 1 << 17;
        let log: Mutex<Vec<(u64, EventKind)>> = Mutex::new(Vec::with_capacity(CAP));
        let mut task = 0u64;
        criterion.bench_function("event_record_mutex_vec_baseline", |b| {
            b.iter(|| {
                task += 1;
                let mut guard = log.lock().unwrap();
                if guard.len() < CAP {
                    guard.push((task, kind(task)));
                } else {
                    let at = (task as usize) & (CAP - 1);
                    guard[at] = (task, kind(task));
                }
                guard.len()
            });
        });
    }

    {
        let log = EventLog::new();
        let mut task = 0u64;
        criterion.bench_function("event_record_ring", |b| {
            b.iter(|| {
                task += 1;
                log.record(kind(task));
            });
        });
    }

    {
        let path =
            std::env::temp_dir().join(format!("jets-bench-flight-{}.ring", std::process::id()));
        std::fs::remove_file(&path).ok();
        let log = EventLog::file_backed(&path, 1 << 17).expect("create flight file");
        let mut task = 0u64;
        criterion.bench_function("event_record_ring_file", |b| {
            b.iter(|| {
                task += 1;
                log.record(kind(task));
            });
        });
        drop(log);
        std::fs::remove_file(&path).ok();
    }

    {
        // Readers at full tilt must not move the writer's latency: three
        // threads spinning snapshot() and poll() while we record.
        let log = EventLog::new();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|i| {
                let log = log.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut cursor = log.tail_reader();
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        if i == 0 {
                            seen += log.snapshot().len() as u64;
                        } else {
                            while cursor.poll().is_some() {
                                seen += 1;
                            }
                        }
                    }
                    seen
                })
            })
            .collect();
        let mut task = 0u64;
        criterion.bench_function("event_record_ring_hammered", |b| {
            b.iter(|| {
                task += 1;
                log.record(kind(task));
            });
        });
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader thread");
        }
    }

    {
        let ring = Ring::anon(1 << 17);
        let payload = [0x5au8; PAYLOAD_BYTES];
        criterion.bench_function("ring_push_raw_120b", |b| {
            b.iter(|| ring.push(&payload));
        });
    }

    criterion.final_summary();
}
