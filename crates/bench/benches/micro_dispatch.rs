//! Microbenchmarks of the dispatcher's hot paths (criterion).
//!
//! * `task_round_trip` — submit → assign → execute(noop) → report → idle,
//!   through real sockets with one worker: the per-task latency floor
//!   behind Figure 6's launch rates.
//! * `dispatch_burst` — one batched submission drained by a pool of
//!   workers through real sockets: the coalesced `Request`-burst path.
//! * `queue_push_pick` — FIFO queue operations.
//! * `select_group_fcfs` / `select_group_location` — legacy string-based
//!   worker-group selection over a large ready pool.
//! * `select_group_ids_*` — the interned, allocation-free selector the
//!   dispatcher actually runs; compare directly against the legacy pair.

use criterion::{BatchSize, Criterion};
use jets_bench::boot;
use jets_core::group::{select_group, select_group_ids, Candidate, GroupScratch, LocId};
use jets_core::queue::{JobQueue, QueuedJob};
use jets_core::spec::{CommandSpec, JobSpec, WorkerId};
use jets_core::{DispatcherConfig, GroupingPolicy, QueuePolicy};
use std::time::Duration;

fn main() {
    let mut criterion = Criterion::default()
        .sample_size(30)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1))
        .configure_from_args();

    {
        let bed = boot(1, DispatcherConfig::default());
        criterion.bench_function("task_round_trip", |b| {
            b.iter(|| {
                let id = bed
                    .dispatcher
                    .submit(JobSpec::sequential(CommandSpec::builtin("noop", vec![])));
                bed.dispatcher
                    .wait_job(id, Duration::from_secs(10))
                    .expect("task completes")
            });
        });
        bed.teardown();
    }

    {
        // A burst: one batched submission fanned out to a worker pool and
        // drained to idle. Exercises the coalesced Request path and the
        // batched scheduling passes end to end.
        let bed = boot(16, DispatcherConfig::default());
        criterion.bench_function("dispatch_burst_128_jobs_16_workers", |b| {
            b.iter(|| {
                bed.dispatcher.submit_all(
                    (0..128).map(|_| JobSpec::sequential(CommandSpec::builtin("noop", vec![]))),
                );
                assert!(bed.dispatcher.wait_idle(Duration::from_secs(30)));
            });
        });
        bed.teardown();
    }

    criterion.bench_function("queue_push_pick_1k", |b| {
        b.iter_batched(
            || {
                (0..1000u64)
                    .map(|id| QueuedJob {
                        id,
                        spec: JobSpec::mpi((id % 7 + 1) as u32, CommandSpec::builtin("x", vec![])),
                        attempts: 0,
                        excluded: Vec::new(),
                        submitted_at: std::time::Instant::now(),
                        enqueued_at: std::time::Instant::now(),
                    })
                    .collect::<Vec<_>>()
            },
            |jobs| {
                let mut q = JobQueue::new(QueuePolicy::Fifo);
                for j in jobs {
                    q.push(j);
                }
                let mut n = 0;
                while q.pick(usize::MAX).is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        );
    });

    let ready: Vec<Candidate> = (0..1024u64)
        .map(|w| Candidate {
            worker: w,
            location: format!("rack-{}", w % 8),
        })
        .collect();
    criterion.bench_function("select_group_fcfs_64_of_1024", |b| {
        b.iter(|| select_group(GroupingPolicy::Fcfs, &ready, 64).expect("enough workers"));
    });
    criterion.bench_function("select_group_location_64_of_1024", |b| {
        b.iter(|| select_group(GroupingPolicy::LocationAware, &ready, 64).expect("enough workers"));
    });

    // The interned selector over the same pool shape: no String clones,
    // no HashMap builds, reusable generation-stamped scratch.
    let ready_ids: Vec<(WorkerId, LocId)> = (0..1024u64).map(|w| (w, (w % 8) as LocId)).collect();
    let mut scratch = GroupScratch::new();
    criterion.bench_function("select_group_ids_fcfs_64_of_1024", |b| {
        b.iter(|| {
            assert!(select_group_ids(
                GroupingPolicy::Fcfs,
                &ready_ids,
                64,
                &mut scratch
            ));
            scratch.selected().len()
        });
    });
    criterion.bench_function("select_group_ids_location_64_of_1024", |b| {
        b.iter(|| {
            assert!(select_group_ids(
                GroupingPolicy::LocationAware,
                &ready_ids,
                64,
                &mut scratch
            ));
            scratch.selected().len()
        });
    });

    criterion.final_summary();
}
