//! Microbenchmarks of the dispatcher's hot paths (criterion).
//!
//! * `task_round_trip` — submit → assign → execute(noop) → report → idle,
//!   through real sockets with one worker: the per-task latency floor
//!   behind Figure 6's launch rates.
//! * `queue_push_pick` — FIFO queue operations.
//! * `select_group_fcfs` / `select_group_location` — worker-group
//!   selection over a large ready pool.

use criterion::{BatchSize, Criterion};
use jets_bench::boot;
use jets_core::group::{select_group, Candidate};
use jets_core::queue::{JobQueue, QueuedJob};
use jets_core::spec::{CommandSpec, JobSpec};
use jets_core::{DispatcherConfig, GroupingPolicy, QueuePolicy};
use std::time::Duration;

fn main() {
    let mut criterion = Criterion::default()
        .sample_size(30)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1))
        .configure_from_args();

    {
        let bed = boot(1, DispatcherConfig::default());
        criterion.bench_function("task_round_trip", |b| {
            b.iter(|| {
                let id = bed
                    .dispatcher
                    .submit(JobSpec::sequential(CommandSpec::builtin("noop", vec![])));
                bed.dispatcher
                    .wait_job(id, Duration::from_secs(10))
                    .expect("task completes")
            });
        });
        bed.teardown();
    }

    criterion.bench_function("queue_push_pick_1k", |b| {
        b.iter_batched(
            || {
                (0..1000u64)
                    .map(|id| QueuedJob {
                        id,
                        spec: JobSpec::mpi(
                            (id % 7 + 1) as u32,
                            CommandSpec::builtin("x", vec![]),
                        ),
                        attempts: 0,
                    })
                    .collect::<Vec<_>>()
            },
            |jobs| {
                let mut q = JobQueue::new(QueuePolicy::Fifo);
                for j in jobs {
                    q.push(j);
                }
                let mut n = 0;
                while q.pick(usize::MAX).is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        );
    });

    let ready: Vec<Candidate> = (0..1024u64)
        .map(|w| Candidate {
            worker: w,
            location: format!("rack-{}", w % 8),
        })
        .collect();
    criterion.bench_function("select_group_fcfs_64_of_1024", |b| {
        b.iter(|| select_group(GroupingPolicy::Fcfs, &ready, 64).expect("enough workers"));
    });
    criterion.bench_function("select_group_location_64_of_1024", |b| {
        b.iter(|| {
            select_group(GroupingPolicy::LocationAware, &ready, 64).expect("enough workers")
        });
    });

    criterion.final_summary();
}
