//! Figure 15 — Swift/JETS synthetic workload results (Eureka).
//!
//! Paper: a Swift script issues batches of an MPI task that does
//! barrier / sleep 10 s / write rank to a file / barrier, over allocations
//! of 16, 32, and 64 eight-core nodes, sweeping nodes-per-job and
//! processes-per-node (PPN). "For a given allocation size, at this
//! duration, increasing task sizes decreases utilization. Increasing node
//! counts or PPN reduce utilization."
//!
//! Here: the same script shape generated per configuration, run through
//! swiftlite → JetsExecutor → dispatcher → simulated workers, 1:50 time
//! scale, utilization by Equation (1).

use cluster_sim::workload::TimeScale;
use jets_bench::{banner, boot, env_or};
use jets_core::{stats, DispatcherConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};
use swiftlite::{JetsExecutor, RunOptions, Workflow};

const VIRTUAL_TASK_SECS: f64 = 10.0;

fn synthetic_script(jobs: usize, nodes_per_job: u32, ppn: u32, sleep_ms: u64, dir: &str) -> String {
    format!(
        r#"
app (file o) synth (int i, int ms, string dir) mpi(nodes={nodes_per_job}, ppn={ppn}) {{
    "@mpi-sleep-write" ms dir
}}
foreach i in [0:{last}] {{
    file out <single_file_mapper; file=strcat("{dir}/done_", i)>;
    out = synth(i, {sleep_ms}, "{dir}");
}}
"#,
        last = jobs - 1,
    )
}

fn run_config(alloc: u32, nodes_per_job: u32, ppn: u32, scale: TimeScale) -> f64 {
    let jobs = 2 * (alloc / nodes_per_job) as usize;
    let dir = std::env::temp_dir().join(format!(
        "fig15-{alloc}-{nodes_per_job}-{ppn}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let script = synthetic_script(
        jobs,
        nodes_per_job,
        ppn,
        scale.real_ms(VIRTUAL_TASK_SECS),
        &dir.to_string_lossy(),
    );
    let bed = boot(alloc, DispatcherConfig::default());
    let workflow = Workflow::parse(&script).expect("script parses");
    let executor = JetsExecutor::new(Arc::clone(&bed.dispatcher), Duration::from_secs(300));
    let t = Instant::now();
    workflow
        .run(
            Arc::new(executor),
            RunOptions {
                work_dir: dir.join("anon"),
                wait_timeout: Duration::from_secs(600),
            },
        )
        .expect("workflow runs");
    let wall = t.elapsed();
    bed.teardown();
    std::fs::remove_dir_all(&dir).ok();
    stats::utilization_eq1(
        scale.real_duration(VIRTUAL_TASK_SECS),
        jobs,
        nodes_per_job as usize,
        alloc as usize,
        wall,
    )
}

fn main() {
    banner(
        "Figure 15",
        "Swift/JETS synthetic MPI workload: utilization vs job shape",
    );
    let speedup = env_or("JETS_BENCH_SPEEDUP", 50) as f64;
    let scale = TimeScale::speedup(speedup);
    let max_nodes = env_or("JETS_BENCH_MAX_NODES", 1024) as u32;
    println!(
        "10 s virtual tasks at 1:{speedup} ({} ms), two waves per configuration\n",
        scale.real_ms(VIRTUAL_TASK_SECS)
    );
    for alloc in [16u32, 32, 64] {
        if alloc > max_nodes {
            continue;
        }
        println!("allocation: {alloc} nodes");
        println!(
            "{:>14} {:>8} {:>8} {:>8}",
            "nodes/job", "PPN 1", "PPN 4", "PPN 8"
        );
        for nodes_per_job in [1u32, 2, 4] {
            let mut row = format!("{nodes_per_job:>14}");
            for ppn in [1u32, 4, 8] {
                let u = run_config(alloc, nodes_per_job, ppn, scale);
                row.push_str(&format!(" {:>7.1}%", 100.0 * u));
            }
            println!("{row}");
        }
        println!();
    }
    println!("paper shape: utilization falls as nodes-per-job and PPN grow (more");
    println!("ranks to start per job ⇒ larger relative launch delay at this");
    println!("challenging 10 s duration).");
}
