//! The MPI-IO aggregation claim of Section 1.2, measured.
//!
//! Paper: "given N MTC processes, the filesystem would be accessed by N
//! clients; however, for 16-process MPTC tasks using MPI-IO, the number
//! of clients would be N/16." Collective I/O is the systems benefit MPTC
//! unlocks that plain MTC cannot.
//!
//! Here: N ranks each write a block to a shared output file through
//! `jets_mpi::CollectiveFile` at aggregation factors 1 (uncoordinated,
//! the MTC picture) through 16 (the paper's example), over a modelled
//! shared filesystem that charges every client operation a fixed cost.

use jets_bench::banner;
use jets_mpi::{runner, CollectiveFile, NetModel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn run(size: u32, aggregation: u32, block: usize, op_penalty: Duration) -> (u64, f64) {
    let path = std::env::temp_dir().join(format!(
        "io-agg-{size}-{aggregation}-{}",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    let ops = Arc::new(AtomicU64::new(0));
    let ops2 = Arc::clone(&ops);
    let p = path.clone();
    let start = Instant::now();
    runner::run_threads(size, NetModel::ideal(), move |comm| {
        let mut file = CollectiveFile::open(comm, &p, aggregation)
            .unwrap()
            .with_op_penalty(op_penalty);
        let rank = comm.rank();
        let data = vec![rank as u8; block];
        // Several write rounds, like a simulation writing frames.
        for round in 0..4u64 {
            let offset = round * size as u64 * block as u64 + rank as u64 * block as u64;
            file.write_at_all(comm, offset, &data).unwrap();
        }
        ops2.fetch_add(file.fs_ops(), Ordering::SeqCst);
        0
    })
    .unwrap();
    let wall = start.elapsed().as_secs_f64();
    let expect_len = 4 * size as usize * block;
    assert_eq!(std::fs::metadata(&path).unwrap().len() as usize, expect_len);
    std::fs::remove_file(&path).ok();
    (ops.load(Ordering::SeqCst), wall)
}

fn main() {
    banner(
        "I/O aggregation",
        "filesystem clients under MPI-IO collective writes (Section 1.2)",
    );
    let size = 32u32;
    let block = 4096usize;
    let penalty = Duration::from_millis(2); // a loaded shared filesystem
    println!("{size} ranks × 4 write rounds of {block} B blocks; {penalty:?}/op model\n");
    println!(
        "{:>14} {:>12} {:>14} {:>12}",
        "aggregation", "fs ops", "ops vs MTC", "wall (s)"
    );
    let baseline = run(size, 1, block, penalty);
    println!(
        "{:>14} {:>12} {:>14} {:>12.3}",
        "1 (MTC)", baseline.0, "1.0x", baseline.1
    );
    for aggregation in [4u32, 16, 32] {
        let (ops, wall) = run(size, aggregation, block, penalty);
        println!(
            "{:>14} {:>12} {:>13.1}x {:>12.3}",
            aggregation,
            ops,
            baseline.0 as f64 / ops as f64,
            wall
        );
    }
    println!("\npaper claim: aggregation by 16 cuts filesystem clients 16× (the");
    println!("load a parallel filesystem's metadata servers see), at no wall-time");
    println!("cost to the application — the aggregators' coalesced writes replace");
    println!("many small uncoordinated ones.");
}
