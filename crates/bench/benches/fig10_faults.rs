//! Figure 10 — MPI/JETS results, faulty setting.
//!
//! Paper: 32 workers run a steady stream of sequential tasks while "a
//! fault injection script ... terminated randomly selected pilot jobs,
//! one at a time, at regular 10-s intervals". The node count decays to
//! zero over ~320 s; the running-job count tracks the available-node
//! count, showing JETS keeps the survivors saturated. Early lockstep
//! produces utilization dips that shrink as skew accumulates.
//!
//! Here: 1:20 time scale (kill every 500 ms, 2 s-virtual tasks of 100 ms)
//! with the same 32 workers; the two series are printed per bin.

use cluster_sim::workload::{sleep_batch, TimeScale};
use cluster_sim::FaultInjector;
use jets_bench::{banner, boot, env_or};
use jets_core::{stats, DispatcherConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    banner(
        "Figure 10",
        "task management under fault injection (32 workers, one kill per interval)",
    );
    let speedup = env_or("JETS_BENCH_SPEEDUP", 20) as f64;
    let scale = TimeScale::speedup(speedup);
    let workers = 32u32;
    let kill_interval = scale.real_duration(10.0);
    let task_secs = 2.0;

    let bed = boot(workers, DispatcherConfig::default());
    // Enough work to outlast every worker's death.
    let batch: Vec<_> = sleep_batch(20_000, task_secs, scale)
        .into_iter()
        .map(|j| j.with_retries(50))
        .collect();
    bed.dispatcher.submit_all(batch);

    let injector = FaultInjector::start(Arc::clone(&bed.allocation), kill_interval, 42);
    let killed = injector.join(); // runs until the allocation is empty
    assert_eq!(killed.len(), workers as usize);
    // Give the dispatcher a moment to observe the last EOFs.
    std::thread::sleep(Duration::from_millis(300));

    let events = bed.dispatcher.events().snapshot();
    let bin = kill_interval;
    let availability = stats::availability_series(&events, bin);
    let load = stats::load_series(&events, bin);
    println!(
        "kill interval: {:?} real ({}s virtual); tasks: {}s virtual\n",
        kill_interval, 10.0, task_secs
    );
    println!(
        "{:>12} {:>16} {:>14}",
        "t(virt s)", "nodes available", "running jobs"
    );
    for (a, l) in availability.iter().zip(load.iter()) {
        println!(
            "{:>12.0} {:>16} {:>14}",
            scale.to_virtual_secs(a.t),
            a.alive,
            l.running_tasks
        );
    }
    let completed = events
        .iter()
        .filter(|e| matches!(e.kind, jets_core::EventKind::TaskEnded { exit_code: 0, .. }))
        .count();
    println!("\ntasks completed before the allocation died: {completed}");
    println!("paper shape: running jobs tracks nodes available all the way down;");
    println!("JETS maintains high utilization on whatever survives.");
    bed.dispatcher.shutdown();
    bed.allocation.join_all();
}
