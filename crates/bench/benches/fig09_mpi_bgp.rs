//! Figure 9 — MPI/JETS results, Blue Gene/P setting (Surveyor).
//!
//! Paper: the barrier–sleep(10 s)–barrier application run as 4-, 8-, and
//! 64-process tasks on allocations of 256, 512, and 1,024 nodes (one rank
//! per node, nodes grouped first-come-first-served), 20 tasks per node.
//! Findings: 4-processor tasks are sustainable up to ~512 nodes, then
//! degrade as load on the central scheduler becomes excessive; 64-process
//! tasks start slower (lower utilization on small allocations), a penalty
//! that shrinks as task size becomes a smaller fraction of the machine.
//!
//! Here: 10 s virtual tasks at 1:10 scale (1 s real), 6 tasks per node
//! (`JETS_BENCH_TASKS_PER_NODE` to change), same grouping, utilization by
//! Equation (1).

use cluster_sim::workload::{mpi_sleep_batch, TimeScale};
use jets_bench::{banner, boot, env_or};
use jets_core::{stats, DispatcherConfig};
use std::time::{Duration, Instant};

const VIRTUAL_TASK_SECS: f64 = 10.0;

fn run_point(nodes: u32, nproc: u32, tasks_per_node: usize, scale: TimeScale) -> f64 {
    let bed = boot(nodes, DispatcherConfig::default());
    let jobs = tasks_per_node * (nodes / nproc) as usize;
    let batch = mpi_sleep_batch(jobs, nproc, 1, VIRTUAL_TASK_SECS, scale);
    let t = Instant::now();
    bed.dispatcher.submit_all(batch);
    assert!(
        bed.dispatcher.wait_idle(Duration::from_secs(1200)),
        "point {nodes}x{nproc} did not drain"
    );
    let wall = t.elapsed();
    bed.teardown();
    stats::utilization_eq1(
        scale.real_duration(VIRTUAL_TASK_SECS),
        jobs,
        nproc as usize,
        nodes as usize,
        wall,
    )
}

fn main() {
    banner(
        "Figure 9",
        "MPI task utilization vs allocation size, BG/P setting",
    );
    let speedup = env_or("JETS_BENCH_SPEEDUP", 10) as f64;
    let scale = TimeScale::speedup(speedup);
    let tasks_per_node = env_or("JETS_BENCH_TASKS_PER_NODE", 6) as usize;
    let max_nodes = env_or("JETS_BENCH_MAX_NODES", 1024) as u32;
    println!(
        "10 s virtual tasks at 1:{speedup} ({} ms real), {tasks_per_node} tasks/node\n",
        scale.real_ms(VIRTUAL_TASK_SECS)
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "alloc", "4-proc", "8-proc", "64-proc"
    );
    for nodes in [256u32, 512, 1024] {
        if nodes > max_nodes {
            continue;
        }
        let u4 = run_point(nodes, 4, tasks_per_node, scale);
        let u8 = run_point(nodes, 8, tasks_per_node, scale);
        let u64 = run_point(nodes, 64, tasks_per_node, scale);
        println!(
            "{:>10} {:>11.1}% {:>11.1}% {:>11.1}%",
            nodes,
            100.0 * u4,
            100.0 * u8,
            100.0 * u64
        );
    }
    println!("\npaper shape: 4-proc utilization degrades past ~512 nodes (central");
    println!("scheduler saturates on job setup); 64-proc tasks pay a start-up");
    println!("penalty on small allocations that shrinks as the machine grows.");
}
