//! Figure 6 — JETS results for sequential tasks on the BG/P.
//!
//! Paper: no-op tasks submitted to allocations of increasing size on
//! Surveyor (up to 1,024 nodes / 4,096 cores); JETS "scales well,
//! achieving over 7,000 job launches per second on the full rack". A
//! single-point "ideal" measurement shows the raw process-launch rate of
//! one node without communication.
//!
//! Here: the same sweep over a simulated allocation (real dispatcher,
//! real sockets). Each task charges a modelled per-launch node cost
//! (`JETS_BENCH_LAUNCH_MS`, default 2 ms — the BG/P's process-fork cost;
//! the paper's full-rack 7,000 launches/s over 4,096 cores implies
//! ≈0.6 ms of node time per launch). Small allocations are launch-bound,
//! so the rate climbs with nodes; large allocations hit the central
//! dispatcher's service ceiling, where it flattens — the paper's shape.
//! The "ideal" point is the raw in-process execution rate with no
//! dispatcher involved.

use jets_bench::{banner, boot, env_or};
use jets_core::protocol::{TaskAssignment, TaskKind};
use jets_core::spec::CommandSpec;
use jets_core::DispatcherConfig;
use jets_worker::{apps::standard_registry, Executor, TaskExecutor};
use std::time::{Duration, Instant};

fn ideal_rate() -> f64 {
    let executor = Executor::new(standard_registry());
    let assignment = TaskAssignment {
        task_id: 0,
        job_id: 0,
        kind: TaskKind::Sequential {
            cmd: CommandSpec::builtin("noop", vec![]),
        },
        stage: Vec::new(),
    };
    let n = 200_000;
    let t = Instant::now();
    for _ in 0..n {
        assert_eq!(executor.execute(&assignment), 0);
    }
    n as f64 / t.elapsed().as_secs_f64()
}

fn main() {
    banner(
        "Figure 6",
        "sequential no-op task launch rate vs allocation size",
    );
    println!(
        "ideal (no dispatcher, single node): {:.0} launches/s\n",
        ideal_rate()
    );
    println!(
        "{:>10} {:>8} {:>10} {:>14}",
        "nodes", "tasks", "wall(s)", "launches/s"
    );

    let max_nodes = env_or("JETS_BENCH_MAX_NODES", 1024) as u32;
    for nodes in [16u32, 64, 256, 512, 1024] {
        if nodes > max_nodes {
            continue;
        }
        let bed = boot(nodes, DispatcherConfig::default());
        // Enough tasks that each worker cycles several times.
        let tasks = (nodes as usize * 8).max(2048);
        let t = Instant::now();
        let launch_ms = env_or("JETS_BENCH_LAUNCH_MS", 2);
        let batch: Vec<_> = (0..tasks)
            .map(|_| {
                jets_core::spec::JobSpec::sequential(CommandSpec::builtin(
                    "sleep",
                    vec![launch_ms.to_string()],
                ))
            })
            .collect();
        bed.dispatcher.submit_all(batch);
        assert!(
            bed.dispatcher.wait_idle(Duration::from_secs(600)),
            "batch did not drain"
        );
        let wall = t.elapsed();
        println!(
            "{:>10} {:>8} {:>10.2} {:>14.0}",
            nodes,
            tasks,
            wall.as_secs_f64(),
            tasks as f64 / wall.as_secs_f64()
        );
        bed.teardown();
    }
    println!("\npaper shape: launch-bound (rising) at small allocations, flattening");
    println!("at the central dispatcher's service limit (paper: ~7,000/s at 1,024");
    println!("nodes of a BG/P; the ceiling here is one host core's worth).");
}
