//! Figure 11 — NAMD wall-time distribution.
//!
//! Paper: the full-rack batch of 1,536 4-processor NAMD jobs (NMA,
//! 44,992 atoms, 10 timesteps ≈ 100 s each) shows "the majority of the
//! tasks fall between 100 and 120 s, [but] many tasks exceed this,
//! running up to 160 s."
//!
//! Here: a batch of NAMD-profile tasks (durations from the calibrated
//! model in `cluster-sim::workload`, which encodes exactly that
//! distribution; see DESIGN.md on the substitution) runs through the full
//! dispatcher at 1:100 scale, and the *measured* wall times are
//! histogrammed back in virtual seconds.

use cluster_sim::workload::{namd_batch, NamdDurationModel, TimeScale};
use jets_bench::{banner, boot, env_or};
use jets_core::{stats, DispatcherConfig};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;

fn main() {
    banner("Figure 11", "NAMD task wall-time distribution");
    let speedup = env_or("JETS_BENCH_SPEEDUP", 100) as f64;
    let scale = TimeScale::speedup(speedup);
    let nodes = env_or("JETS_BENCH_MAX_NODES", 1024).min(128) as u32;
    let nproc = 4u32;
    let jobs = 6 * (nodes / nproc) as usize;

    let bed = boot(nodes, DispatcherConfig::default());
    let mut rng = StdRng::seed_from_u64(11);
    let batch = namd_batch(
        jobs,
        nproc,
        1,
        NamdDurationModel::default(),
        scale,
        &mut rng,
    );
    bed.dispatcher.submit_all(batch);
    assert!(bed.dispatcher.wait_idle(Duration::from_secs(1200)));
    let events = bed.dispatcher.events().snapshot();
    bed.teardown();

    let walls: Vec<f64> = stats::task_wall_times(&events)
        .into_iter()
        .map(|w| scale.to_virtual_secs(Duration::from_secs_f64(w)))
        .collect();
    println!(
        "{} tasks of {nproc} processors on {nodes} nodes (1:{speedup} scale)\n",
        walls.len()
    );
    println!("{:>14} {:>8}  histogram", "wall time (s)", "count");
    let bins = stats::histogram(&walls, 10.0);
    let max_count = bins.iter().map(|b| b.count).max().unwrap_or(1);
    for b in &bins {
        let bar = "#".repeat((b.count * 50).div_ceil(max_count.max(1)));
        println!("{:>6.0}–{:<6.0} {:>8}  {bar}", b.lo, b.hi, b.count);
    }
    let majority = walls.iter().filter(|&&w| w < 120.0).count();
    println!(
        "\n{:.0}% of tasks under 120 s; max {:.0} s",
        100.0 * majority as f64 / walls.len() as f64,
        walls.iter().copied().fold(0.0f64, f64::max)
    );
    println!("paper shape: bulk between 100–120 s, right tail to ~160 s.");
}
