//! Figure 18 — REM/Swift results.
//!
//! Paper, two series on Eureka:
//! * **(a) single-process segments** — replicas = 2 × nodes, 4 exchanges;
//!   utilization decreases with allocation size, down to 85.4 % at 64
//!   nodes (GPFS small-file contention from many independent replicas).
//! * **(b) MPI segments** — 8 replicas, 4 concurrently executing, PPN 8,
//!   each segment spanning `alloc/4` nodes, 6 exchanges; utilization
//!   stays flat between 92.7 % and 95.6 % — "the use of the new
//!   JETS-based job launch features does not constrain utilization."
//!
//! Here: the real generated REM workflow (real MD segments, real
//! Metropolis exchanges on restart files) through swiftlite → JETS, with
//! segments paced to their nominal 100 s virtual duration at 1:100 scale.
//! Utilization is measured from the dispatcher event log (Eq. 1 over
//! observed busy time), charged against the whole allocation exactly as
//! the paper charges the long tail.

use cluster_sim::workload::TimeScale;
use jets_bench::{banner, boot, env_or};
use jets_core::{stats, DispatcherConfig};
use namd_sim::{rem_script, stage_initial_replicas, RemParams};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use swiftlite::{JetsExecutor, RunOptions, Workflow};

fn run_rem(params: &RemParams, alloc: u32) -> f64 {
    std::fs::remove_dir_all(&params.dir).ok();
    stage_initial_replicas(params).expect("stage replicas");
    let bed = boot(alloc, DispatcherConfig::default());
    let workflow = Workflow::parse(&rem_script(params)).expect("script parses");
    let executor = JetsExecutor::new(Arc::clone(&bed.dispatcher), Duration::from_secs(600));
    workflow
        .run(
            Arc::new(executor),
            RunOptions {
                work_dir: Path::new(&params.dir).join("anon"),
                wait_timeout: Duration::from_secs(1200),
            },
        )
        .expect("workflow runs");
    let events = bed.dispatcher.events().snapshot();
    bed.teardown();
    std::fs::remove_dir_all(&params.dir).ok();
    stats::measured_utilization(&events, alloc as usize)
}

fn main() {
    banner("Figure 18", "replica-exchange NAMD via Swift over JETS");
    let speedup = env_or("JETS_BENCH_SPEEDUP", 100) as f64;
    let scale = TimeScale::speedup(speedup);
    let pace_ms = scale.real_ms(100.0); // 100 s virtual NAMD segments
    let max_nodes = env_or("JETS_BENCH_MAX_NODES", 1024) as u32;

    println!("(a) single-process NAMD segments, replicas = 2 × nodes, 4 exchanges");
    println!("{:>10} {:>10} {:>14}", "alloc", "replicas", "utilization");
    for alloc in [4u32, 8, 16, 32] {
        if alloc > max_nodes {
            continue;
        }
        let params = RemParams {
            replicas: 2 * alloc,
            segments: 4,
            nodes: 1,
            ppn: 1,
            atoms: 24,
            steps: 5,
            pace_ms,
            dir: std::env::temp_dir()
                .join(format!("fig18a-{alloc}-{}", std::process::id()))
                .to_string_lossy()
                .into_owned(),
            ..RemParams::default()
        };
        let u = run_rem(&params, alloc);
        println!("{:>10} {:>10} {:>13.1}%", alloc, params.replicas, 100.0 * u);
    }

    println!(
        "\n(b) MPI NAMD segments, 8 replicas, PPN 8, segment spans alloc/4 nodes, 6 exchanges"
    );
    println!(
        "{:>10} {:>12} {:>10} {:>14}",
        "alloc", "seg shape", "replicas", "utilization"
    );
    for alloc in [8u32, 16, 32] {
        if alloc > max_nodes {
            continue;
        }
        let seg_nodes = alloc / 4;
        let params = RemParams {
            replicas: 8,
            segments: 6,
            nodes: seg_nodes,
            ppn: 8,
            atoms: 24,
            steps: 5,
            pace_ms,
            dir: std::env::temp_dir()
                .join(format!("fig18b-{alloc}-{}", std::process::id()))
                .to_string_lossy()
                .into_owned(),
            ..RemParams::default()
        };
        let u = run_rem(&params, alloc);
        println!(
            "{:>10} {:>9}×{:<2} {:>10} {:>13.1}%",
            alloc,
            seg_nodes,
            8,
            params.replicas,
            100.0 * u
        );
    }
    println!("\npaper shape: (a) drifts down with allocation size (85–97 %);");
    println!("(b) stays flat in the low-to-mid 90s — MPI launch through JETS");
    println!("does not constrain utilization.");
}
