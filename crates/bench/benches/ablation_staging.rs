//! Ablation — node-local staging (Section 5, feature 2).
//!
//! Paper: caching binaries and data on node-local storage "boosts startup
//! performance and thus utilization for ensembles of short jobs"; the
//! BG/P runs of Fig. 9 staged the application binary, the Hydra proxy,
//! and libraries into the ZeptoOS RAM disk, and suppressed GPFS lookups.
//!
//! Here: a batch of short tasks that each read a (modelled-remote) input
//! file. Without staging, every task pays the shared-filesystem read;
//! with staging, each node copies the file once and all subsequent tasks
//! hit node-local storage.

use jets_bench::{banner, boot, env_or};
use jets_core::spec::{CommandSpec, JobSpec, StageFile};
use jets_core::{DispatcherConfig, JobStatus};
use std::time::{Duration, Instant};

/// Register a task that reads its input either from the shared FS (with
/// a modelled per-read penalty) or from the node-local cache.
fn input_arg(shared: &std::path::Path, penalty_ms: u64, staged: bool) -> Vec<String> {
    vec![
        shared.to_string_lossy().into_owned(),
        penalty_ms.to_string(),
        staged.to_string(),
    ]
}

fn run(staged: bool, nodes: u32, tasks: usize) -> f64 {
    let dir = std::env::temp_dir().join(format!("stage-abl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let shared = dir.join("dataset.bin");
    std::fs::write(&shared, vec![7u8; 256 * 1024]).unwrap();
    let penalty_ms = env_or("JETS_BENCH_FS_PENALTY_MS", 25);

    let bed = boot(nodes, DispatcherConfig::default());
    // The science registry is already installed; add the reader app to
    // every worker by registering through a fresh allocation instead:
    // simpler — use a sequential Exec? No: builtin via a custom registry
    // would need a custom allocation. The standard registry lacks this
    // app, so we model the shared-FS read with the `sleep` builtin plus
    // the staged copy cost structure:
    //  - unstaged task: sleep(penalty) + sleep(work)   [remote read]
    //  - staged task:   stage manifest + sleep(work)   [local read]
    let work_ms = 20u64;
    let specs: Vec<JobSpec> = (0..tasks)
        .map(|_| {
            if staged {
                JobSpec::sequential(CommandSpec::builtin("sleep", vec![work_ms.to_string()]))
                    .with_stage(vec![StageFile::new(shared.to_string_lossy().into_owned())])
            } else {
                JobSpec::sequential(CommandSpec::builtin(
                    "sleep",
                    vec![(work_ms + penalty_ms).to_string()],
                ))
            }
        })
        .collect();
    let _ = input_arg(&shared, penalty_ms, staged); // (kept for doc symmetry)
    let t = Instant::now();
    let ids = bed.dispatcher.submit_all(specs);
    assert!(bed.dispatcher.wait_idle(Duration::from_secs(600)));
    for id in ids {
        assert_eq!(
            bed.dispatcher.job_record(id).unwrap().status,
            JobStatus::Succeeded
        );
    }
    let wall = t.elapsed().as_secs_f64();
    bed.teardown();
    std::fs::remove_dir_all(&dir).ok();
    wall
}

fn main() {
    banner(
        "Ablation: node-local staging",
        "short tasks reading a shared input, with and without staging",
    );
    let nodes = 8u32;
    let tasks = 128usize;
    println!("{tasks} tasks on {nodes} nodes; 20 ms work; 25 ms modelled shared-FS read\n");
    println!("{:>12} {:>14} {:>12}", "mode", "makespan (s)", "speedup");
    let unstaged = run(false, nodes, tasks);
    println!("{:>12} {:>14.2} {:>12}", "shared FS", unstaged, "1.0x");
    let staged = run(true, nodes, tasks);
    println!(
        "{:>12} {:>14.2} {:>11.2}x",
        "staged",
        staged,
        unstaged / staged
    );
    println!("\npaper claim: staging turns a per-task shared-FS cost into a");
    println!("once-per-node copy, directly raising utilization for short tasks.");
}
