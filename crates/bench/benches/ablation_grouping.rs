//! Ablation — FCFS vs location-aware worker grouping.
//!
//! Paper, Section 7: "JETS does not currently have a mechanism by which
//! nodes may be grouped with respect to network location. This feature
//! could be important if a given workflow is running on multiple clusters
//! simultaneously, and joining MPI processes on the same cluster should
//! be preferred to running MPI jobs across clusters." We implemented that
//! future-work policy (`GroupingPolicy::LocationAware`) and measure what
//! it buys.
//!
//! Setup: a 16-worker pool split across two "clusters" (locations),
//! assigned round-robin so FCFS naturally builds mixed groups. Jobs are
//! submitted in waves sized to the machine and each wave is drained
//! before the next, so every scheduling decision sees the full idle pool
//! — isolating the *policy* from ready-pool churn (steady-state churn
//! shrinks the pool to a few workers and both policies degenerate to
//! near-random grouping). Reported: the mean co-location fraction of
//! each MPI group (the scheduling metric) and the batch makespan.

use cluster_sim::workload::mpi_sleep_batch;
use cluster_sim::workload::TimeScale;
use cluster_sim::AllocationConfig;
use jets_bench::{banner, boot_with, env_or};
use jets_core::group::colocation_fraction;
use jets_core::{DispatcherConfig, EventKind, GroupingPolicy};
use std::collections::HashMap;
use std::time::{Duration, Instant};

fn run(policy: GroupingPolicy) -> (f64, f64) {
    let nodes = 16u32;
    let alloc = AllocationConfig::new(nodes)
        .with_locations(vec!["cluster-east".to_string(), "cluster-west".to_string()]);
    let bed = boot_with(
        nodes,
        DispatcherConfig {
            grouping: policy,
            ..DispatcherConfig::default()
        },
        alloc,
    );
    let scale = TimeScale::speedup(env_or("JETS_BENCH_SPEEDUP", 50) as f64);
    let t = Instant::now();
    // 16 waves of 4 jobs × 4 nodes = the whole pool per wave; drain each
    // wave so every decision sees all 16 idle workers.
    for _ in 0..16 {
        bed.dispatcher
            .submit_all(mpi_sleep_batch(4, 4, 1, 5.0, scale));
        assert!(bed.dispatcher.wait_idle(Duration::from_secs(600)));
    }
    let makespan = t.elapsed().as_secs_f64();

    // Reconstruct each job's worker group from the event log and score
    // its co-location.
    let locations: HashMap<u64, String> = bed
        .dispatcher
        .workers()
        .into_iter()
        .map(|w| (w.id, w.location))
        .collect();
    let events = bed.dispatcher.events().snapshot();
    let mut groups: HashMap<u64, Vec<u64>> = HashMap::new();
    for e in &events {
        if let EventKind::TaskStarted { job, worker, .. } = e.kind {
            groups.entry(job).or_default().push(worker);
        }
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for workers in groups.values().filter(|w| w.len() > 1) {
        let locs: Vec<&str> = workers
            .iter()
            .filter_map(|w| locations.get(w).map(String::as_str))
            .collect();
        total += colocation_fraction(&locs);
        count += 1;
    }
    bed.teardown();
    (total / count.max(1) as f64, makespan)
}

fn main() {
    banner(
        "Ablation: grouping",
        "FCFS vs location-aware worker aggregation on a two-cluster pool",
    );
    println!(
        "{:>16} {:>22} {:>14}",
        "policy", "mean co-location", "makespan (s)"
    );
    for (name, policy) in [
        ("fcfs", GroupingPolicy::Fcfs),
        ("location-aware", GroupingPolicy::LocationAware),
    ] {
        let (colocation, makespan) = run(policy);
        println!(
            "{:>16} {:>21.1}% {:>14.2}",
            name,
            100.0 * colocation,
            makespan
        );
    }
    println!("\nexpected: FCFS mixes clusters freely (co-location near the random");
    println!("baseline for 4-node groups over two clusters); the location-aware");
    println!("policy keeps nearly every group on one cluster, at no makespan cost.");
    println!("Under steady-state churn (no wave draining) the idle pool shrinks to");
    println!("a few workers and both policies converge — the policy never delays a");
    println!("job to wait for a better group.");
}
