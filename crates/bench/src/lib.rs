//! Shared plumbing for the benchmark harnesses.
//!
//! Every figure-bench boots a real dispatcher plus a simulated allocation
//! (see `cluster-sim`), runs the paper's workload at a virtual-time
//! scale, and prints the same series the paper plots. Scales and maximum
//! allocation sizes can be overridden with environment variables:
//!
//! * `JETS_BENCH_MAX_NODES` — cap allocation sizes (default: figure
//!   specific).
//! * `JETS_BENCH_SPEEDUP` — virtual-seconds-per-real-second factor
//!   (default: figure specific).

use cluster_sim::{science_registry, Allocation, AllocationConfig};
use jets_core::{Dispatcher, DispatcherConfig};
use jets_worker::Executor;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A dispatcher plus its booted allocation.
pub struct Testbed {
    /// The dispatcher under test.
    pub dispatcher: Arc<Dispatcher>,
    /// Its simulated allocation.
    pub allocation: Arc<Allocation>,
}

/// Boot `nodes` workers against a fresh dispatcher and wait for all of
/// them to register.
pub fn boot(nodes: u32, config: DispatcherConfig) -> Testbed {
    boot_with(nodes, config, AllocationConfig::new(nodes))
}

/// Boot with a custom allocation configuration.
pub fn boot_with(nodes: u32, config: DispatcherConfig, alloc: AllocationConfig) -> Testbed {
    let dispatcher = Arc::new(Dispatcher::start(config).expect("start dispatcher"));
    let allocation = Arc::new(Allocation::start(
        &dispatcher.addr().to_string(),
        alloc,
        Arc::new(Executor::new(science_registry())),
    ));
    let deadline = Instant::now() + Duration::from_secs(120);
    while dispatcher.alive_workers() < nodes as usize {
        assert!(
            Instant::now() < deadline,
            "only {} of {nodes} workers registered",
            dispatcher.alive_workers()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    Testbed {
        dispatcher,
        allocation,
    }
}

impl Testbed {
    /// Shut down and reap everything.
    pub fn teardown(self) {
        self.dispatcher.shutdown();
        self.allocation.join_all();
    }
}

/// Environment override helper.
pub fn env_or(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Print a figure banner.
pub fn banner(figure: &str, description: &str) {
    println!("==========================================================");
    println!("{figure}: {description}");
    println!("==========================================================");
}
