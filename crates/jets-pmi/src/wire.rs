//! Line-oriented PMI-1-style wire protocol.
//!
//! Each message is a single text line of `key=value` pairs introduced by a
//! `cmd=<name>` pair, e.g.:
//!
//! ```text
//! cmd=put key=bc.3 value=127.0.0.1%3A40112
//! ```
//!
//! Keys and values are percent-escaped so that spaces, `=`, `%`, and
//! newlines cannot break the framing. This mirrors how real PMI-1 restricts
//! its value alphabet, while letting us carry arbitrary business cards.

use std::fmt;

/// Errors produced while parsing a wire line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The line had no `cmd=` pair.
    MissingCommand,
    /// A field required by the command was absent.
    MissingField(&'static str),
    /// The command name was not recognized.
    UnknownCommand(String),
    /// A `key=value` pair was malformed.
    BadPair(String),
    /// A numeric field failed to parse.
    BadNumber(String),
    /// Percent-escape decoding failed.
    BadEscape(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::MissingCommand => write!(f, "line has no cmd= field"),
            WireError::MissingField(field) => write!(f, "missing field {field}"),
            WireError::UnknownCommand(c) => write!(f, "unknown command {c}"),
            WireError::BadPair(p) => write!(f, "malformed pair {p}"),
            WireError::BadNumber(n) => write!(f, "bad number {n}"),
            WireError::BadEscape(s) => write!(f, "bad escape in {s}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A PMI protocol message, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Rank announces itself: `cmd=init rank=<r> size=<n> jobid=<j>`.
    Init {
        /// The announcing rank.
        rank: u32,
        /// World size of the job.
        size: u32,
        /// Job identifier.
        jobid: String,
    },
    /// Server acknowledges init.
    InitAck,
    /// Publish a key into the job's key-value space.
    Put {
        /// Key to publish.
        key: String,
        /// Value to store.
        value: String,
    },
    /// Server acknowledges a put.
    PutAck,
    /// Look up a key.
    Get {
        /// Key to look up.
        key: String,
    },
    /// Successful lookup.
    GetAck {
        /// The stored value.
        value: String,
    },
    /// Key not present.
    GetFail {
        /// The missing key.
        key: String,
    },
    /// Enter the KVS fence (collective barrier over all ranks).
    Fence,
    /// All ranks have fenced; puts made before the fence are now globally
    /// visible.
    FenceAck,
    /// Orderly rank exit.
    Finalize,
    /// Server acknowledges finalize; the rank may disconnect.
    FinalizeAck,
    /// Abort the whole job.
    Abort {
        /// Human-readable cause.
        reason: String,
    },
}

/// Percent-escape a string for embedding in a wire line.
///
/// Escapes `%`, space, `=`, CR and LF; everything else passes through.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b' ' | b'=' => encode_byte(&mut out, b),
            // Printable ASCII passes through; control characters and
            // UTF-8 continuation bytes must be encoded byte-by-byte or
            // they would be misread as Latin-1 on decode.
            0x21..=0x7e => out.push(b as char),
            _ => encode_byte(&mut out, b),
        }
    }
    out
}

fn encode_byte(out: &mut String, b: u8) {
    out.push('%');
    out.push(hex_digit(b >> 4));
    out.push(hex_digit(b & 0xf));
}

/// Reverse of [`escape`].
pub fn unescape(s: &str) -> Result<String, WireError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 2 >= bytes.len() {
                return Err(WireError::BadEscape(s.to_string()));
            }
            let hi = from_hex(bytes[i + 1]).ok_or_else(|| WireError::BadEscape(s.to_string()))?;
            let lo = from_hex(bytes[i + 2]).ok_or_else(|| WireError::BadEscape(s.to_string()))?;
            out.push((hi << 4) | lo);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| WireError::BadEscape(s.to_string()))
}

fn hex_digit(nibble: u8) -> char {
    char::from_digit(nibble as u32, 16).expect("nibble in range")
}

fn from_hex(b: u8) -> Option<u8> {
    (b as char).to_digit(16).map(|d| d as u8)
}

impl Message {
    /// Encode the message as a single wire line (without trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Message::Init { rank, size, jobid } => {
                format!("cmd=init rank={rank} size={size} jobid={}", escape(jobid))
            }
            Message::InitAck => "cmd=init_ack".to_string(),
            Message::Put { key, value } => {
                format!("cmd=put key={} value={}", escape(key), escape(value))
            }
            Message::PutAck => "cmd=put_ack".to_string(),
            Message::Get { key } => format!("cmd=get key={}", escape(key)),
            Message::GetAck { value } => format!("cmd=get_ack value={}", escape(value)),
            Message::GetFail { key } => format!("cmd=get_fail key={}", escape(key)),
            Message::Fence => "cmd=fence".to_string(),
            Message::FenceAck => "cmd=fence_ack".to_string(),
            Message::Finalize => "cmd=finalize".to_string(),
            Message::FinalizeAck => "cmd=finalize_ack".to_string(),
            Message::Abort { reason } => format!("cmd=abort reason={}", escape(reason)),
        }
    }

    /// Parse a wire line (trailing newline permitted) back into a message.
    pub fn decode(line: &str) -> Result<Message, WireError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let mut cmd: Option<String> = None;
        let mut fields: Vec<(String, String)> = Vec::new();
        for pair in line.split(' ').filter(|p| !p.is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| WireError::BadPair(pair.to_string()))?;
            if k == "cmd" {
                cmd = Some(v.to_string());
            } else {
                fields.push((k.to_string(), unescape(v)?));
            }
        }
        let cmd = cmd.ok_or(WireError::MissingCommand)?;
        let field = |name: &'static str| -> Result<String, WireError> {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .ok_or(WireError::MissingField(name))
        };
        let num = |name: &'static str| -> Result<u32, WireError> {
            let v = field(name)?;
            v.parse().map_err(|_| WireError::BadNumber(v))
        };
        match cmd.as_str() {
            "init" => Ok(Message::Init {
                rank: num("rank")?,
                size: num("size")?,
                jobid: field("jobid")?,
            }),
            "init_ack" => Ok(Message::InitAck),
            "put" => Ok(Message::Put {
                key: field("key")?,
                value: field("value")?,
            }),
            "put_ack" => Ok(Message::PutAck),
            "get" => Ok(Message::Get { key: field("key")? }),
            "get_ack" => Ok(Message::GetAck {
                value: field("value")?,
            }),
            "get_fail" => Ok(Message::GetFail { key: field("key")? }),
            "fence" => Ok(Message::Fence),
            "fence_ack" => Ok(Message::FenceAck),
            "finalize" => Ok(Message::Finalize),
            "finalize_ack" => Ok(Message::FinalizeAck),
            "abort" => Ok(Message::Abort {
                reason: field("reason")?,
            }),
            other => Err(WireError::UnknownCommand(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_specials() {
        let s = "a b=c%d\ne";
        assert_eq!(unescape(&escape(s)).unwrap(), s);
    }

    #[test]
    fn escape_leaves_plain_text_alone() {
        assert_eq!(escape("bc.17"), "bc.17");
        assert_eq!(escape("127.0.0.1:40112"), "127.0.0.1:40112");
    }

    #[test]
    fn unescape_rejects_truncated_escape() {
        assert!(matches!(unescape("abc%4"), Err(WireError::BadEscape(_))));
        assert!(matches!(unescape("abc%"), Err(WireError::BadEscape(_))));
    }

    #[test]
    fn unescape_rejects_non_hex() {
        assert!(matches!(unescape("%zz"), Err(WireError::BadEscape(_))));
    }

    #[test]
    fn init_round_trip() {
        let m = Message::Init {
            rank: 3,
            size: 64,
            jobid: "job-00017".to_string(),
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn put_with_hostile_value_round_trips() {
        let m = Message::Put {
            key: "bc.0".to_string(),
            value: "spaces and = and %\nnewline".to_string(),
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn decode_tolerates_trailing_newline() {
        let line = "cmd=fence\n";
        assert_eq!(Message::decode(line).unwrap(), Message::Fence);
    }

    #[test]
    fn decode_rejects_missing_cmd() {
        assert_eq!(
            Message::decode("key=a value=b"),
            Err(WireError::MissingCommand)
        );
    }

    #[test]
    fn decode_rejects_unknown_command() {
        assert!(matches!(
            Message::decode("cmd=launch"),
            Err(WireError::UnknownCommand(_))
        ));
    }

    #[test]
    fn decode_rejects_missing_field() {
        assert_eq!(
            Message::decode("cmd=put key=a"),
            Err(WireError::MissingField("value"))
        );
    }

    #[test]
    fn decode_rejects_bad_number() {
        assert!(matches!(
            Message::decode("cmd=init rank=x size=4 jobid=j"),
            Err(WireError::BadNumber(_))
        ));
    }

    #[test]
    fn all_simple_messages_round_trip() {
        for m in [
            Message::InitAck,
            Message::PutAck,
            Message::Fence,
            Message::FenceAck,
            Message::Finalize,
            Message::FinalizeAck,
        ] {
            assert_eq!(Message::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn abort_round_trip() {
        let m = Message::Abort {
            reason: "proxy 3 died: connection reset".to_string(),
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }
}
