//! Per-job key-value space with fence (collective barrier) semantics.
//!
//! The KVS is the rendezvous mechanism of PMI: every rank `put`s its
//! *business card* (how peers can reach it), all ranks `fence`, and then
//! every rank can `get` every other rank's card. Real PMI-1 only guarantees
//! visibility of a put *after* the fence; we make puts immediately visible
//! (a strict superset of the guarantee) and implement the fence as a
//! generation-counted barrier so it can be reused any number of times.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Outcome of waiting on a fence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceResult {
    /// All participants arrived; the fence completed.
    Released,
    /// The job was aborted while waiting.
    Aborted,
    /// The wait timed out before all participants arrived.
    TimedOut,
}

#[derive(Default)]
struct KvsState {
    map: HashMap<String, String>,
    /// Number of participants currently waiting in the fence.
    fence_waiting: u32,
    /// Completed fence generations; waiting threads watch this advance.
    fence_generation: u64,
    aborted: Option<String>,
}

/// A shared, thread-safe key-value space for one PMI job.
///
/// Cloning is cheap (it is an `Arc` internally); all clones view the same
/// space.
#[derive(Clone)]
pub struct KeyValueSpace {
    inner: Arc<(Mutex<KvsState>, Condvar)>,
    participants: u32,
}

impl KeyValueSpace {
    /// Create a space fenced by `participants` ranks.
    ///
    /// # Panics
    /// Panics if `participants` is zero: a fence over zero ranks is
    /// meaningless and would release immediately forever.
    pub fn new(participants: u32) -> Self {
        assert!(participants > 0, "KVS needs at least one participant");
        KeyValueSpace {
            inner: Arc::new((Mutex::new(KvsState::default()), Condvar::new())),
            participants,
        }
    }

    /// Number of ranks that must arrive to release a fence.
    pub fn participants(&self) -> u32 {
        self.participants
    }

    /// Insert or overwrite a key.
    pub fn put(&self, key: &str, value: &str) {
        let mut st = self.inner.0.lock();
        st.map.insert(key.to_string(), value.to_string());
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<String> {
        self.inner.0.lock().map.get(key).cloned()
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.inner.0.lock().map.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enter the fence and block until all `participants` ranks have
    /// entered, the job aborts, or `timeout` elapses.
    pub fn fence(&self, timeout: Duration) -> FenceResult {
        let (lock, cvar) = &*self.inner;
        let mut st = lock.lock();
        if st.aborted.is_some() {
            return FenceResult::Aborted;
        }
        st.fence_waiting += 1;
        if st.fence_waiting == self.participants {
            // Last arrival releases everyone and starts a new generation.
            st.fence_waiting = 0;
            st.fence_generation += 1;
            cvar.notify_all();
            return FenceResult::Released;
        }
        let my_generation = st.fence_generation;
        loop {
            if cvar.wait_for(&mut st, timeout).timed_out() {
                // Withdraw our arrival so a later retry is consistent.
                if st.fence_generation == my_generation && st.aborted.is_none() {
                    st.fence_waiting = st.fence_waiting.saturating_sub(1);
                    return FenceResult::TimedOut;
                }
            }
            if st.aborted.is_some() {
                return FenceResult::Aborted;
            }
            if st.fence_generation != my_generation {
                return FenceResult::Released;
            }
        }
    }

    /// Abort the job: all present and future fence waiters return
    /// [`FenceResult::Aborted`].
    pub fn abort(&self, reason: &str) {
        let (lock, cvar) = &*self.inner;
        let mut st = lock.lock();
        if st.aborted.is_none() {
            st.aborted = Some(reason.to_string());
        }
        cvar.notify_all();
    }

    /// The abort reason, if the job aborted.
    pub fn abort_reason(&self) -> Option<String> {
        self.inner.0.lock().aborted.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    const LONG: Duration = Duration::from_secs(10);

    #[test]
    fn put_get_round_trip() {
        let kvs = KeyValueSpace::new(1);
        kvs.put("bc.0", "127.0.0.1:5000");
        assert_eq!(kvs.get("bc.0").as_deref(), Some("127.0.0.1:5000"));
        assert_eq!(kvs.get("bc.1"), None);
    }

    #[test]
    fn put_overwrites() {
        let kvs = KeyValueSpace::new(1);
        kvs.put("k", "a");
        kvs.put("k", "b");
        assert_eq!(kvs.get("k").as_deref(), Some("b"));
        assert_eq!(kvs.len(), 1);
    }

    #[test]
    fn single_participant_fence_releases_immediately() {
        let kvs = KeyValueSpace::new(1);
        assert_eq!(kvs.fence(LONG), FenceResult::Released);
        assert_eq!(kvs.fence(LONG), FenceResult::Released);
    }

    #[test]
    fn fence_blocks_until_all_arrive() {
        let kvs = KeyValueSpace::new(4);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let k = kvs.clone();
            handles.push(thread::spawn(move || k.fence(LONG)));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), FenceResult::Released);
        }
    }

    #[test]
    fn fence_is_reusable_across_generations() {
        let kvs = KeyValueSpace::new(2);
        for _ in 0..3 {
            let k = kvs.clone();
            let h = thread::spawn(move || k.fence(LONG));
            assert_eq!(kvs.fence(LONG), FenceResult::Released);
            assert_eq!(h.join().unwrap(), FenceResult::Released);
        }
    }

    #[test]
    fn fence_times_out_when_peers_never_arrive() {
        let kvs = KeyValueSpace::new(2);
        assert_eq!(kvs.fence(Duration::from_millis(20)), FenceResult::TimedOut);
        // After the timeout the withdrawn arrival must not poison a later
        // successful fence.
        let k = kvs.clone();
        let h = thread::spawn(move || k.fence(LONG));
        assert_eq!(kvs.fence(LONG), FenceResult::Released);
        assert_eq!(h.join().unwrap(), FenceResult::Released);
    }

    #[test]
    fn abort_wakes_fence_waiters() {
        let kvs = KeyValueSpace::new(2);
        let k = kvs.clone();
        let h = thread::spawn(move || k.fence(LONG));
        // Give the waiter time to park.
        thread::sleep(Duration::from_millis(10));
        kvs.abort("injected failure");
        assert_eq!(h.join().unwrap(), FenceResult::Aborted);
        assert_eq!(kvs.abort_reason().as_deref(), Some("injected failure"));
    }

    #[test]
    fn fence_after_abort_returns_aborted() {
        let kvs = KeyValueSpace::new(3);
        kvs.abort("dead");
        assert_eq!(kvs.fence(LONG), FenceResult::Aborted);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = KeyValueSpace::new(0);
    }
}
