//! The process-manager side of PMI: one [`PmiServer`] per MPI job.
//!
//! In MPICH2/Hydra terms this is the network service that `mpiexec` keeps
//! running after printing proxy commands under `launcher=manual`: it accepts
//! one connection per rank, serves the key-value space, implements the
//! fence, and reports the job outcome once every rank finalizes (or any
//! rank aborts / disconnects early).

use crate::kvs::{FenceResult, KeyValueSpace};
use crate::wire::Message;
use parking_lot::{Condvar, Mutex};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Configuration for a per-job PMI server.
#[derive(Debug, Clone)]
pub struct PmiServerConfig {
    /// Job identifier, echoed to ranks and used in diagnostics.
    pub jobid: String,
    /// Number of ranks that will connect.
    pub size: u32,
    /// How long a rank may wait inside a fence before the job is aborted.
    pub fence_timeout: Duration,
}

impl PmiServerConfig {
    /// A configuration with generous defaults for `size` ranks.
    pub fn new(jobid: impl Into<String>, size: u32) -> Self {
        PmiServerConfig {
            jobid: jobid.into(),
            size,
            fence_timeout: Duration::from_secs(60),
        }
    }
}

/// Final status of a PMI job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Every rank connected, initialized, and finalized.
    Success,
    /// The job aborted (explicit `cmd=abort`, early disconnect, or fence
    /// failure). Carries the first abort reason observed.
    Aborted(String),
    /// [`PmiServer::wait`] gave up before the job finished.
    TimedOut,
}

struct Completion {
    finalized: u32,
    outcome: Option<JobOutcome>,
}

struct Shared {
    completion: Mutex<Completion>,
    cond: Condvar,
    kvs: KeyValueSpace,
    config: PmiServerConfig,
    /// When the first fence released: the moment the whole gang had
    /// connected, exchanged cards, and cleared PMI negotiation. The
    /// dispatcher reads this to split a job's launch latency into
    /// PMI-wait versus run time (the `pmi` phase of `JobPhases`).
    first_fence: Mutex<Option<Instant>>,
}

impl Shared {
    fn record_abort(&self, reason: &str) {
        let mut c = self.completion.lock();
        if c.outcome.is_none() {
            c.outcome = Some(JobOutcome::Aborted(reason.to_string()));
        }
        self.kvs.abort(reason);
        self.cond.notify_all();
    }

    fn record_finalize(&self) {
        let mut c = self.completion.lock();
        c.finalized += 1;
        if c.finalized == self.config.size && c.outcome.is_none() {
            c.outcome = Some(JobOutcome::Success);
        }
        self.cond.notify_all();
    }

    fn aborted(&self) -> bool {
        matches!(self.completion.lock().outcome, Some(JobOutcome::Aborted(_)))
    }
}

/// A running PMI server for a single MPI job.
///
/// The server owns a listener thread and one small-stack thread per rank
/// connection; all threads exit once the job completes or aborts.
pub struct PmiServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// Stack size for connection-handler threads. These threads parse short
/// text lines and touch the KVS; the default 8 MiB stack would waste
/// address space when hundreds of jobs run concurrently.
const HANDLER_STACK: usize = 128 * 1024;

impl PmiServer {
    /// Bind a listener on an ephemeral localhost port and start serving.
    pub fn start(config: PmiServerConfig) -> io::Result<PmiServer> {
        assert!(config.size > 0, "PMI job must have at least one rank");
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            completion: Mutex::new(Completion {
                finalized: 0,
                outcome: None,
            }),
            cond: Condvar::new(),
            kvs: KeyValueSpace::new(config.size),
            config,
            first_fence: Mutex::new(None),
        });
        let accept_shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("pmi-accept".to_string())
            .stack_size(HANDLER_STACK)
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn pmi accept thread");
        Ok(PmiServer { addr, shared })
    }

    /// Address ranks must connect to (`PMI_ADDR`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The job's key-value space (for inspection and tests).
    pub fn kvs(&self) -> &KeyValueSpace {
        &self.shared.kvs
    }

    /// Abort the job from the manager side (e.g. the scheduler noticed a
    /// worker died before its proxy connected).
    pub fn abort(&self, reason: &str) {
        self.shared.record_abort(reason);
    }

    /// Block until the job completes, aborts, or `timeout` passes.
    pub fn wait(&self, timeout: Duration) -> JobOutcome {
        let deadline = Instant::now() + timeout;
        let mut c = self.shared.completion.lock();
        loop {
            if let Some(outcome) = &c.outcome {
                return outcome.clone();
            }
            let now = Instant::now();
            if now >= deadline {
                return JobOutcome::TimedOut;
            }
            self.shared.cond.wait_for(&mut c, deadline - now);
        }
    }

    /// Outcome if the job already finished, without blocking.
    pub fn try_outcome(&self) -> Option<JobOutcome> {
        self.shared.completion.lock().outcome.clone()
    }

    /// When the job's first fence released — the end of PMI negotiation
    /// (every rank connected, exchanged cards, and hit the barrier).
    /// `None` while negotiation is still in flight or if the job never
    /// fences.
    pub fn first_barrier_at(&self) -> Option<Instant> {
        *self.shared.first_fence.lock()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut accepted = 0;
    let mut backoff = Duration::from_micros(200);
    while accepted < shared.config.size {
        if shared.aborted() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                accepted += 1;
                backoff = Duration::from_micros(200);
                let conn_shared = Arc::clone(&shared);
                let name = format!("pmi-conn-{}", shared.config.jobid);
                // A rank that never gets a handler thread can never
                // barrier: abort the job cleanly instead of panicking
                // the server thread and hanging every other rank.
                if thread::Builder::new()
                    .name(name)
                    .stack_size(HANDLER_STACK)
                    .spawn(move || {
                        if let Err(reason) = serve_connection(stream, &conn_shared) {
                            conn_shared.record_abort(&reason);
                        }
                    })
                    .is_err()
                {
                    shared.record_abort("pmi: failed to spawn connection handler");
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(backoff);
                // Exponential backoff bounded at 5 ms keeps idle accept
                // loops cheap when many jobs are in flight on few cores.
                backoff = (backoff * 2).min(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }
}

/// Serve one rank connection. Returns `Err(reason)` if the job must abort.
fn serve_connection(stream: TcpStream, shared: &Shared) -> Result<(), String> {
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut rank: Option<u32> = None;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("pmi read error: {e}"))?;
        if n == 0 {
            return match rank {
                // EOF after finalize_ack is the normal disconnect.
                None => Err("rank disconnected before init".to_string()),
                Some(r) => {
                    if shared.completion.lock().outcome.is_some() {
                        Ok(())
                    } else {
                        Err(format!("rank {r} disconnected before finalize"))
                    }
                }
            };
        }
        let msg = Message::decode(&line).map_err(|e| format!("pmi protocol error: {e}"))?;
        match msg {
            Message::Init {
                rank: r,
                size,
                jobid,
            } => {
                if size != shared.config.size {
                    return Err(format!(
                        "rank {r} announced size {size}, expected {}",
                        shared.config.size
                    ));
                }
                if jobid != shared.config.jobid {
                    return Err(format!(
                        "rank {r} announced job {jobid}, expected {}",
                        shared.config.jobid
                    ));
                }
                rank = Some(r);
                send(&mut writer, &Message::InitAck)?;
            }
            Message::Put { key, value } => {
                shared.kvs.put(&key, &value);
                send(&mut writer, &Message::PutAck)?;
            }
            Message::Get { key } => match shared.kvs.get(&key) {
                Some(value) => send(&mut writer, &Message::GetAck { value })?,
                None => send(&mut writer, &Message::GetFail { key })?,
            },
            Message::Fence => match shared.kvs.fence(shared.config.fence_timeout) {
                FenceResult::Released => {
                    {
                        let mut first = shared.first_fence.lock();
                        if first.is_none() {
                            *first = Some(Instant::now());
                        }
                    }
                    send(&mut writer, &Message::FenceAck)?
                }
                FenceResult::Aborted => {
                    let reason = shared
                        .kvs
                        .abort_reason()
                        .unwrap_or_else(|| "aborted".to_string());
                    send(&mut writer, &Message::Abort { reason }).ok();
                    return Ok(()); // abort already recorded elsewhere
                }
                FenceResult::TimedOut => {
                    return Err(format!(
                        "fence timed out after {:?} (rank {:?})",
                        shared.config.fence_timeout, rank
                    ));
                }
            },
            Message::Finalize => {
                send(&mut writer, &Message::FinalizeAck)?;
                shared.record_finalize();
                return Ok(());
            }
            Message::Abort { reason } => {
                return Err(format!("rank {rank:?} aborted: {reason}"));
            }
            other => {
                return Err(format!("unexpected client message: {other:?}"));
            }
        }
    }
}

fn send(writer: &mut TcpStream, msg: &Message) -> Result<(), String> {
    let mut line = msg.encode();
    line.push('\n');
    writer
        .write_all(line.as_bytes())
        .map_err(|e| format!("pmi write error: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PmiClient;

    const WAIT: Duration = Duration::from_secs(20);

    fn run_ranks(size: u32, f: impl Fn(PmiClient) + Send + Sync + 'static) -> JobOutcome {
        let server = PmiServer::start(PmiServerConfig::new("t", size)).unwrap();
        let addr = server.addr();
        let f = Arc::new(f);
        let mut handles = Vec::new();
        for rank in 0..size {
            let f = Arc::clone(&f);
            handles.push(thread::spawn(move || {
                let client = PmiClient::connect(&addr.to_string(), rank, size, "t").unwrap();
                f(client);
            }));
        }
        let outcome = server.wait(WAIT);
        for h in handles {
            h.join().unwrap();
        }
        outcome
    }

    #[test]
    fn single_rank_job_succeeds() {
        let outcome = run_ranks(1, |mut c| {
            c.put("bc.0", "here").unwrap();
            c.fence().unwrap();
            assert_eq!(c.get("bc.0").unwrap().as_deref(), Some("here"));
            c.finalize().unwrap();
        });
        assert_eq!(outcome, JobOutcome::Success);
    }

    #[test]
    fn four_ranks_exchange_business_cards() {
        let outcome = run_ranks(4, |mut c| {
            let me = format!("card-for-{}", c.rank());
            c.put(&format!("bc.{}", c.rank()), &me).unwrap();
            c.fence().unwrap();
            for peer in 0..4 {
                let card = c.get(&format!("bc.{peer}")).unwrap();
                assert_eq!(card.as_deref(), Some(&*format!("card-for-{peer}")));
            }
            c.finalize().unwrap();
        });
        assert_eq!(outcome, JobOutcome::Success);
    }

    #[test]
    fn get_of_missing_key_returns_none() {
        let outcome = run_ranks(1, |mut c| {
            assert_eq!(c.get("nope").unwrap(), None);
            c.finalize().unwrap();
        });
        assert_eq!(outcome, JobOutcome::Success);
    }

    #[test]
    fn early_disconnect_aborts_job() {
        let server = PmiServer::start(PmiServerConfig::new("t", 2)).unwrap();
        let addr = server.addr();
        // Rank 0 connects and vanishes without finalize.
        let h = thread::spawn(move || {
            let c = PmiClient::connect(&addr.to_string(), 0, 2, "t").unwrap();
            drop(c);
        });
        h.join().unwrap();
        match server.wait(WAIT) {
            JobOutcome::Aborted(reason) => {
                assert!(reason.contains("disconnected"), "reason: {reason}")
            }
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn size_mismatch_aborts_job() {
        let server = PmiServer::start(PmiServerConfig::new("t", 2)).unwrap();
        let addr = server.addr();
        let err = PmiClient::connect(&addr.to_string(), 0, 3, "t");
        // Either the connect fails outright or the job records an abort.
        if err.is_ok() {
            assert!(matches!(server.wait(WAIT), JobOutcome::Aborted(_)));
        }
    }

    #[test]
    fn manager_side_abort_is_observable() {
        let server = PmiServer::start(PmiServerConfig::new("t", 8)).unwrap();
        server.abort("scheduler killed the job");
        match server.wait(WAIT) {
            JobOutcome::Aborted(r) => assert!(r.contains("scheduler")),
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn wait_times_out_when_no_rank_connects() {
        let server = PmiServer::start(PmiServerConfig::new("t", 1)).unwrap();
        assert_eq!(server.wait(Duration::from_millis(30)), JobOutcome::TimedOut);
    }
}
