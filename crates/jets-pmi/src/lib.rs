//! # jets-pmi — Process Management Interface substrate
//!
//! JETS (Wozniak, Wilde, Katz; ICPP 2011 / J Grid Computing 2013) launches
//! many short MPI jobs by splitting each MPI execution into a set of
//! single-node *proxy* launches, placed by an external scheduler rather than
//! by `mpiexec` itself. The enabling mechanism is the `launcher=manual`
//! bootstrap added to MPICH2's Hydra process manager: `mpiexec` prints the
//! proxy command lines and keeps running its ordinary network services (the
//! PMI key-value space) so that, once *someone else* starts the proxies, the
//! user processes can connect back, exchange business cards, and begin MPI
//! communication.
//!
//! This crate reproduces that substrate:
//!
//! * [`wire`] — a line-oriented PMI-1-style wire protocol
//!   (`cmd=put key=... value=...`).
//! * [`kvs`] — the per-job key-value space with fence (barrier) semantics.
//! * [`server`] — the process-manager side ([`PmiServer`]): one listener per
//!   MPI job, serving `size` rank connections.
//! * [`client`] — the rank side ([`PmiClient`]), used by the `jets-mpi`
//!   library during wire-up, configured from `PMI_*` environment variables
//!   exactly as Hydra proxies configure user processes.
//! * [`manual`] — the manual launcher: turns an MPI job specification into
//!   proxy command descriptors (rank ranges + environment) that a scheduler
//!   such as the JETS dispatcher ships to its pilot-job workers.
//!
//! The protocol is intentionally a faithful miniature of PMI-1: `init`,
//! `put`, `get`, `fence` (KVS barrier), `finalize`, `abort`. Values are
//! percent-escaped so arbitrary strings survive the text framing.

#![warn(missing_docs)]

pub mod client;
pub mod kvs;
pub mod manual;
pub mod server;
pub mod wire;

pub use client::PmiClient;
pub use manual::{ManualLauncher, ProxyCommand, RankLayout};
pub use server::{JobOutcome, PmiServer, PmiServerConfig};
pub use wire::{Message, WireError};

/// Environment variable carrying the rank of a PMI-managed process.
pub const ENV_RANK: &str = "PMI_RANK";
/// Environment variable carrying the world size of the PMI job.
pub const ENV_SIZE: &str = "PMI_SIZE";
/// Environment variable carrying the `host:port` of the PMI server.
pub const ENV_ADDR: &str = "PMI_ADDR";
/// Environment variable carrying the PMI job identifier.
pub const ENV_JOBID: &str = "PMI_JOBID";
