//! The `launcher=manual` bootstrap: turn an MPI job into proxy commands.
//!
//! Under Hydra's default bootstraps, `mpiexec` execs one proxy per node via
//! ssh or a resource manager. Under `launcher=manual` — the MPICH2 feature
//! contributed by the JETS work — `mpiexec` instead *reports* the proxy
//! commands and keeps its PMI service running; any external controller may
//! bring up the proxies. [`ManualLauncher`] is that report: given a rank
//! layout and a PMI server address it yields one [`ProxyCommand`] per node,
//! each carrying the block of ranks the node hosts and the per-rank
//! `PMI_*` environment.

use crate::{ENV_ADDR, ENV_JOBID, ENV_RANK, ENV_SIZE};

/// How an MPI job's ranks map onto nodes: `nodes` nodes with `ppn`
/// consecutive ranks each (Hydra's default block mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankLayout {
    /// Number of nodes (== number of proxies).
    pub nodes: u32,
    /// Processes per node.
    pub ppn: u32,
}

impl RankLayout {
    /// Layout with one rank per node.
    pub fn one_per_node(nodes: u32) -> Self {
        RankLayout { nodes, ppn: 1 }
    }

    /// Total number of ranks in the job.
    pub fn size(&self) -> u32 {
        self.nodes * self.ppn
    }

    /// The ranks hosted by node `node_index` (block mapping).
    pub fn ranks_for_node(&self, node_index: u32) -> std::ops::Range<u32> {
        assert!(node_index < self.nodes, "node index out of range");
        let start = node_index * self.ppn;
        start..start + self.ppn
    }

    /// Which node hosts `rank`.
    pub fn node_of_rank(&self, rank: u32) -> u32 {
        assert!(rank < self.size(), "rank out of range");
        rank / self.ppn
    }
}

/// One proxy launch: everything a pilot-job worker needs to start the ranks
/// assigned to its node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyCommand {
    /// Job identifier (also `PMI_JOBID`).
    pub jobid: String,
    /// Index of the node this proxy runs on, `0..layout.nodes`.
    pub node_index: u32,
    /// The ranks this proxy must start, in ascending order.
    pub ranks: Vec<u32>,
    /// World size of the job (`PMI_SIZE`).
    pub size: u32,
    /// `host:port` of the PMI server (`PMI_ADDR`).
    pub pmi_addr: String,
}

impl ProxyCommand {
    /// The `PMI_*` environment for one of this proxy's ranks.
    ///
    /// # Panics
    /// Panics if `rank` is not hosted by this proxy.
    pub fn env_for_rank(&self, rank: u32) -> Vec<(String, String)> {
        assert!(
            self.ranks.contains(&rank),
            "rank {rank} is not hosted by proxy {}",
            self.node_index
        );
        vec![
            (ENV_RANK.to_string(), rank.to_string()),
            (ENV_SIZE.to_string(), self.size.to_string()),
            (ENV_ADDR.to_string(), self.pmi_addr.clone()),
            (ENV_JOBID.to_string(), self.jobid.clone()),
        ]
    }
}

/// Produces proxy commands for manually-launched MPI jobs.
#[derive(Debug, Default, Clone, Copy)]
pub struct ManualLauncher;

impl ManualLauncher {
    /// Compute the proxy commands for a job: one per node, block rank
    /// mapping, all pointing at the job's PMI server.
    pub fn proxy_commands(
        &self,
        jobid: &str,
        layout: RankLayout,
        pmi_addr: &str,
    ) -> Vec<ProxyCommand> {
        assert!(layout.nodes > 0 && layout.ppn > 0, "empty rank layout");
        (0..layout.nodes)
            .map(|node_index| ProxyCommand {
                jobid: jobid.to_string(),
                node_index,
                ranks: layout.ranks_for_node(node_index).collect(),
                size: layout.size(),
                pmi_addr: pmi_addr.to_string(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_size_and_block_mapping() {
        let l = RankLayout { nodes: 4, ppn: 2 };
        assert_eq!(l.size(), 8);
        assert_eq!(l.ranks_for_node(0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(l.ranks_for_node(3).collect::<Vec<_>>(), vec![6, 7]);
        assert_eq!(l.node_of_rank(0), 0);
        assert_eq!(l.node_of_rank(5), 2);
        assert_eq!(l.node_of_rank(7), 3);
    }

    #[test]
    fn one_per_node_layout() {
        let l = RankLayout::one_per_node(6);
        assert_eq!(l.size(), 6);
        assert_eq!(l.ranks_for_node(5).collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ranks_for_node_bounds_checked() {
        RankLayout { nodes: 2, ppn: 1 }.ranks_for_node(2);
    }

    #[test]
    fn proxy_commands_cover_all_ranks_exactly_once() {
        let cmds =
            ManualLauncher.proxy_commands("j1", RankLayout { nodes: 3, ppn: 4 }, "127.0.0.1:9");
        assert_eq!(cmds.len(), 3);
        let mut all: Vec<u32> = cmds.iter().flat_map(|c| c.ranks.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
        for c in &cmds {
            assert_eq!(c.size, 12);
            assert_eq!(c.pmi_addr, "127.0.0.1:9");
            assert_eq!(c.jobid, "j1");
        }
    }

    #[test]
    fn env_for_rank_is_complete() {
        let cmds = ManualLauncher.proxy_commands("j2", RankLayout { nodes: 2, ppn: 2 }, "h:1");
        let env = cmds[1].env_for_rank(3);
        let get = |k: &str| {
            env.iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.as_str())
                .unwrap()
        };
        assert_eq!(get(crate::ENV_RANK), "3");
        assert_eq!(get(crate::ENV_SIZE), "4");
        assert_eq!(get(crate::ENV_ADDR), "h:1");
        assert_eq!(get(crate::ENV_JOBID), "j2");
    }

    #[test]
    #[should_panic(expected = "not hosted")]
    fn env_for_foreign_rank_panics() {
        let cmds = ManualLauncher.proxy_commands("j", RankLayout { nodes: 2, ppn: 1 }, "h:1");
        cmds[0].env_for_rank(1);
    }
}
