//! The rank side of PMI: what an MPI process uses during wire-up.
//!
//! A Hydra proxy launches each user process with `PMI_RANK`, `PMI_SIZE`,
//! `PMI_ADDR`, and `PMI_JOBID` in its environment; the MPI library then
//! constructs a [`PmiClient`] (see [`PmiClient::from_env`] /
//! [`PmiClient::from_lookup`]), publishes its business card, fences, and
//! fetches its peers' cards.

use crate::wire::Message;
use crate::{ENV_ADDR, ENV_JOBID, ENV_RANK, ENV_SIZE};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// Errors surfaced by PMI client operations.
#[derive(Debug)]
pub enum PmiError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server answered with something other than the expected ack.
    Protocol(String),
    /// The job was aborted.
    Aborted(String),
    /// A required `PMI_*` environment variable is missing or malformed.
    BadEnvironment(String),
}

impl std::fmt::Display for PmiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmiError::Io(e) => write!(f, "pmi i/o error: {e}"),
            PmiError::Protocol(m) => write!(f, "pmi protocol error: {m}"),
            PmiError::Aborted(r) => write!(f, "pmi job aborted: {r}"),
            PmiError::BadEnvironment(v) => write!(f, "bad PMI environment: {v}"),
        }
    }
}

impl std::error::Error for PmiError {}

impl From<io::Error> for PmiError {
    fn from(e: io::Error) -> Self {
        PmiError::Io(e)
    }
}

/// A connected PMI client for one rank of one job.
#[derive(Debug)]
pub struct PmiClient {
    rank: u32,
    size: u32,
    jobid: String,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl PmiClient {
    /// Connect to the PMI server at `addr` and perform `cmd=init`.
    pub fn connect(addr: &str, rank: u32, size: u32, jobid: &str) -> Result<PmiClient, PmiError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let reader = BufReader::new(stream);
        let mut client = PmiClient {
            rank,
            size,
            jobid: jobid.to_string(),
            writer,
            reader,
        };
        client.send(&Message::Init {
            rank,
            size,
            jobid: jobid.to_string(),
        })?;
        match client.recv()? {
            Message::InitAck => Ok(client),
            other => Err(PmiError::Protocol(format!(
                "expected init_ack, got {other:?}"
            ))),
        }
    }

    /// Build a client from the `PMI_*` process environment (real-process
    /// mode, the way Hydra proxies configure user executables).
    pub fn from_env() -> Result<PmiClient, PmiError> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// Build a client from an arbitrary environment lookup. This is what
    /// in-process (thread-rank) tasks use: their "environment" is the task
    /// assignment's env map rather than the process environment.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Result<PmiClient, PmiError> {
        let var =
            |k: &str| lookup(k).ok_or_else(|| PmiError::BadEnvironment(format!("{k} not set")));
        let parse = |k: &str| -> Result<u32, PmiError> {
            var(k)?
                .parse()
                .map_err(|_| PmiError::BadEnvironment(format!("{k} not a number")))
        };
        let rank = parse(ENV_RANK)?;
        let size = parse(ENV_SIZE)?;
        let addr = var(ENV_ADDR)?;
        let jobid = var(ENV_JOBID)?;
        PmiClient::connect(&addr, rank, size, &jobid)
    }

    /// This rank's index in `0..size`.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// World size of the job.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Job identifier.
    pub fn jobid(&self) -> &str {
        &self.jobid
    }

    /// Publish `key=value` into the job KVS.
    pub fn put(&mut self, key: &str, value: &str) -> Result<(), PmiError> {
        self.send(&Message::Put {
            key: key.to_string(),
            value: value.to_string(),
        })?;
        match self.recv()? {
            Message::PutAck => Ok(()),
            other => Err(PmiError::Protocol(format!(
                "expected put_ack, got {other:?}"
            ))),
        }
    }

    /// Fetch a key from the job KVS (`None` if absent).
    pub fn get(&mut self, key: &str) -> Result<Option<String>, PmiError> {
        self.send(&Message::Get {
            key: key.to_string(),
        })?;
        match self.recv()? {
            Message::GetAck { value } => Ok(Some(value)),
            Message::GetFail { .. } => Ok(None),
            other => Err(PmiError::Protocol(format!(
                "expected get_ack, got {other:?}"
            ))),
        }
    }

    /// Enter the collective fence; returns once all ranks have fenced.
    pub fn fence(&mut self) -> Result<(), PmiError> {
        self.send(&Message::Fence)?;
        match self.recv()? {
            Message::FenceAck => Ok(()),
            Message::Abort { reason } => Err(PmiError::Aborted(reason)),
            other => Err(PmiError::Protocol(format!(
                "expected fence_ack, got {other:?}"
            ))),
        }
    }

    /// Orderly exit; after this the connection is spent.
    pub fn finalize(&mut self) -> Result<(), PmiError> {
        self.send(&Message::Finalize)?;
        match self.recv()? {
            Message::FinalizeAck => Ok(()),
            other => Err(PmiError::Protocol(format!(
                "expected finalize_ack, got {other:?}"
            ))),
        }
    }

    /// Abort the whole job from this rank.
    pub fn abort(&mut self, reason: &str) -> Result<(), PmiError> {
        self.send(&Message::Abort {
            reason: reason.to_string(),
        })
    }

    fn send(&mut self, msg: &Message) -> Result<(), PmiError> {
        let mut line = msg.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Message, PmiError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(PmiError::Protocol("server closed connection".to_string()));
        }
        Message::decode(&line).map_err(|e| PmiError::Protocol(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{JobOutcome, PmiServer, PmiServerConfig};
    use std::time::Duration;

    #[test]
    fn from_lookup_reads_all_variables() {
        let server = PmiServer::start(PmiServerConfig::new("envjob", 1)).unwrap();
        let addr = server.addr().to_string();
        let env = [
            (ENV_RANK, "0".to_string()),
            (ENV_SIZE, "1".to_string()),
            (ENV_ADDR, addr),
            (ENV_JOBID, "envjob".to_string()),
        ];
        let mut client =
            PmiClient::from_lookup(|k| env.iter().find(|(n, _)| *n == k).map(|(_, v)| v.clone()))
                .unwrap();
        assert_eq!(client.rank(), 0);
        assert_eq!(client.size(), 1);
        assert_eq!(client.jobid(), "envjob");
        client.finalize().unwrap();
        assert_eq!(server.wait(Duration::from_secs(5)), JobOutcome::Success);
    }

    #[test]
    fn from_lookup_rejects_missing_rank() {
        let err = PmiClient::from_lookup(|_| None).unwrap_err();
        assert!(matches!(err, PmiError::BadEnvironment(_)));
    }

    #[test]
    fn from_lookup_rejects_malformed_size() {
        let err = PmiClient::from_lookup(|k| match k {
            ENV_RANK => Some("0".to_string()),
            ENV_SIZE => Some("many".to_string()),
            _ => Some("x".to_string()),
        })
        .unwrap_err();
        assert!(matches!(err, PmiError::BadEnvironment(_)));
    }
}
