fn signal(flag: &AtomicBool) {
    // jets-lint: allow(relaxed) liveness clock only: readers tolerate one stale tick
    flag.store(true, Ordering::Relaxed);
}

fn watch(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}

fn local_counter(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
