fn signal(flag: &AtomicBool) {
    flag.store(true, Ordering::Relaxed);
}

fn watch(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}
