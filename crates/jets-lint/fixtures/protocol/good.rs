enum DispatcherMsg {
    Assign(u64),
    Cancel { id: u64 },
    Shutdown,
}

fn relayable(m: &DispatcherMsg) -> bool {
    match m {
        DispatcherMsg::Assign(_) | DispatcherMsg::Cancel { .. } => true,
        DispatcherMsg::Shutdown => false,
    }
}

fn pump(rx: &Receiver) {
    match rx.recv() {
        Ok(Some(DispatcherMsg::Assign(a))) => consume(a),
        Ok(Some(DispatcherMsg::Cancel { id })) => cancel(id),
        Ok(Some(DispatcherMsg::Shutdown)) | Ok(None) => {}
        Err(_) => {}
    }
}
