enum WorkerMsg {
    Register,
    Done,
    Heartbeat,
}

fn dispatch(m: WorkerMsg) {
    match m {
        WorkerMsg::Register => {}
        _ => {}
    }
}
