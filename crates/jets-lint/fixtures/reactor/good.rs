fn on_frame(frame: &[u8]) -> Flow {
    outbox.send(frame);
    Flow::Continue
}

fn serve_member(stream: TcpStream) {
    register(stream);
}

fn on_close(reason: CloseReason) {
    // jets-lint: allow(reactor) teardown: the event loop has already released this connection
    thread::spawn(cleanup);
}
