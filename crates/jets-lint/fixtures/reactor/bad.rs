fn on_frame(frame: &[u8]) -> Flow {
    let reply = rx.recv();
    thread::spawn(move || fanout(reply));
    Flow::Continue
}

fn serve_member(stream: TcpStream) {
    thread::spawn(move || pump(stream));
}
