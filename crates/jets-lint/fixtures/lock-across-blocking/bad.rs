fn holds_across_recv(inner: &Inner, rx: &Receiver<u8>) {
    let st = inner.sched.lock();
    let v = rx.recv();
    st.touch(v);
}

fn serve_metrics(inner: &Inner, sock: &mut TcpStream) {
    let st = inner.sched.lock();
    sock.flush();
    st.touch();
}
