fn releases_before_recv(inner: &Inner, rx: &Receiver<u8>) {
    {
        let mut st = inner.sched.lock();
        st.touch();
    }
    let v = rx.recv();
    consume(v);
}

fn temporary_guard_send(writer: &Mutex<MsgWriter>) {
    writer.lock().send(&msg);
}

fn serve_metrics(inner: &Inner, sock: &mut TcpStream) {
    let page = {
        let st = inner.sched.lock();
        st.render()
    };
    sock.write_all(page.as_bytes());
    sock.flush();
}
