fn nap() {
    thread::sleep(Duration::from_millis(1));
}

fn on_frame(state: &mut Conn, frame: &[u8]) -> Flow {
    state.outbox.send(frame);
    Flow::Continue
}

fn service_pump(rx: &Receiver<Job>) {
    nap();
}
