fn nap() {
    thread::sleep(Duration::from_millis(1));
}

fn settle() {
    nap();
}

fn on_frame(state: &mut Conn, frame: &[u8]) -> Flow {
    settle();
    Flow::Continue
}
