enum WorkerMsg {
    Register,
    Zombie,
}

fn emit(out: &mut Vec<WorkerMsg>) {
    out.push(WorkerMsg::Zombie);
    out.push(WorkerMsg::Register);
}

fn dispatch(m: &WorkerMsg) -> u32 {
    match m {
        WorkerMsg::Register => 1,
        WorkerMsg::Zombie => 2,
    }
}
