enum WorkerMsg {
    Register,
    Zombie,
}

fn emit(out: &mut Vec<WorkerMsg>) {
    out.push(WorkerMsg::Zombie);
    out.push(WorkerMsg::Register);
}

fn check(m: &WorkerMsg) -> bool {
    if let WorkerMsg::Register = m {
        return true;
    }
    false
}
