fn forward(inner: &Inner) {
    let st = inner.sched.lock();
    let bk = inner.book.lock();
    bk.note(&st);
}

fn also_forward(inner: &Inner) {
    let st = inner.sched.lock();
    take_book(inner, &st);
}

fn take_book(inner: &Inner, st: &Sched) {
    let bk = inner.book.lock();
    bk.note(st);
}
