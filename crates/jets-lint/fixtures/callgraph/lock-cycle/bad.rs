fn forward(inner: &Inner) {
    let st = inner.sched.lock();
    let bk = inner.book.lock();
    bk.note(&st);
}

fn backward(inner: &Inner) {
    let bk = inner.book.lock();
    touch_sched(inner, &bk);
}

fn touch_sched(inner: &Inner, bk: &Book) {
    let st = inner.sched.lock();
    st.note(bk);
}
