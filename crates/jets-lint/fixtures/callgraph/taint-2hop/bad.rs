fn drain_outbox(stream: &mut TcpStream) {
    stream.flush();
}

fn serve_tick(inner: &Inner, stream: &mut TcpStream) {
    let st = inner.sched.lock();
    drain_outbox(stream);
}
