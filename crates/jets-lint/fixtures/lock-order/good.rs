fn canonical(inner: &Inner) {
    let st = inner.sched.lock();
    let bk = inner.book.lock();
    bk.touch(&st);
}

fn sequential(inner: &Inner) {
    {
        let bk = inner.book.lock();
        bk.touch();
    }
    let st = inner.sched.lock();
    st.touch();
}
