fn inverted(inner: &Inner) {
    let bk = inner.book.lock();
    let st = inner.sched.lock();
    st.touch(&bk);
}
