pub const EXIT_WORKER_LOST: i32 = -127;
pub const EXIT_UNDELIVERABLE: i32 = -128;
pub const EXIT_CANCELED: i32 = -125;
pub const EXIT_DEADLINE: i32 = -126;
