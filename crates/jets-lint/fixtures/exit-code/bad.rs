fn worker_lost_code() -> i32 {
    -127
}

fn undeliverable(rec: &mut Record) {
    rec.exit_codes.push(-128);
}
