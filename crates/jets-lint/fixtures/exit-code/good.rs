const EXIT_RANK_PANIC: i32 = 125;

fn positive_spawn_failure() -> i32 {
    126
}

fn subtraction(x: i32) -> i32 {
    x - 127
}
