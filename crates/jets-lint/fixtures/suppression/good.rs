fn documented_sentinel() -> i32 {
    // jets-lint: allow(exit-code) chaos harness exercises the raw sentinel on purpose
    -128
}
