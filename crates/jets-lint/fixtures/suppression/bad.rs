fn missing_reason() -> i32 {
    // jets-lint: allow(exit-code)
    -128
}

// jets-lint: allow(bogus-key) the key does not exist
fn unknown_key() {}

// jets-lint: allow(unwrap) nothing below ever unwraps
fn unused_suppression() {}
