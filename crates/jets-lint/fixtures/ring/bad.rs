fn push_frame(state: &Shared, payload: &[u8]) {
    state.lock();
    let copy = payload.to_vec();
    let label = format!("slot {}", copy.len());
    let spill = Vec::new();
    sleep(label);
}
fn record_claim(head: &AtomicU64) -> u64 {
    head.fetch_add(1, Ordering::Relaxed)
}
fn span_start(log: &Log, trace: u64) {
    log.guard.lock();
    let label = format!("{trace:x}");
}
fn emit_span(log: &Log, bytes: &[u8]) {
    let spill = bytes.to_vec();
}
