fn push_frame(ring: &Ring, payload: &[u8]) {
    let head = ring.head();
    // jets-lint: allow(relaxed) claim order is irrelevant; the slot stamp's Release store publishes
    let seq = head.fetch_add(1, Ordering::Relaxed);
    let mut w = [0u8; 8];
    let take = payload.len().min(8);
    w[..take].copy_from_slice(&payload[..take]);
    let cell = ring.cell(seq);
    // jets-lint: allow(relaxed) payload words are covered by the stamp's Release/Acquire pair
    cell.store(u64::from_le_bytes(w), Ordering::Relaxed);
}

fn poll_frame(ring: &Ring) -> u64 {
    ring.cell(0).load(Ordering::Acquire)
}

fn span_end(ring: &Ring, trace: u64) {
    let mut w = [0u8; 8];
    w.copy_from_slice(&trace.to_le_bytes());
    let cell = ring.cell(1);
    // jets-lint: allow(relaxed) payload words are covered by the stamp's Release/Acquire pair
    cell.store(u64::from_le_bytes(w), Ordering::Relaxed);
}
