fn parse_flag(s: &str) -> u32 {
    s.parse().unwrap()
}

fn serve_worker(stream: TcpStream) {
    let Ok(msg) = read_frame(&stream) else {
        return;
    };
    let fallback = msg.field.unwrap_or_default();
    consume(fallback);
}

fn recover_claim(book: &mut Book, task: u64) {
    if let Some(job) = book.lookup(task) {
        job.adopt();
    }
}

fn reconcile_requeue(book: &mut Book, job: u64) {
    let Some(rec) = book.remove(&job) else {
        return;
    };
    rec.requeue();
}
