fn parse_flag(s: &str) -> u32 {
    s.parse().unwrap()
}

fn serve_worker(stream: TcpStream) {
    let Ok(msg) = read_frame(&stream) else {
        return;
    };
    let fallback = msg.field.unwrap_or_default();
    consume(fallback);
}
