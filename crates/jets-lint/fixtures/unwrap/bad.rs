fn serve_worker(stream: TcpStream) {
    let msg = read_frame(&stream).unwrap();
    consume(msg);
}

fn handle_done(book: &mut Book, job: u64) {
    let rec = book.remove(&job).expect("present");
    rec.close();
}

fn scrape_loop(addr: &str) {
    let text = scrape(addr, "/metrics").unwrap();
    render(&text);
}

fn recover_claim(book: &mut Book, task: u64) {
    let job = book.lookup(task).unwrap();
    job.adopt();
}

fn reconcile_requeue(book: &mut Book, job: u64) {
    let rec = book.remove(&job).expect("present");
    rec.requeue();
}
