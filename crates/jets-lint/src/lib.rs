//! jets-lint: workspace-wide invariant checker for the JETS runtime.
//!
//! The dispatcher and relay are built around a handful of concurrency
//! invariants that ordinary type checking cannot see: the canonical
//! `sched` → `book` lock order, the rule that no lock is held across
//! blocking socket I/O, the `AcqRel` doorbell discipline around
//! `Ordering::Relaxed` atomics, exhaustive handling of every protocol
//! envelope, and the negative exit-code registry. This crate turns
//! those prose invariants (see `docs/static-analysis.md`) into a
//! machine-checked pass that runs as a hard CI gate.
//!
//! The analysis is token-based (see [`lexer`]) rather than `syn`-based
//! so it works with zero dependencies in offline environments. Each
//! rule is deliberately narrow: it targets the exact shape of the
//! invariant in this codebase, preferring a missed exotic case over a
//! false positive that trains people to sprinkle suppressions.
//!
//! Rules:
//!
//! | id | key                  | invariant                                         |
//! |----|----------------------|---------------------------------------------------|
//! | J0 | (meta)               | suppression comments must be well-formed + reasoned|
//! | J1 | `lock-order`         | `sched` before `book`, never reversed or re-entered|
//! | J2 | `lock-across-blocking` | no let-bound lock guard live across blocking ops |
//! | J3 | `relaxed`            | Relaxed store/swap on a cross-thread flag needs a reason |
//! | J4 | `protocol`           | WorkerMsg/DispatcherMsg matches name every variant |
//! | J5 | `exit-code`          | negative sentinel exit codes only in `spec.rs`    |
//! | J6 | `unwrap`             | no unwrap/expect in connection-handler paths      |
//! | J7 | `reactor`            | no thread spawns in per-connection serve paths; no blocking calls in reactor callbacks |
//! | J8 | `ring`               | flight-recorder writer path stays lock-free and allocation-free |
//!
//! Suppression syntax (the reason is mandatory):
//!
//! ```text
//! // jets-lint: allow(lock-across-blocking) handshake runs before the writer thread exists
//! ```
//!
//! A suppression covers findings with the matching key on its own line
//! and the next three lines, so it can sit above a multi-line statement.

pub mod lexer;

use lexer::{lex, Lexed, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers, used in diagnostics (`J4`) and JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Malformed suppression comment.
    J0,
    /// Lock-order violation (`book` held while acquiring `sched`, or
    /// re-acquiring a held lock).
    J1,
    /// Lock guard live across a blocking operation.
    J2,
    /// `Ordering::Relaxed` store/swap on a cross-thread flag without an
    /// `allow(relaxed)` marker.
    J3,
    /// Non-exhaustive protocol match.
    J4,
    /// Magic negative exit-code literal outside `spec.rs`.
    J5,
    /// `unwrap`/`expect` in a connection-handler function.
    J6,
    /// Reactor discipline: thread spawn in a per-connection serve path
    /// of a reactor-converted crate, or a blocking call inside a
    /// reactor callback (`on_open`/`on_frame`/`on_close`).
    J7,
    /// Ring writer discipline: lock acquisition, blocking call, or
    /// heap allocation inside a flight-recorder writer-path function
    /// (`push*`/`record*`/`encode*` in ring-scoped files).
    J8,
}

impl Rule {
    /// The suppression key for this rule (what goes inside `allow(..)`).
    pub fn key(self) -> &'static str {
        match self {
            Rule::J0 => "suppression",
            Rule::J1 => "lock-order",
            Rule::J2 => "lock-across-blocking",
            Rule::J3 => "relaxed",
            Rule::J4 => "protocol",
            Rule::J5 => "exit-code",
            Rule::J6 => "unwrap",
            Rule::J7 => "reactor",
            Rule::J8 => "ring",
        }
    }

    /// Short id (`J1`…) for human output.
    pub fn id(self) -> &'static str {
        match self {
            Rule::J0 => "J0",
            Rule::J1 => "J1",
            Rule::J2 => "J2",
            Rule::J3 => "J3",
            Rule::J4 => "J4",
            Rule::J5 => "J5",
            Rule::J6 => "J6",
            Rule::J7 => "J7",
            Rule::J8 => "J8",
        }
    }
}

/// Suppression keys accepted inside `allow(..)`. `suppression` (J0)
/// itself is intentionally absent: hygiene findings cannot be waived.
const ALLOW_KEYS: &[&str] = &[
    "lock-order",
    "lock-across-blocking",
    "relaxed",
    "protocol",
    "exit-code",
    "unwrap",
    "reactor",
    "ring",
];

/// How many lines below a suppression comment it still covers, so the
/// comment can sit above a multi-line statement.
const SUPPRESSION_REACH: u32 = 3;

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.path.display(),
            self.line,
            self.rule.id(),
            self.rule.key(),
            self.message
        )
    }
}

impl Finding {
    /// Serialize as a JSON object (hand-rolled; no serde available).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"key\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            self.rule.id(),
            self.rule.key(),
            json_escape(&self.path.display().to_string()),
            self.line,
            json_escape(&self.message)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed, well-formed suppression.
#[derive(Debug, Clone)]
struct Suppression {
    line: u32,
    key: String,
    used: bool,
}

/// A function body within the token stream.
#[derive(Debug)]
struct Func {
    name: String,
    /// Token index range of the body, *inside* the braces.
    body: std::ops::Range<usize>,
    in_test: bool,
}

/// One source file prepared for analysis.
struct SourceFile {
    path: PathBuf,
    lexed: Lexed,
    /// Whole file is test-ish scope (tests/, benches/, examples/ dirs).
    file_is_test: bool,
    funcs: Vec<Func>,
}

/// Variant sets of the protocol enums found in the analysis set,
/// keyed by enum name (`WorkerMsg`, `DispatcherMsg`).
type EnumDefs = BTreeMap<String, BTreeSet<String>>;

/// Lint in-memory sources: `(path, contents)` pairs. This is the core
/// entry point; [`lint_paths`] reads files and delegates here. Enum
/// definitions for rule J4 and cross-function load sites for rule J3
/// are resolved across the whole set, so fixtures can carry their own
/// mini enum definitions.
pub fn lint_sources(sources: &[(PathBuf, String)]) -> Vec<Finding> {
    let mut files: Vec<SourceFile> = Vec::with_capacity(sources.len());
    for (path, src) in sources {
        files.push(prepare(path.clone(), src));
    }

    let enums = collect_protocol_enums(&files);
    // J3 needs to know which atomic field names are loaded in *some
    // other* function than the store site; collect (field -> functions
    // that load it) across the whole set.
    let load_sites = collect_atomic_loads(&files);

    let mut findings = Vec::new();
    let mut suppressions: Vec<(usize, Vec<Suppression>)> = Vec::new();

    for (fi, file) in files.iter().enumerate() {
        let (mut sup, mut j0) = parse_suppressions(file);
        findings.append(&mut j0);
        rule_lock_order(file, &mut findings);
        rule_lock_across_blocking(file, &mut findings);
        rule_relaxed_atomics(file, &load_sites, &mut findings);
        rule_protocol_exhaustive(file, &enums, &mut findings);
        rule_exit_code(file, &mut findings);
        rule_unwrap_in_handler(file, &mut findings);
        rule_reactor_discipline(file, &mut findings);
        rule_ring_writer(file, &mut findings);
        sup.sort_by_key(|s| s.line);
        suppressions.push((fi, sup));
    }

    // Apply suppressions per file.
    let mut kept = Vec::new();
    'finding: for f in findings {
        if f.rule != Rule::J0 {
            for (fi, sups) in suppressions.iter_mut() {
                if files[*fi].path != f.path {
                    continue;
                }
                for s in sups.iter_mut() {
                    if s.key == f.rule.key()
                        && f.line >= s.line
                        && f.line <= s.line + SUPPRESSION_REACH
                    {
                        s.used = true;
                        continue 'finding;
                    }
                }
            }
        }
        kept.push(f);
    }

    // Unused suppressions are hygiene findings too: they document an
    // invariant exemption that no longer exists.
    for (fi, sups) in &suppressions {
        for s in sups {
            if !s.used {
                kept.push(Finding {
                    rule: Rule::J0,
                    path: files[*fi].path.clone(),
                    line: s.line,
                    message: format!(
                        "unused suppression `allow({})`: no matching finding within {} lines",
                        s.key, SUPPRESSION_REACH
                    ),
                });
            }
        }
    }

    kept.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    kept
}

/// Read and lint files from disk. Unreadable files are skipped (the
/// walker only hands us paths it just saw).
pub fn lint_paths(paths: &[PathBuf]) -> Vec<Finding> {
    let mut sources = Vec::with_capacity(paths.len());
    for p in paths {
        if let Ok(src) = std::fs::read_to_string(p) {
            sources.push((p.clone(), src));
        }
    }
    lint_sources(&sources)
}

/// Collect the `.rs` files of a workspace rooted at `root`, excluding
/// build output, fixtures (known-bad code), and vendored tooling stubs.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target"
                    || name == ".git"
                    || name == "fixtures"
                    || name == "tools"
                    || name == "node_modules"
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

// ---------------------------------------------------------------------------
// Preparation: lexing, test-scope masking, function splitting.
// ---------------------------------------------------------------------------

fn prepare(path: PathBuf, src: &str) -> SourceFile {
    let lexed = lex(src);
    let file_is_test = {
        let s = path.to_string_lossy().replace('\\', "/");
        s.contains("/tests/") || s.contains("/benches/") || s.contains("/examples/")
    };
    let test_mask = compute_test_mask(&lexed.toks);
    let funcs = split_functions(&lexed.toks, &test_mask);
    SourceFile {
        path,
        lexed,
        file_is_test,
        funcs,
    }
}

/// Mark tokens inside `#[cfg(test)]`-gated items and `#[test]` fns.
fn compute_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            // Scan the attribute tokens.
            let attr_start = i + 2;
            let mut j = attr_start;
            let mut depth = 1;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                }
                j += 1;
            }
            let attr = &toks[attr_start..j.saturating_sub(1)];
            let is_test_attr = attr.first().map(|t| t.is_ident("test")).unwrap_or(false)
                || (attr.first().map(|t| t.is_ident("cfg")).unwrap_or(false)
                    && attr.iter().any(|t| t.is_ident("test")));
            if is_test_attr {
                // Mark through the attached item: scan forward past any
                // further attributes to the item's braced body (or `;`).
                let mut k = j;
                // Skip stacked attributes.
                while k + 1 < toks.len() && toks[k].is_punct("#") && toks[k + 1].is_punct("[") {
                    let mut d = 0;
                    k += 1;
                    while k < toks.len() {
                        if toks[k].is_punct("[") {
                            d += 1;
                        } else if toks[k].is_punct("]") {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        k += 1;
                    }
                }
                // Find the first `{` at depth 0 relative to here, or `;`.
                let mut d = 0i32;
                let mut end = k;
                while end < toks.len() {
                    let t = &toks[end];
                    if t.is_punct("{") {
                        d += 1;
                    } else if t.is_punct("}") {
                        d -= 1;
                        if d == 0 {
                            end += 1;
                            break;
                        }
                    } else if t.is_punct(";") && d == 0 {
                        end += 1;
                        break;
                    }
                    end += 1;
                }
                for m in mask.iter_mut().take(end.min(toks.len())).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

/// Split the token stream into named functions with body ranges.
fn split_functions(toks: &[Tok], test_mask: &[bool]) -> Vec<Func> {
    let mut funcs = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let in_test = test_mask.get(i).copied().unwrap_or(false);
            // Find the opening `{` of the body, skipping generics,
            // params, return types, and where clauses. `;` first means
            // a trait method declaration with no body.
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut paren = 0i32;
            let mut body_start = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("<") {
                    angle += 1;
                } else if t.is_punct(">") {
                    angle -= 1;
                } else if t.is_punct("(") {
                    paren += 1;
                } else if t.is_punct(")") {
                    paren -= 1;
                } else if t.is_punct(";") && paren == 0 {
                    break;
                } else if t.is_punct("{") && paren == 0 && angle <= 0 {
                    body_start = Some(j + 1);
                    break;
                }
                j += 1;
            }
            if let Some(start) = body_start {
                let mut depth = 1i32;
                let mut k = start;
                while k < toks.len() && depth > 0 {
                    if toks[k].is_punct("{") {
                        depth += 1;
                    } else if toks[k].is_punct("}") {
                        depth -= 1;
                    }
                    k += 1;
                }
                let body = start..k.saturating_sub(1);
                funcs.push(Func {
                    name,
                    body: body.clone(),
                    in_test,
                });
                // Continue *inside* the body so nested fns are found too.
                i = start;
                continue;
            }
        }
        i += 1;
    }
    funcs
}

// ---------------------------------------------------------------------------
// J0: suppression hygiene.
// ---------------------------------------------------------------------------

fn parse_suppressions(file: &SourceFile) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut findings = Vec::new();
    for raw in &file.lexed.suppressions {
        let text = raw.text.trim();
        let bad = |msg: String| Finding {
            rule: Rule::J0,
            path: file.path.clone(),
            line: raw.line,
            message: msg,
        };
        let Some(rest) = text.strip_prefix("allow(") else {
            findings.push(bad(format!(
                "malformed jets-lint comment `{text}`: expected `allow(<key>) <reason>`"
            )));
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(bad(format!(
                "malformed jets-lint comment `{text}`: missing `)`"
            )));
            continue;
        };
        let key = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim();
        if !ALLOW_KEYS.contains(&key.as_str()) {
            findings.push(bad(format!(
                "unknown suppression key `{key}` (expected one of: {})",
                ALLOW_KEYS.join(", ")
            )));
            continue;
        }
        if reason.is_empty() {
            findings.push(bad(format!(
                "suppression `allow({key})` is missing its mandatory reason"
            )));
            continue;
        }
        sups.push(Suppression {
            line: raw.line,
            key,
            used: false,
        });
    }
    (sups, findings)
}

// ---------------------------------------------------------------------------
// Shared guard tracking for J1/J2.
// ---------------------------------------------------------------------------

/// The locks with a canonical order. Lower rank is acquired first.
fn lock_rank(field: &str) -> Option<u8> {
    match field {
        "sched" => Some(0),
        "book" => Some(1),
        _ => None,
    }
}

#[derive(Debug, Clone)]
struct Guard {
    name: String,
    /// The field the lock was taken on (`sched`, `book`, `writer`, …).
    field: String,
    /// Brace depth the binding was created at; the guard dies when the
    /// enclosing block closes.
    depth: i32,
    line: u32,
}

/// Scan a function body, calling `on_lock` at every `.lock()` call with
/// (receiver-field, live guards, is-let-binding, token index) and
/// `on_tok` for every token with the live-guard list. Maintains the
/// guard list: let-bound guards live until `drop(name)`, shadowing, or
/// scope exit; temporary `x.lock().y` guards are not tracked as live
/// past the statement (they die at the end of the expression).
fn scan_guards<FL, FT>(file: &SourceFile, func: &Func, mut on_lock: FL, mut on_tok: FT)
where
    FL: FnMut(&str, &[Guard], bool, usize),
    FT: FnMut(&Tok, usize, &[Guard]),
{
    let toks = &file.lexed.toks;
    let body = func.body.clone();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
        }

        // drop(name) kills a guard.
        if t.is_ident("drop")
            && i + 2 < body.end
            && toks[i + 1].is_punct("(")
            && toks[i + 2].kind == TokKind::Ident
        {
            let victim = &toks[i + 2].text;
            guards.retain(|g| &g.name != victim);
        }

        // `.lock()` / `.lock().` — find the receiver field: the ident
        // immediately before the `.`.
        if t.is_punct(".")
            && i + 3 < body.end
            && toks[i + 1].is_ident("lock")
            && toks[i + 2].is_punct("(")
            && toks[i + 3].is_punct(")")
        {
            let field = if i > body.start && toks[i - 1].kind == TokKind::Ident {
                toks[i - 1].text.clone()
            } else {
                String::new()
            };
            // Is this a let binding? Walk back to the statement start.
            let binding = find_let_binding(toks, body.start, i);
            on_lock(&field, &guards, binding.is_some(), i);
            if let Some((name, _let_idx)) = binding {
                // Shadowing: a rebound name kills the old guard.
                guards.retain(|g| g.name != name);
                guards.push(Guard {
                    name,
                    field,
                    depth,
                    line: t.line,
                });
            }
            i += 4;
            // If this was a temporary (no let), the guard lives only to
            // the end of the statement; we simply don't track it.
            continue;
        }

        on_tok(t, i, &guards);
        i += 1;
    }
}

/// If the `.lock()` at token `dot` is the RHS of `let [mut] NAME = …`,
/// return (NAME, index of `let`). Walks back to the nearest `;`, `{`,
/// or `}` and checks the statement starts with `let`.
fn find_let_binding(toks: &[Tok], lo: usize, dot: usize) -> Option<(String, usize)> {
    let mut j = dot;
    while j > lo {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            j += 1;
            break;
        }
        // A `=` between here and the dot is fine; keep walking.
    }
    if !toks.get(j)?.is_ident("let") {
        return None;
    }
    let mut k = j + 1;
    if toks.get(k)?.is_ident("mut") {
        k += 1;
    }
    let name_tok = toks.get(k)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Require `= … .lock()` to follow (not `let (a, b) = …` patterns).
    let eq = toks.get(k + 1)?;
    if !(eq.is_punct("=") || eq.is_punct(":")) {
        return None;
    }
    Some((name_tok.text.clone(), j))
}

// ---------------------------------------------------------------------------
// J1: lock order.
// ---------------------------------------------------------------------------

fn rule_lock_order(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.file_is_test {
        return;
    }
    for func in &file.funcs {
        if func.in_test {
            continue;
        }
        let toks = &file.lexed.toks;
        scan_guards(
            file,
            func,
            |field, guards, _is_let, idx| {
                let Some(rank) = lock_rank(field) else {
                    return;
                };
                for g in guards {
                    let Some(held) = lock_rank(&g.field) else {
                        continue;
                    };
                    let line = toks[idx].line;
                    if held == rank {
                        findings.push(Finding {
                            rule: Rule::J1,
                            path: file.path.clone(),
                            line,
                            message: format!(
                                "`{field}` re-acquired while guard `{}` (line {}) already holds it: self-deadlock",
                                g.name, g.line
                            ),
                        });
                    } else if held > rank {
                        findings.push(Finding {
                            rule: Rule::J1,
                            path: file.path.clone(),
                            line,
                            message: format!(
                                "lock-order inversion: `{field}` acquired while `{}` guard `{}` (line {}) is live; canonical order is sched → book",
                                g.field, g.name, g.line
                            ),
                        });
                    }
                }
            },
            |_t, _i, _guards| {},
        );
    }
}

// ---------------------------------------------------------------------------
// J2: no lock across blocking.
// ---------------------------------------------------------------------------

/// Method names (called as `.name(`) that block on I/O or time.
const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "accept",
    "connect",
];

/// Free functions / paths that block (`thread::sleep`, frame I/O).
const BLOCKING_CALLS: &[&str] = &[
    "sleep",
    "read_msg",
    "read_msg_buf",
    "write_msg",
    "write_msg_buf",
];

/// If the token at `i` begins a blocking operation, describe it.
/// Shapes: `.recv()`-style method calls from [`BLOCKING_METHODS`],
/// `.send(` on a socket-writer receiver (channel sends are
/// non-blocking for the unbounded channels used here), and free or
/// method calls of the [`BLOCKING_CALLS`] frame helpers. Shared by J2
/// (blocking under a lock guard) and J7 (blocking in a reactor
/// callback).
fn blocking_op_at(toks: &[Tok], i: usize) -> Option<String> {
    let t = toks.get(i)?;
    if t.is_punct(".")
        && toks
            .get(i + 1)
            .map(|n| n.kind == TokKind::Ident)
            .unwrap_or(false)
    {
        let name = &toks[i + 1].text;
        let called = is_called(toks, i + 1);
        if called && BLOCKING_METHODS.contains(&name.as_str()) {
            return Some(format!(".{name}()"));
        }
        if called && name == "send" {
            let recv = if i > 0 && toks[i - 1].kind == TokKind::Ident {
                toks[i - 1].text.as_str()
            } else {
                ""
            };
            if recv.contains("writer") || recv.contains("sock") || recv.contains("stream") {
                return Some(format!("{recv}.send()"));
            }
        }
        return None;
    }
    // Exclude method position: `x.read_msg()` still counts, but
    // `guard.recv()` is handled above; here we accept both free and
    // method calls of the frame helpers.
    if t.kind == TokKind::Ident && BLOCKING_CALLS.contains(&t.text.as_str()) && is_called(toks, i) {
        return Some(format!("{}()", t.text));
    }
    None
}

fn rule_lock_across_blocking(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.file_is_test {
        return;
    }
    for func in &file.funcs {
        if func.in_test {
            continue;
        }
        let toks = &file.lexed.toks;
        scan_guards(
            file,
            func,
            |_field, _guards, _is_let, _idx| {},
            |t, i, guards| {
                if guards.is_empty() {
                    return;
                }
                if let Some(op) = blocking_op_at(toks, i) {
                    for g in guards {
                        // Condvar waits release the lock; they are
                        // filtered by not being in the blocking sets.
                        findings.push(Finding {
                            rule: Rule::J2,
                            path: file.path.clone(),
                            line: t.line,
                            message: format!(
                                "blocking call {op} while lock guard `{}` (on `{}`, line {}) is live",
                                g.name, g.field, g.line
                            ),
                        });
                    }
                }
            },
        );
    }
}

/// Token at `i` (an ident) is immediately invoked: `name(` or
/// `name::<T>(`.
fn is_called(toks: &[Tok], i: usize) -> bool {
    match toks.get(i + 1) {
        Some(t) if t.is_punct("(") => true,
        Some(t) if t.is_punct("::") => {
            // turbofish: name::<T>(
            let mut j = i + 2;
            if toks.get(j).map(|t| t.is_punct("<")).unwrap_or(false) {
                let mut depth = 1;
                j += 1;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct("<") {
                        depth += 1;
                    } else if toks[j].is_punct(">") {
                        depth -= 1;
                    }
                    j += 1;
                }
                toks.get(j).map(|t| t.is_punct("(")).unwrap_or(false)
            } else {
                false
            }
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// J3: Relaxed atomics policy.
// ---------------------------------------------------------------------------

/// Map from atomic field name to the set of functions that `.load(` it.
fn collect_atomic_loads(files: &[SourceFile]) -> BTreeMap<String, BTreeSet<String>> {
    let mut loads: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for file in files {
        for func in &file.funcs {
            let toks = &file.lexed.toks;
            let mut i = func.body.start;
            while i + 2 < func.body.end {
                if toks[i].is_punct(".")
                    && toks[i + 1].is_ident("load")
                    && toks[i + 2].is_punct("(")
                    && i > 0
                    && toks[i - 1].kind == TokKind::Ident
                {
                    loads
                        .entry(toks[i - 1].text.clone())
                        .or_default()
                        .insert(func.name.clone());
                }
                i += 1;
            }
        }
    }
    loads
}

fn rule_relaxed_atomics(
    file: &SourceFile,
    load_sites: &BTreeMap<String, BTreeSet<String>>,
    findings: &mut Vec<Finding>,
) {
    if file.file_is_test {
        return;
    }
    // Ring-scoped files get the strict form: *every* `Relaxed` mutation
    // (including `fetch_add`/`fetch_sub` claim cursors) needs a reason,
    // because every slot and cursor atomic there is cross-thread by
    // construction — the cross-function load heuristic below would
    // under-approximate on mmap'd words read by other *processes*.
    let in_ring = ring_scoped_path(&file.path);
    for func in &file.funcs {
        if func.in_test {
            continue;
        }
        let toks = &file.lexed.toks;
        let mut i = func.body.start;
        while i + 2 < func.body.end {
            // Shape: `.store(` or `.swap(` with receiver ident, whose
            // argument list mentions `Relaxed`.
            if toks[i].is_punct(".")
                && (toks[i + 1].is_ident("store")
                    || toks[i + 1].is_ident("swap")
                    || (in_ring
                        && (toks[i + 1].is_ident("fetch_add")
                            || toks[i + 1].is_ident("fetch_sub"))))
                && toks[i + 2].is_punct("(")
                && i > 0
                && toks[i - 1].kind == TokKind::Ident
            {
                let field = toks[i - 1].text.clone();
                let op = toks[i + 1].text.clone();
                // Scan the argument list for `Relaxed`.
                let mut j = i + 3;
                let mut depth = 1;
                let mut relaxed = false;
                while j < func.body.end && depth > 0 {
                    if toks[j].is_punct("(") {
                        depth += 1;
                    } else if toks[j].is_punct(")") {
                        depth -= 1;
                    } else if toks[j].is_ident("Relaxed") {
                        relaxed = true;
                    }
                    j += 1;
                }
                if relaxed {
                    // Cross-thread shape: the same field is loaded in a
                    // different function somewhere in the analysis set.
                    // In ring scope that is assumed, not inferred.
                    let cross = in_ring
                        || load_sites
                            .get(&field)
                            .map(|fns| fns.iter().any(|f| f != &func.name))
                            .unwrap_or(false);
                    if cross {
                        findings.push(Finding {
                            rule: Rule::J3,
                            path: file.path.clone(),
                            line: toks[i].line,
                            message: format!(
                                "`{field}.{op}(.., Ordering::Relaxed)` on a flag read elsewhere (cross-thread signal shape); annotate with `// jets-lint: allow(relaxed) <reason>` or upgrade the ordering"
                            ),
                        });
                    }
                }
                i = j;
                continue;
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// J4: protocol exhaustiveness.
// ---------------------------------------------------------------------------

/// Enum names whose matches must be exhaustive without wildcards.
const PROTOCOL_ENUMS: &[&str] = &["WorkerMsg", "DispatcherMsg"];

/// Collect variant sets for the protocol enums from `enum Name { … }`
/// definitions anywhere in the analysis set.
fn collect_protocol_enums(files: &[SourceFile]) -> EnumDefs {
    let mut defs = EnumDefs::new();
    for file in files {
        let toks = &file.lexed.toks;
        let mut i = 0;
        while i + 2 < toks.len() {
            if toks[i].is_ident("enum")
                && toks[i + 1].kind == TokKind::Ident
                && PROTOCOL_ENUMS.contains(&toks[i + 1].text.as_str())
            {
                let name = toks[i + 1].text.clone();
                // Find the `{`, then variants are idents at depth 1
                // that either start the body or follow a `,` at depth 1.
                let mut j = i + 2;
                while j < toks.len() && !toks[j].is_punct("{") {
                    j += 1;
                }
                let mut depth = 0i32;
                let mut variants = BTreeSet::new();
                let mut expect_variant = true;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct("{") {
                        depth += 1;
                        if depth > 1 {
                            // struct-variant payload; skip it wholesale
                        }
                    } else if t.is_punct("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if depth == 1 {
                        if t.is_punct(",") {
                            expect_variant = true;
                        } else if t.is_punct("#") {
                            // attribute on a variant; skip the [ ... ]
                            let mut d = 0;
                            j += 1;
                            while j < toks.len() {
                                if toks[j].is_punct("[") {
                                    d += 1;
                                } else if toks[j].is_punct("]") {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                j += 1;
                            }
                        } else if expect_variant && t.kind == TokKind::Ident {
                            variants.insert(t.text.clone());
                            expect_variant = false;
                        }
                    } else if depth > 1 || t.is_punct("(") {
                        // payload tokens: irrelevant. Parens don't
                        // change `depth` (brace depth) so tuple-variant
                        // payload idents could slip in at depth 1 —
                        // guard by flipping expect_variant off above.
                    }
                    j += 1;
                }
                defs.entry(name).or_default().extend(variants);
                i = j;
                continue;
            }
            i += 1;
        }
    }
    defs
}

fn rule_protocol_exhaustive(file: &SourceFile, enums: &EnumDefs, findings: &mut Vec<Finding>) {
    if file.file_is_test {
        return;
    }
    let toks = &file.lexed.toks;
    for func in &file.funcs {
        if func.in_test {
            continue;
        }
        let mut i = func.body.start;
        while i < func.body.end {
            if toks[i].is_ident("match") {
                if let Some(m) = parse_match(toks, i, func.body.end) {
                    check_match(file, enums, &m, findings);
                    // Continue scanning *inside* the match for nested
                    // matches; just advance past the keyword.
                }
            }
            i += 1;
        }
    }
}

/// A parsed match expression: arm pattern token ranges.
struct MatchExpr {
    line: u32,
    /// Pattern token ranges (pattern is everything before `=>` in the arm).
    arms: Vec<std::ops::Range<usize>>,
}

/// Parse the match starting at `match_idx` (`match` keyword). Returns
/// None for malformed input.
fn parse_match(toks: &[Tok], match_idx: usize, limit: usize) -> Option<MatchExpr> {
    // Scrutinee: tokens until the `{` at depth 0 (tracking parens and
    // braces of struct literals is the hard part; in this codebase
    // scrutinees are simple expressions, so track (), [], and stop at
    // the first `{` outside them).
    let mut i = match_idx + 1;
    let mut paren = 0i32;
    while i < limit {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") {
            paren += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            paren -= 1;
        } else if t.is_punct("{") && paren == 0 {
            break;
        }
        i += 1;
    }
    if i >= limit {
        return None;
    }
    let body_start = i + 1;
    // Split arms: pattern = tokens up to `=>` at depth 0; then the arm
    // value runs to `,` at depth 0 or a `{ … }` block.
    let mut arms = Vec::new();
    let mut j = body_start;
    let mut depth = 0i32; // braces/parens/brackets within the match body
    let mut pat_start = j;
    let mut in_pattern = true;
    while j < limit {
        let t = &toks[j];
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            if t.is_punct("{") && depth == 0 && !in_pattern {
                // Block-bodied arm: skip the block, then next arm.
                let mut d = 1;
                j += 1;
                while j < limit && d > 0 {
                    if toks[j].is_punct("{") {
                        d += 1;
                    } else if toks[j].is_punct("}") {
                        d -= 1;
                    }
                    j += 1;
                }
                // Optional trailing comma.
                if j < limit && toks[j].is_punct(",") {
                    j += 1;
                }
                in_pattern = true;
                pat_start = j;
                continue;
            }
            depth += 1;
        } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
            if t.is_punct("}") && depth == 0 {
                // End of the match body.
                break;
            }
            depth -= 1;
        } else if t.is_punct("=>") && depth == 0 && in_pattern {
            arms.push(pat_start..j);
            in_pattern = false;
        } else if t.is_punct(",") && depth == 0 && !in_pattern {
            in_pattern = true;
            pat_start = j + 1;
        }
        j += 1;
    }
    Some(MatchExpr {
        line: toks[match_idx].line,
        arms,
    })
}

/// Check one match expression against the protocol enums. The match is
/// in scope iff at least one arm pattern mentions `WorkerMsg::` or
/// `DispatcherMsg::`.
fn check_match(file: &SourceFile, enums: &EnumDefs, m: &MatchExpr, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.toks;
    let mut touched: BTreeSet<&str> = BTreeSet::new();
    for arm in &m.arms {
        let mut i = arm.start;
        while i + 1 < arm.end {
            if toks[i].kind == TokKind::Ident
                && PROTOCOL_ENUMS.contains(&toks[i].text.as_str())
                && toks[i + 1].is_punct("::")
            {
                touched.insert(if toks[i].text == "WorkerMsg" {
                    "WorkerMsg"
                } else {
                    "DispatcherMsg"
                });
            }
            i += 1;
        }
    }
    if touched.is_empty() {
        return;
    }

    // Collect named variants per enum and look for wildcard arms in
    // enum position.
    let mut named: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for arm in &m.arms {
        // Wildcard in enum position: an arm whose pattern, after
        // stripping wrappers (Ok / Some / Err / parens / references),
        // is `_` or a bare binding ident with no `::` path. A `_`
        // *inside* a variant payload (`Assign(_)`, `Cancel { .. }`) or
        // inside `Err(..)` is fine.
        if wildcard_in_enum_position(toks, arm.clone()) {
            findings.push(Finding {
                rule: Rule::J4,
                path: file.path.clone(),
                line: toks.get(arm.start).map(|t| t.line).unwrap_or(m.line),
                message: format!(
                    "wildcard arm in a {} match: name every variant so new envelopes force a decision",
                    touched.iter().cloned().collect::<Vec<_>>().join("/")
                ),
            });
        }
        let mut i = arm.start;
        while i + 2 < arm.end {
            if toks[i].kind == TokKind::Ident
                && PROTOCOL_ENUMS.contains(&toks[i].text.as_str())
                && toks[i + 1].is_punct("::")
                && toks[i + 2].kind == TokKind::Ident
            {
                let e = if toks[i].text == "WorkerMsg" {
                    "WorkerMsg"
                } else {
                    "DispatcherMsg"
                };
                named.entry(e).or_default().insert(toks[i + 2].text.clone());
            }
            i += 1;
        }
    }

    for e in &touched {
        let Some(def) = enums.get(*e) else {
            continue; // enum not defined in the analysis set
        };
        let have = named.remove(*e).unwrap_or_default();
        let missing: Vec<&String> = def.difference(&have).collect();
        if !missing.is_empty() {
            findings.push(Finding {
                rule: Rule::J4,
                path: file.path.clone(),
                line: m.line,
                message: format!(
                    "{e} match does not name variant(s): {}",
                    missing
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }
}

/// Does this arm pattern contain a `_` (or bare catch-all binding) in
/// *enum position* — i.e. standing in for a whole protocol-enum value
/// rather than a variant payload?
///
/// Heuristic: strip leading wrappers `Ok(` / `Some(` / `&` / `(`
/// (recursively). If what remains starts with `_` or is a single bare
/// ident (no `::`, not a known variant path), that's a catch-all. Also
/// treat `Ok(Some(_))` as enum position. `Err(_)`, `None`, and `_`
/// inside a `Variant(..)` payload are not.
fn wildcard_in_enum_position(toks: &[Tok], arm: std::ops::Range<usize>) -> bool {
    // Patterns may be or-patterns: split on `|` at depth 0.
    let mut segments: Vec<std::ops::Range<usize>> = Vec::new();
    let mut depth = 0i32;
    let mut start = arm.start;
    for i in arm.clone() {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct("|") && depth == 0 {
            segments.push(start..i);
            start = i + 1;
        }
    }
    segments.push(start..arm.end);

    for seg in segments {
        let mut i = seg.start;
        // Strip guards: stop the segment at `if` (match guards).
        let mut end = seg.end;
        for k in seg.clone() {
            if toks[k].is_ident("if") {
                end = k;
                break;
            }
        }
        // Strip wrappers.
        while let Some(t) = toks.get(i).filter(|_| i < end) {
            if t.is_punct("&") || t.is_punct("(") {
                i += 1;
            } else if (t.is_ident("Ok") || t.is_ident("Some"))
                && toks.get(i + 1).map(|n| n.is_punct("(")).unwrap_or(false)
            {
                i += 2;
            } else {
                break;
            }
        }
        let Some(t) = toks.get(i).filter(|_| i < end) else {
            continue;
        };
        if t.is_ident("_") {
            return true;
        }
        // Bare binding ident acting as catch-all: single ident, no `::`
        // after it, not a unit-ish known name (None / Err wrappers are
        // different enums — allowed).
        if t.kind == TokKind::Ident
            && !t.is_ident("None")
            && !t.is_ident("Err")
            && !t.is_ident("Ok")
            && !t.is_ident("Some")
        {
            let next = toks.get(i + 1).filter(|_| i + 1 < end);
            let is_path = next.map(|n| n.is_punct("::")).unwrap_or(false);
            let is_struct = next
                .map(|n| n.is_punct("(") || n.is_punct("{") || n.is_punct("@"))
                .unwrap_or(false);
            if !is_path && !is_struct && next.is_none() {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// J5: exit-code registry.
// ---------------------------------------------------------------------------

/// Sentinel exit codes owned by `spec.rs`. 127 is also claimed by the
/// worker's *positive* spawn-failure convention, so only the negative
/// (dispatcher-synthesized) forms are restricted.
const SENTINEL_CODES: &[&str] = &["125", "126", "127", "128"];

fn rule_exit_code(file: &SourceFile, findings: &mut Vec<Finding>) {
    let fname = file
        .path
        .file_name()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_default();
    if fname == "spec.rs" {
        return; // the registry itself
    }
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Int {
            continue;
        }
        let digits = t
            .text
            .split(|c: char| c.is_alphabetic())
            .next()
            .unwrap_or("");
        let digits = digits.trim_end_matches('_');
        if !SENTINEL_CODES.contains(&digits) {
            continue;
        }
        // Must be a *negative* literal: preceded by unary `-`.
        if i == 0 || !toks[i - 1].is_punct("-") {
            continue;
        }
        // Unary position: the token before the `-` must not be a value
        // (ident/number/closing bracket), otherwise it's subtraction.
        if i >= 2 {
            let prev = &toks[i - 2];
            let is_value = matches!(prev.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
                || prev.is_punct(")")
                || prev.is_punct("]");
            // `=> -125`, `(-125`, `== -125`, `, -125` are unary; but
            // keyword idents (`return`) are not values.
            let keyword_ok = matches!(
                prev.text.as_str(),
                "return" | "=>" | "=" | "," | "(" | "[" | "==" | "!=" | "<" | ">" | "<=" | ">="
            );
            if is_value && !keyword_ok {
                continue;
            }
        }
        findings.push(Finding {
            rule: Rule::J5,
            path: file.path.clone(),
            line: t.line,
            message: format!(
                "magic exit-code literal -{digits}: use the named constant from jets-core `spec.rs` (EXIT_*)"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// J6: unwrap/expect in connection handlers.
// ---------------------------------------------------------------------------

/// Function-name predicate for handler scope: these run against
/// peer-controlled input or per-connection resources, where a panic
/// tears down state shared with healthy peers.
fn is_handler_fn(name: &str) -> bool {
    name.starts_with("serve_")
        || name.starts_with("handle_")
        || name.starts_with("accept_")
        || name.starts_with("recover_")
        || name.starts_with("reconcile_")
        || name.ends_with("_loop")
        || name.ends_with("_pump")
        || name.contains("session")
}

fn rule_unwrap_in_handler(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.file_is_test {
        return;
    }
    let toks = &file.lexed.toks;
    for func in &file.funcs {
        if func.in_test || !is_handler_fn(&func.name) {
            continue;
        }
        let mut i = func.body.start;
        while i + 1 < func.body.end {
            if toks[i].is_punct(".")
                && (toks[i + 1].is_ident("unwrap") || toks[i + 1].is_ident("expect"))
                && toks.get(i + 2).map(|t| t.is_punct("(")).unwrap_or(false)
            {
                findings.push(Finding {
                    rule: Rule::J6,
                    path: file.path.clone(),
                    line: toks[i + 1].line,
                    message: format!(
                        "`.{}()` in connection handler `{}`: a peer-triggered panic here tears down shared state; handle the error or suppress with a reason",
                        toks[i + 1].text, func.name
                    ),
                });
                i += 3;
                continue;
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// J7: reactor discipline.
// ---------------------------------------------------------------------------

/// Reactor callback names. These run inline on an event-loop thread:
/// one blocking call stalls every connection multiplexed on that loop.
const REACTOR_CALLBACKS: &[&str] = &["on_open", "on_frame", "on_close"];

/// Path predicate for the reactor-converted fan-in crates: their
/// per-connection serve/accept paths must not spawn threads, because
/// connection concurrency belongs to the reactor. The blocking client
/// crates (worker agent, jets-pmi, jets-mpi) keep their thread-per-
/// connection accept loops by design and are exempt by path.
fn reactor_scoped_path(path: &Path) -> bool {
    let s = path.to_string_lossy().replace('\\', "/");
    s.split('/').any(|comp| {
        comp.contains("jets-core")
            || comp.contains("jets-relay")
            || comp.contains("jets-reactor")
            || comp == "reactor"
    })
}

fn rule_reactor_discipline(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.file_is_test {
        return;
    }
    let toks = &file.lexed.toks;
    for func in &file.funcs {
        if func.in_test {
            continue;
        }
        let is_callback = REACTOR_CALLBACKS.contains(&func.name.as_str());
        let is_serve_path = (func.name.starts_with("serve_") || func.name.starts_with("accept_"))
            && reactor_scoped_path(&file.path);
        if !is_callback && !is_serve_path {
            continue;
        }
        let mut i = func.body.start;
        while i < func.body.end {
            let t = &toks[i];
            // `thread::spawn` / `thread::Builder`: banned in both scopes.
            if t.is_ident("thread")
                && toks.get(i + 1).map(|n| n.is_punct("::")).unwrap_or(false)
                && toks
                    .get(i + 2)
                    .map(|n| n.is_ident("spawn") || n.is_ident("Builder"))
                    .unwrap_or(false)
            {
                let what = &toks[i + 2].text;
                let message = if is_callback {
                    format!(
                        "`thread::{what}` inside reactor callback `{}`: callbacks run on the event loop; queue work instead of spawning",
                        func.name
                    )
                } else {
                    format!(
                        "`thread::{what}` inside per-connection path `{}`: connection concurrency belongs to the reactor, not ad-hoc threads",
                        func.name
                    )
                };
                findings.push(Finding {
                    rule: Rule::J7,
                    path: file.path.clone(),
                    line: t.line,
                    message,
                });
                i += 3;
                continue;
            }
            // Blocking calls: banned in callbacks only (serve paths on
            // the blocking side may legitimately block, they just may
            // not spawn).
            if is_callback {
                if let Some(op) = blocking_op_at(toks, i) {
                    findings.push(Finding {
                        rule: Rule::J7,
                        path: file.path.clone(),
                        line: t.line,
                        message: format!(
                            "blocking call {op} inside reactor callback `{}`: the event loop must never block; queue on the outbox or defer to a service thread",
                            func.name
                        ),
                    });
                }
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// J8: ring writer discipline.
// ---------------------------------------------------------------------------

/// Path predicate for the flight recorder's writer path: the
/// `jets-ring` crate itself, plus the `EventLog` facade in jets-core's
/// `events.rs` (whose `record`/`encode_event` feed the ring).
fn ring_scoped_path(path: &Path) -> bool {
    let s = path.to_string_lossy().replace('\\', "/");
    s.split('/')
        .any(|comp| comp.contains("jets-ring") || comp == "ring")
        || (s.ends_with("events.rs") && s.contains("jets-core"))
}

/// Writer-path functions inside ring scope: what runs between a
/// producer deciding to record and the slot's publishing store.
fn is_ring_writer_fn(name: &str) -> bool {
    name.starts_with("push") || name.starts_with("record") || name.starts_with("encode")
}

/// Macros that allocate (`name!`-shape).
const RING_ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Methods that allocate (`.name(`-shape).
const RING_ALLOC_METHODS: &[&str] = &["to_string", "to_vec", "to_owned", "collect"];

/// Heap-owning types whose associated constructors (`Name::`-shape)
/// have no business in a record path that encodes into stack buffers.
const RING_ALLOC_TYPES: &[&str] = &["Vec", "String", "Box"];

/// The acceptance invariant of the flight recorder, machine-checked:
/// `EventLog::record` and everything under it takes no lock, blocks on
/// nothing, and allocates nothing — a producer records an event for the
/// cost of a claim `fetch_add` plus sixteen word stores, always.
fn rule_ring_writer(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.file_is_test || !ring_scoped_path(&file.path) {
        return;
    }
    let toks = &file.lexed.toks;
    for func in &file.funcs {
        if func.in_test || !is_ring_writer_fn(&func.name) {
            continue;
        }
        let mut i = func.body.start;
        while i < func.body.end {
            let t = &toks[i];
            // Lock acquisition: the writer path may never contend.
            if t.is_punct(".")
                && toks.get(i + 1).map(|n| n.is_ident("lock")).unwrap_or(false)
                && toks.get(i + 2).map(|n| n.is_punct("(")).unwrap_or(false)
            {
                findings.push(Finding {
                    rule: Rule::J8,
                    path: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "`.lock()` in ring writer path `{}`: the flight-recorder record path must stay lock-free; annotate with `// jets-lint: allow(ring) <reason>` only if this is provably off the hot path",
                        func.name
                    ),
                });
                i += 3;
                continue;
            }
            // Blocking I/O or sleeps: shared detector with J2/J7.
            if let Some(op) = blocking_op_at(toks, i) {
                findings.push(Finding {
                    rule: Rule::J8,
                    path: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "blocking call {op} in ring writer path `{}`: producers record events at task-dispatch rate and must never wait",
                        func.name
                    ),
                });
                i += 1;
                continue;
            }
            // Heap allocation: `format!`/`vec!`, allocating method
            // calls, and `Vec::`/`String::`/`Box::` constructors.
            let alloc: Option<String> = if t.kind == TokKind::Ident
                && RING_ALLOC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).map(|n| n.is_punct("!")).unwrap_or(false)
            {
                Some(format!("{}!", t.text))
            } else if t.is_punct(".")
                && toks
                    .get(i + 1)
                    .map(|n| {
                        n.kind == TokKind::Ident
                            && RING_ALLOC_METHODS.contains(&n.text.as_str())
                            && is_called(toks, i + 1)
                    })
                    .unwrap_or(false)
            {
                Some(format!(".{}()", toks[i + 1].text))
            } else if t.kind == TokKind::Ident
                && RING_ALLOC_TYPES.contains(&t.text.as_str())
                && toks.get(i + 1).map(|n| n.is_punct("::")).unwrap_or(false)
            {
                Some(format!("{}::", t.text))
            } else {
                None
            };
            if let Some(what) = alloc {
                findings.push(Finding {
                    rule: Rule::J8,
                    path: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "allocation (`{what}`) in ring writer path `{}`: records are encoded into fixed stack buffers, never the heap",
                        func.name
                    ),
                });
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(src: &str) -> Vec<Finding> {
        lint_sources(&[(PathBuf::from("crates/x/src/lib.rs"), src.to_string())])
    }

    #[test]
    fn clean_code_has_no_findings() {
        let src = r#"
            fn canonical(inner: &Inner) {
                let mut st = inner.sched.lock();
                let mut bk = inner.book.lock();
                bk.note(&mut st);
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn inverted_lock_order_fires_j1() {
        let src = r#"
            fn inverted(inner: &Inner) {
                let bk = inner.book.lock();
                let st = inner.sched.lock();
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::J1);
    }

    #[test]
    fn guard_scope_exit_clears_locks() {
        let src = r#"
            fn scoped(inner: &Inner) {
                {
                    let bk = inner.book.lock();
                }
                let st = inner.sched.lock();
            }
        "#;
        assert!(lint_one(src).is_empty());
    }

    #[test]
    fn drop_clears_guard() {
        let src = r#"
            fn dropped(inner: &Inner) {
                let bk = inner.book.lock();
                drop(bk);
                let st = inner.sched.lock();
            }
        "#;
        assert!(lint_one(src).is_empty());
    }

    #[test]
    fn blocking_under_guard_fires_j2() {
        let src = r#"
            fn bad(inner: &Inner, rx: &Receiver<u8>) {
                let st = inner.sched.lock();
                let x = rx.recv();
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::J2);
    }

    #[test]
    fn temporary_guard_send_is_fine() {
        // The agent's writer.lock().send(..) idiom: the guard is a
        // temporary, dead by the end of the statement.
        let src = r#"
            fn ok(writer: &Mutex<MsgWriter>) {
                writer.lock().send(&msg);
            }
        "#;
        assert!(lint_one(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn helper(inner: &Inner) {
                    let bk = inner.book.lock();
                    let st = inner.sched.lock();
                    let v = rx.recv().unwrap();
                }
            }
        "#;
        assert!(lint_one(src).is_empty());
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = r#"
            fn bad(inner: &Inner, rx: &Receiver<u8>) {
                let st = inner.sched.lock();
                // jets-lint: allow(lock-across-blocking) bounded by test harness
                let x = rx.recv();
            }
        "#;
        assert!(lint_one(src).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_j0_and_does_not_silence() {
        let src = r#"
            fn bad(inner: &Inner, rx: &Receiver<u8>) {
                let st = inner.sched.lock();
                // jets-lint: allow(lock-across-blocking)
                let x = rx.recv();
            }
        "#;
        let f = lint_one(src);
        assert!(f.iter().any(|f| f.rule == Rule::J0));
        assert!(f.iter().any(|f| f.rule == Rule::J2));
    }

    #[test]
    fn unused_suppression_is_j0() {
        let src = r#"
            // jets-lint: allow(exit-code) nothing here actually needs this
            fn fine() {}
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::J0);
        assert!(f[0].message.contains("unused"));
    }

    #[test]
    fn relaxed_signal_fires_j3() {
        let src = r#"
            fn writer_side(flag: &AtomicBool) {
                flag.store(true, Ordering::Relaxed);
            }
            fn reader_side(flag: &AtomicBool) -> bool {
                flag.load(Ordering::Acquire)
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::J3);
    }

    #[test]
    fn relaxed_counter_without_cross_fn_load_is_fine() {
        let src = r#"
            fn bump(c: &AtomicU64) {
                c.fetch_add(1, Ordering::Relaxed);
                local.store(7, Ordering::Relaxed);
            }
        "#;
        assert!(lint_one(src).is_empty());
    }

    #[test]
    fn wildcard_protocol_match_fires_j4() {
        let src = r#"
            enum WorkerMsg { Register, Done }
            fn dispatch(m: WorkerMsg) {
                match m {
                    WorkerMsg::Register => {}
                    _ => {}
                }
            }
        "#;
        let f = lint_one(src);
        assert!(f.iter().any(|f| f.rule == Rule::J4), "{f:?}");
    }

    #[test]
    fn payload_wildcard_is_allowed() {
        let src = r#"
            enum DispatcherMsg { Assign(u8), Cancel { id: u64 } }
            fn relayable(m: &DispatcherMsg) -> bool {
                match m {
                    DispatcherMsg::Assign(_) | DispatcherMsg::Cancel { .. } => true,
                }
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn missing_variant_fires_j4() {
        let src = r#"
            enum WorkerMsg { Register, Done, Heartbeat }
            fn dispatch(m: WorkerMsg) {
                match m {
                    WorkerMsg::Register => {}
                    WorkerMsg::Done => {}
                }
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::J4);
        assert!(f[0].message.contains("Heartbeat"));
    }

    #[test]
    fn ok_some_wrapper_wildcard_fires_j4() {
        let src = r#"
            enum DispatcherMsg { Assign(u8), Cancel }
            fn pump(rx: &Receiver) {
                match rx.recv() {
                    Ok(Some(DispatcherMsg::Assign(a))) => {}
                    Ok(Some(_)) | Err(_) => {}
                    Ok(None) => {}
                }
            }
        "#;
        let f = lint_one(src);
        assert!(f.iter().any(|f| f.rule == Rule::J4), "{f:?}");
    }

    #[test]
    fn err_wildcard_alone_is_fine() {
        let src = r#"
            enum DispatcherMsg { Assign(u8), Cancel }
            fn pump(rx: &Receiver) {
                match rx.recv() {
                    Ok(Some(DispatcherMsg::Assign(a))) => {}
                    Ok(Some(DispatcherMsg::Cancel)) => {}
                    Ok(None) => {}
                    Err(_) => {}
                }
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn negative_exit_literal_fires_j5() {
        let src = r#"
            fn synth() -> i32 { -125 }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::J5);
    }

    #[test]
    fn positive_and_subtraction_literals_are_fine() {
        let src = r#"
            const EXIT_RANK_PANIC: i32 = 125;
            fn sub(x: i32) -> i32 { x - 126 }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn spec_rs_is_exempt_from_j5() {
        let f = lint_sources(&[(
            PathBuf::from("crates/jets-core/src/spec.rs"),
            "pub const EXIT_CANCELED: i32 = -125;".to_string(),
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_in_handler_fires_j6() {
        let src = r#"
            fn serve_worker(stream: TcpStream) {
                let msg = read_msg(&mut stream).unwrap();
            }
        "#;
        let f = lint_one(src);
        assert!(f.iter().any(|f| f.rule == Rule::J6), "{f:?}");
    }

    #[test]
    fn unwrap_outside_handler_scope_is_fine() {
        let src = r#"
            fn parse_config(s: &str) -> Config {
                s.parse().unwrap()
            }
        "#;
        assert!(lint_one(src).is_empty());
    }

    #[test]
    fn spawn_in_reactor_scoped_serve_fires_j7() {
        let src = r#"
            fn serve_member(stream: TcpStream) {
                thread::spawn(move || pump(stream));
            }
        "#;
        let f = lint_sources(&[(
            PathBuf::from("crates/jets-relay/src/daemon.rs"),
            src.to_string(),
        )]);
        assert!(f.iter().any(|f| f.rule == Rule::J7), "{f:?}");
    }

    #[test]
    fn spawn_in_blocking_client_serve_is_fine() {
        // jets-pmi keeps its thread-per-connection accept loop by design.
        let src = r#"
            fn serve_rank(stream: TcpStream) {
                thread::spawn(move || pump(stream));
            }
        "#;
        let f = lint_sources(&[(
            PathBuf::from("crates/jets-pmi/src/server.rs"),
            src.to_string(),
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn blocking_call_in_reactor_callback_fires_j7() {
        // Callbacks are scanned regardless of path: any on_frame runs on
        // an event loop, and recv() there stalls every connection on it.
        let src = r#"
            fn on_frame(&mut self, frame: &[u8]) -> Flow {
                let reply = self.rx.recv();
                Flow::Continue
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::J7);
    }

    #[test]
    fn spawn_in_reactor_callback_fires_j7() {
        let src = r#"
            fn on_open(&mut self, outbox: &Arc<Outbox>) {
                thread::Builder::new().spawn(|| {}).ok();
            }
        "#;
        let f = lint_one(src);
        assert!(f.iter().any(|f| f.rule == Rule::J7), "{f:?}");
    }

    #[test]
    fn outbox_send_in_callback_is_fine() {
        // Outbox::send never blocks (bounded buffer, drop-on-overflow),
        // so the non-blocking send idiom must stay clean.
        let src = r#"
            fn on_frame(&mut self, frame: &[u8]) -> Flow {
                self.outbox.send(frame);
                Flow::Continue
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn j7_suppression_with_reason_silences() {
        let src = r#"
            fn on_close(&mut self, reason: CloseReason) {
                // jets-lint: allow(reactor) teardown path; loop is already dead
                thread::spawn(move || cleanup());
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }
}
