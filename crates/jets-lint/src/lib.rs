//! jets-lint: workspace-wide invariant checker for the JETS runtime.
//!
//! The dispatcher and relay are built around a handful of concurrency
//! invariants that ordinary type checking cannot see: the canonical
//! `sched` → `book` lock order, the rule that no lock is held across
//! blocking socket I/O, the `AcqRel` doorbell discipline around
//! `Ordering::Relaxed` atomics, exhaustive handling of every protocol
//! envelope, and the negative exit-code registry. This crate turns
//! those prose invariants (see `docs/static-analysis.md`) into a
//! machine-checked pass that runs as a hard CI gate.
//!
//! The analysis is token-based (see [`lexer`]) rather than `syn`-based
//! so it works with zero dependencies in offline environments, and runs
//! in two passes: pass 1 ([`index`]) summarizes every function in the
//! workspace in parallel (calls made, locks acquired, blocking ops
//! performed); pass 2 ([`callgraph`]) stitches the summaries into a
//! name-based call graph and derives blocking taint, transitive lock
//! sets, and the lock-order graph. Rules J1–J8 keep their per-file
//! forms; J2 and J7 additionally fire *through* the graph on calls to
//! blocking-tainted helpers (with the witness chain in the
//! diagnostic), and J9/J10 are graph-native. Each rule is deliberately
//! narrow: it targets the exact shape of the invariant in this
//! codebase, preferring a missed exotic case over a false positive
//! that trains people to sprinkle suppressions.
//!
//! Rules:
//!
//! | id  | key                  | invariant                                         |
//! |-----|----------------------|---------------------------------------------------|
//! | J0  | (meta)               | suppression comments must be well-formed + reasoned|
//! | J1  | `lock-order`         | `sched` before `book`, never reversed or re-entered|
//! | J2  | `lock-across-blocking` | no let-bound lock guard live across blocking ops (direct or via a tainted callee) |
//! | J3  | `relaxed`            | Relaxed store/swap on a cross-thread flag needs a reason |
//! | J4  | `protocol`           | WorkerMsg/DispatcherMsg matches name every variant |
//! | J5  | `exit-code`          | negative sentinel exit codes only in `spec.rs`    |
//! | J6  | `unwrap`             | no unwrap/expect in connection-handler paths      |
//! | J7  | `reactor`            | no thread spawns in per-connection serve paths; no blocking calls (direct or transitive) in reactor callbacks |
//! | J8  | `ring`               | flight-recorder writer path stays lock-free and allocation-free |
//! | J9  | `lock-cycle`         | the workspace lock-acquisition graph is acyclic   |
//! | J10 | `protocol-parity`    | every protocol variant constructed is matched somewhere |
//!
//! Suppression syntax (the reason is mandatory):
//!
//! ```text
//! // jets-lint: allow(lock-across-blocking) handshake runs before the writer thread exists
//! ```
//!
//! A suppression covers findings with the matching key on its own line
//! and the next three lines, so it can sit above a multi-line statement.

pub mod callgraph;
pub mod index;
pub mod lexer;

use callgraph::CallGraph;
use index::{FileIndex, MatchExpr, PROTOCOL_ENUMS};
use lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Rule identifiers, used in diagnostics (`J4`) and JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Malformed suppression comment.
    J0,
    /// Lock-order violation (`book` held while acquiring `sched`, or
    /// re-acquiring a held lock).
    J1,
    /// Lock guard live across a blocking operation — performed directly
    /// or by a transitively-blocking callee (graph form).
    J2,
    /// `Ordering::Relaxed` store/swap on a cross-thread flag without an
    /// `allow(relaxed)` marker.
    J3,
    /// Non-exhaustive protocol match.
    J4,
    /// Magic negative exit-code literal outside `spec.rs`.
    J5,
    /// `unwrap`/`expect` in a connection-handler function.
    J6,
    /// Reactor discipline: thread spawn in a per-connection serve path
    /// of a reactor-converted crate, or a blocking call — direct or via
    /// a tainted callee — inside a reactor callback
    /// (`on_open`/`on_frame`/`on_close`).
    J7,
    /// Ring writer discipline: lock acquisition, blocking call, or
    /// heap allocation inside a flight-recorder writer-path function
    /// (`push*`/`record*`/`encode*` in ring-scoped files).
    J8,
    /// Cycle in the workspace lock-acquisition graph (interprocedural;
    /// includes transitive re-entry of a held lock through a callee).
    J9,
    /// Protocol parity: a `WorkerMsg`/`DispatcherMsg` variant is
    /// constructed somewhere but matched nowhere.
    J10,
}

impl Rule {
    /// The suppression key for this rule (what goes inside `allow(..)`).
    pub fn key(self) -> &'static str {
        match self {
            Rule::J0 => "suppression",
            Rule::J1 => "lock-order",
            Rule::J2 => "lock-across-blocking",
            Rule::J3 => "relaxed",
            Rule::J4 => "protocol",
            Rule::J5 => "exit-code",
            Rule::J6 => "unwrap",
            Rule::J7 => "reactor",
            Rule::J8 => "ring",
            Rule::J9 => "lock-cycle",
            Rule::J10 => "protocol-parity",
        }
    }

    /// Short id (`J1`…) for human output.
    pub fn id(self) -> &'static str {
        match self {
            Rule::J0 => "J0",
            Rule::J1 => "J1",
            Rule::J2 => "J2",
            Rule::J3 => "J3",
            Rule::J4 => "J4",
            Rule::J5 => "J5",
            Rule::J6 => "J6",
            Rule::J7 => "J7",
            Rule::J8 => "J8",
            Rule::J9 => "J9",
            Rule::J10 => "J10",
        }
    }
}

/// Suppression keys accepted inside `allow(..)`. `suppression` (J0)
/// itself is intentionally absent: hygiene findings cannot be waived.
const ALLOW_KEYS: &[&str] = &[
    "lock-order",
    "lock-across-blocking",
    "relaxed",
    "protocol",
    "exit-code",
    "unwrap",
    "reactor",
    "ring",
    "lock-cycle",
    "protocol-parity",
];

pub use index::SUPPRESSION_REACH;

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Last line of the flagged construct (== `line` for single-line
    /// findings); `[line, end_line]` is the JSON span.
    pub end_line: u32,
    /// Interprocedural witness chain (function names ending in the
    /// blocking op, or the lock-field ring for J9). Empty for
    /// single-function findings.
    pub chain: Vec<String>,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    fn new(rule: Rule, path: &Path, line: u32, message: String) -> Finding {
        Finding {
            rule,
            path: path.to_path_buf(),
            line,
            end_line: line,
            chain: Vec::new(),
            message,
        }
    }

    fn with_chain(mut self, chain: Vec<String>) -> Finding {
        self.chain = chain;
        self
    }

    /// Serialize as a JSON object (hand-rolled; no serde available).
    pub fn to_json(&self) -> String {
        let chain = self
            .chain
            .iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"rule\":\"{}\",\"key\":\"{}\",\"path\":\"{}\",\"line\":{},\"span\":[{},{}],\"chain\":[{}],\"message\":\"{}\"}}",
            self.rule.id(),
            self.rule.key(),
            json_escape(&self.path.display().to_string()),
            self.line,
            self.line,
            self.end_line,
            chain,
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.path.display(),
            self.line,
            self.rule.id(),
            self.rule.key(),
            self.message
        )?;
        if !self.chain.is_empty() {
            write!(f, " [chain: {}]", self.chain.join(" -> "))?;
        }
        Ok(())
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed, well-formed suppression.
#[derive(Debug, Clone)]
struct Suppression {
    line: u32,
    key: String,
    used: bool,
}

/// Variant sets of the protocol enums found in the analysis set,
/// keyed by enum name (`WorkerMsg`, `DispatcherMsg`).
type EnumDefs = BTreeMap<String, BTreeSet<String>>;

/// Timing and size counters for one lint run, printed under
/// `--verbose`.
#[derive(Debug, Clone)]
pub struct LintStats {
    /// Files indexed.
    pub files: usize,
    /// Functions indexed (pass-1 nodes before test filtering).
    pub funcs: usize,
    /// Worker threads used for pass-1 indexing.
    pub threads: usize,
    /// Edges in the derived lock-order graph.
    pub lock_edges: usize,
    /// Pass 1: parallel per-file indexing.
    pub pass1: Duration,
    /// Pass 2: graph construction + rules + suppression application.
    pub pass2: Duration,
}

/// Default pass-1 pool width: one worker per available core, capped —
/// file indexing saturates memory bandwidth well before 8 threads.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Lint in-memory sources: `(path, contents)` pairs. This is the core
/// entry point; [`lint_paths`] reads files and delegates here. Enum
/// definitions for rules J4/J10 and cross-function load sites for rule
/// J3 are resolved across the whole set, so fixtures can carry their
/// own mini enum definitions.
pub fn lint_sources(sources: &[(PathBuf, String)]) -> Vec<Finding> {
    lint_sources_with_stats(sources, default_threads()).0
}

/// [`lint_sources`] plus per-pass timing, with an explicit pass-1
/// thread count.
pub fn lint_sources_with_stats(
    sources: &[(PathBuf, String)],
    threads: usize,
) -> (Vec<Finding>, LintStats) {
    let t0 = Instant::now();
    let files = index::index_sources(sources, threads);
    let pass1 = t0.elapsed();

    let t1 = Instant::now();
    let graph = CallGraph::build(&files);

    let mut enums = EnumDefs::new();
    for file in &files {
        for (name, variants) in &file.enum_defs {
            enums
                .entry(name.clone())
                .or_default()
                .extend(variants.iter().cloned());
        }
    }
    // J3 needs to know which atomic field names are loaded in *some
    // other* function than the store site; collect (field -> functions
    // that load it) across the whole set.
    let mut load_sites: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for file in &files {
        for (field, func) in &file.atomic_loads {
            load_sites
                .entry(field.clone())
                .or_default()
                .insert(func.clone());
        }
    }

    let mut findings = Vec::new();
    let mut suppressions: Vec<(usize, Vec<Suppression>)> = Vec::new();

    for (fi, file) in files.iter().enumerate() {
        let (mut sup, mut j0) = parse_suppressions(file);
        findings.append(&mut j0);
        rule_lock_order(file, &mut findings);
        rule_lock_across_blocking(file, &graph, &mut findings);
        rule_relaxed_atomics(file, &load_sites, &mut findings);
        rule_protocol_exhaustive(file, &enums, &mut findings);
        rule_exit_code(file, &mut findings);
        rule_unwrap_in_handler(file, &mut findings);
        rule_reactor_discipline(file, &graph, &mut findings);
        rule_ring_writer(file, &mut findings);
        sup.sort_by_key(|s| s.line);
        suppressions.push((fi, sup));
    }
    rule_lock_cycles(&graph, &mut findings);
    rule_protocol_parity(&files, &enums, &mut findings);

    // Apply suppressions per file.
    let mut kept = Vec::new();
    'finding: for f in findings {
        if f.rule != Rule::J0 {
            for (fi, sups) in suppressions.iter_mut() {
                if files[*fi].path != f.path {
                    continue;
                }
                for s in sups.iter_mut() {
                    if s.key == f.rule.key()
                        && f.line >= s.line
                        && f.line <= s.line + SUPPRESSION_REACH
                    {
                        s.used = true;
                        continue 'finding;
                    }
                }
            }
        }
        kept.push(f);
    }

    // Unused suppressions are hygiene findings too: they document an
    // invariant exemption that no longer exists.
    for (fi, sups) in &suppressions {
        for s in sups {
            if !s.used {
                kept.push(Finding::new(
                    Rule::J0,
                    &files[*fi].path,
                    s.line,
                    format!(
                        "unused suppression `allow({})`: no matching finding within {} lines",
                        s.key, SUPPRESSION_REACH
                    ),
                ));
            }
        }
    }

    kept.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let stats = LintStats {
        files: files.len(),
        funcs: files.iter().map(|f| f.funcs.len()).sum(),
        threads: threads.max(1),
        lock_edges: graph.lock_edges.len(),
        pass1,
        pass2: t1.elapsed(),
    };
    (kept, stats)
}

/// Read and lint files from disk. Unreadable files are skipped (the
/// walker only hands us paths it just saw).
pub fn lint_paths(paths: &[PathBuf]) -> Vec<Finding> {
    lint_paths_with_stats(paths, default_threads()).0
}

/// [`lint_paths`] plus per-pass timing.
pub fn lint_paths_with_stats(paths: &[PathBuf], threads: usize) -> (Vec<Finding>, LintStats) {
    let mut sources = Vec::with_capacity(paths.len());
    for p in paths {
        if let Ok(src) = std::fs::read_to_string(p) {
            sources.push((p.clone(), src));
        }
    }
    lint_sources_with_stats(&sources, threads)
}

/// Collect the `.rs` files of a workspace rooted at `root`, excluding
/// build output, fixtures (known-bad code), and vendored tooling stubs.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target"
                    || name == ".git"
                    || name == "fixtures"
                    || name == "tools"
                    || name == "node_modules"
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

// ---------------------------------------------------------------------------
// J0: suppression hygiene (+ the --fix-suppressions helpers).
// ---------------------------------------------------------------------------

fn parse_suppressions(file: &FileIndex) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut findings = Vec::new();
    for raw in &file.lexed.suppressions {
        let text = raw.text.trim();
        let bad = |msg: String| Finding::new(Rule::J0, &file.path, raw.line, msg);
        let Some(rest) = text.strip_prefix("allow(") else {
            findings.push(bad(format!(
                "malformed jets-lint comment `{text}`: expected `allow(<key>) <reason>`"
            )));
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(bad(format!(
                "malformed jets-lint comment `{text}`: missing `)`"
            )));
            continue;
        };
        let key = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim();
        if !ALLOW_KEYS.contains(&key.as_str()) {
            findings.push(bad(format!(
                "unknown suppression key `{key}` (expected one of: {})",
                ALLOW_KEYS.join(", ")
            )));
            continue;
        }
        if reason.is_empty() {
            findings.push(bad(format!(
                "suppression `allow({key})` is missing its mandatory reason"
            )));
            continue;
        }
        sups.push(Suppression {
            line: raw.line,
            key,
            used: false,
        });
    }
    (sups, findings)
}

/// Is this finding an *unused suppression* J0 — the kind
/// `--fix-suppressions` can delete mechanically? (Malformed
/// suppressions are not auto-deleted: they usually mean a typo'd key
/// or a missing reason the author should fix, not dead weight.)
pub fn is_unused_suppression(f: &Finding) -> bool {
    f.rule == Rule::J0 && f.message.starts_with("unused suppression")
}

/// Remove the `// jets-lint:` comments on the given 1-based lines of
/// `src`. A line that holds only the comment is deleted outright; a
/// trailing comment after code is stripped back to the code. Returns
/// the rewritten source.
pub fn strip_suppression_lines(src: &str, lines: &BTreeSet<u32>) -> String {
    let mut out = String::with_capacity(src.len());
    for (i, line) in src.lines().enumerate() {
        let lineno = (i + 1) as u32;
        if lines.contains(&lineno) {
            if let Some(pos) = line.find("// jets-lint:") {
                let prefix = &line[..pos];
                if prefix.trim().is_empty() {
                    continue; // comment-only line: delete it
                }
                out.push_str(prefix.trim_end());
                out.push('\n');
                continue;
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    // Preserve the absence of a trailing newline.
    if !src.ends_with('\n') && out.ends_with('\n') {
        out.pop();
    }
    out
}

// ---------------------------------------------------------------------------
// Shared helpers for J1/J2.
// ---------------------------------------------------------------------------

/// The locks with a canonical order. Lower rank is acquired first.
fn lock_rank(field: &str) -> Option<u8> {
    match field {
        "sched" => Some(0),
        "book" => Some(1),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// J1: lock order (intra-function; the graph form is J9).
// ---------------------------------------------------------------------------

fn rule_lock_order(file: &FileIndex, findings: &mut Vec<Finding>) {
    if file.file_is_test {
        return;
    }
    for func in &file.funcs {
        if func.in_test {
            continue;
        }
        for l in &func.locks {
            if l.method != "lock" {
                continue;
            }
            let Some(rank) = lock_rank(&l.field) else {
                continue;
            };
            for g in &l.held {
                let Some(held) = lock_rank(&g.field) else {
                    continue;
                };
                if held == rank {
                    findings.push(Finding::new(
                        Rule::J1,
                        &file.path,
                        l.line,
                        format!(
                            "`{}` re-acquired while guard `{}` (line {}) already holds it: self-deadlock",
                            l.field, g.name, g.line
                        ),
                    ));
                } else if held > rank {
                    findings.push(Finding::new(
                        Rule::J1,
                        &file.path,
                        l.line,
                        format!(
                            "lock-order inversion: `{}` acquired while `{}` guard `{}` (line {}) is live; canonical order is sched → book",
                            l.field, g.field, g.name, g.line
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// J2: no lock across blocking — direct ops, plus calls into
// blocking-tainted helpers (the graph form).
// ---------------------------------------------------------------------------

fn rule_lock_across_blocking(file: &FileIndex, graph: &CallGraph, findings: &mut Vec<Finding>) {
    if file.file_is_test {
        return;
    }
    for func in &file.funcs {
        if func.in_test {
            continue;
        }
        for b in &func.blocking {
            for g in &b.held {
                // Condvar waits release the lock; they are filtered by
                // not being in the blocking sets.
                findings.push(Finding::new(
                    Rule::J2,
                    &file.path,
                    b.line,
                    format!(
                        "blocking call {} while lock guard `{}` (on `{}`, line {}) is live",
                        b.op, g.name, g.field, g.line
                    ),
                ));
            }
        }
        // Transitive form: a call made under a guard into a helper that
        // (transitively) blocks. Calls inside spawn(..) run on another
        // thread and carry neither the guard nor the stall. A call
        // matching the function's own name is a method on some other
        // type (true recursion under a guard would deadlock on entry).
        for c in &func.calls {
            if c.in_spawn || c.held.is_empty() || c.name == func.name {
                continue;
            }
            let Some(callee) = graph.tainted_callee(&file.krate, &c.name) else {
                continue;
            };
            let tail = graph.taint_chain(callee);
            let mut chain = vec![func.name.clone()];
            chain.extend(tail);
            for g in &c.held {
                findings.push(
                    Finding::new(
                        Rule::J2,
                        &file.path,
                        c.line,
                        format!(
                            "call to blocking-tainted `{}` while lock guard `{}` (on `{}`, line {}) is live; blocks via {}",
                            c.name,
                            g.name,
                            g.field,
                            g.line,
                            chain.join(" -> ")
                        ),
                    )
                    .with_chain(chain.clone()),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// J3: Relaxed atomics policy.
// ---------------------------------------------------------------------------

fn rule_relaxed_atomics(
    file: &FileIndex,
    load_sites: &BTreeMap<String, BTreeSet<String>>,
    findings: &mut Vec<Finding>,
) {
    if file.file_is_test {
        return;
    }
    // Ring-scoped files get the strict form: *every* `Relaxed` mutation
    // (including `fetch_add`/`fetch_sub` claim cursors) needs a reason,
    // because every slot and cursor atomic there is cross-thread by
    // construction — the cross-function load heuristic below would
    // under-approximate on mmap'd words read by other *processes*.
    let in_ring = ring_scoped_path(&file.path);
    for func in &file.funcs {
        if func.in_test {
            continue;
        }
        let toks = &file.lexed.toks;
        let mut i = func.body.start;
        while i + 2 < func.body.end {
            // Shape: `.store(` or `.swap(` with receiver ident, whose
            // argument list mentions `Relaxed`.
            if toks[i].is_punct(".")
                && (toks[i + 1].is_ident("store")
                    || toks[i + 1].is_ident("swap")
                    || (in_ring
                        && (toks[i + 1].is_ident("fetch_add")
                            || toks[i + 1].is_ident("fetch_sub"))))
                && toks[i + 2].is_punct("(")
                && i > 0
                && toks[i - 1].kind == TokKind::Ident
            {
                let field = toks[i - 1].text.clone();
                let op = toks[i + 1].text.clone();
                // Scan the argument list for `Relaxed`.
                let mut j = i + 3;
                let mut depth = 1;
                let mut relaxed = false;
                while j < func.body.end && depth > 0 {
                    if toks[j].is_punct("(") {
                        depth += 1;
                    } else if toks[j].is_punct(")") {
                        depth -= 1;
                    } else if toks[j].is_ident("Relaxed") {
                        relaxed = true;
                    }
                    j += 1;
                }
                if relaxed {
                    // Cross-thread shape: the same field is loaded in a
                    // different function somewhere in the analysis set.
                    // In ring scope that is assumed, not inferred.
                    let cross = in_ring
                        || load_sites
                            .get(&field)
                            .map(|fns| fns.iter().any(|f| f != &func.name))
                            .unwrap_or(false);
                    if cross {
                        findings.push(Finding::new(
                            Rule::J3,
                            &file.path,
                            toks[i].line,
                            format!(
                                "`{field}.{op}(.., Ordering::Relaxed)` on a flag read elsewhere (cross-thread signal shape); annotate with `// jets-lint: allow(relaxed) <reason>` or upgrade the ordering"
                            ),
                        ));
                    }
                }
                i = j;
                continue;
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// J4: protocol exhaustiveness.
// ---------------------------------------------------------------------------

fn rule_protocol_exhaustive(file: &FileIndex, enums: &EnumDefs, findings: &mut Vec<Finding>) {
    if file.file_is_test {
        return;
    }
    let toks = &file.lexed.toks;
    for func in &file.funcs {
        if func.in_test {
            continue;
        }
        let mut i = func.body.start;
        while i < func.body.end {
            if toks[i].is_ident("match") {
                if let Some(m) = index::parse_match(toks, i, func.body.end) {
                    check_match(file, enums, &m, findings);
                    // Continue scanning *inside* the match for nested
                    // matches; just advance past the keyword.
                }
            }
            i += 1;
        }
    }
}

/// Check one match expression against the protocol enums. The match is
/// in scope iff at least one arm pattern mentions `WorkerMsg::` or
/// `DispatcherMsg::`.
fn check_match(file: &FileIndex, enums: &EnumDefs, m: &MatchExpr, findings: &mut Vec<Finding>) {
    let toks = &file.lexed.toks;
    let mut touched: BTreeSet<&str> = BTreeSet::new();
    for arm in &m.arms {
        let mut i = arm.start;
        while i + 1 < arm.end {
            if toks[i].kind == TokKind::Ident
                && PROTOCOL_ENUMS.contains(&toks[i].text.as_str())
                && toks[i + 1].is_punct("::")
            {
                touched.insert(if toks[i].text == "WorkerMsg" {
                    "WorkerMsg"
                } else {
                    "DispatcherMsg"
                });
            }
            i += 1;
        }
    }
    if touched.is_empty() {
        return;
    }

    // Collect named variants per enum and look for wildcard arms in
    // enum position.
    let mut named: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for arm in &m.arms {
        // Wildcard in enum position: an arm whose pattern, after
        // stripping wrappers (Ok / Some / Err / parens / references),
        // is `_` or a bare binding ident with no `::` path. A `_`
        // *inside* a variant payload (`Assign(_)`, `Cancel { .. }`) or
        // inside `Err(..)` is fine.
        if wildcard_in_enum_position(toks, arm.clone()) {
            findings.push(Finding::new(
                Rule::J4,
                &file.path,
                toks.get(arm.start).map(|t| t.line).unwrap_or(m.line),
                format!(
                    "wildcard arm in a {} match: name every variant so new envelopes force a decision",
                    touched.iter().cloned().collect::<Vec<_>>().join("/")
                ),
            ));
        }
        let mut i = arm.start;
        while i + 2 < arm.end {
            if toks[i].kind == TokKind::Ident
                && PROTOCOL_ENUMS.contains(&toks[i].text.as_str())
                && toks[i + 1].is_punct("::")
                && toks[i + 2].kind == TokKind::Ident
            {
                let e = if toks[i].text == "WorkerMsg" {
                    "WorkerMsg"
                } else {
                    "DispatcherMsg"
                };
                named.entry(e).or_default().insert(toks[i + 2].text.clone());
            }
            i += 1;
        }
    }

    for e in &touched {
        let Some(def) = enums.get(*e) else {
            continue; // enum not defined in the analysis set
        };
        let have = named.remove(*e).unwrap_or_default();
        let missing: Vec<&String> = def.difference(&have).collect();
        if !missing.is_empty() {
            findings.push(Finding::new(
                Rule::J4,
                &file.path,
                m.line,
                format!(
                    "{e} match does not name variant(s): {}",
                    missing
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
    }
}

/// Does this arm pattern contain a `_` (or bare catch-all binding) in
/// *enum position* — i.e. standing in for a whole protocol-enum value
/// rather than a variant payload?
///
/// Heuristic: strip leading wrappers `Ok(` / `Some(` / `&` / `(`
/// (recursively). If what remains starts with `_` or is a single bare
/// ident (no `::`, not a known variant path), that's a catch-all. Also
/// treat `Ok(Some(_))` as enum position. `Err(_)`, `None`, and `_`
/// inside a `Variant(..)` payload are not.
fn wildcard_in_enum_position(toks: &[Tok], arm: std::ops::Range<usize>) -> bool {
    // Patterns may be or-patterns: split on `|` at depth 0.
    let mut segments: Vec<std::ops::Range<usize>> = Vec::new();
    let mut depth = 0i32;
    let mut start = arm.start;
    for i in arm.clone() {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct("|") && depth == 0 {
            segments.push(start..i);
            start = i + 1;
        }
    }
    segments.push(start..arm.end);

    for seg in segments {
        let mut i = seg.start;
        // Strip guards: stop the segment at `if` (match guards).
        let mut end = seg.end;
        for k in seg.clone() {
            if toks[k].is_ident("if") {
                end = k;
                break;
            }
        }
        // Strip wrappers.
        while let Some(t) = toks.get(i).filter(|_| i < end) {
            if t.is_punct("&") || t.is_punct("(") {
                i += 1;
            } else if (t.is_ident("Ok") || t.is_ident("Some"))
                && toks.get(i + 1).map(|n| n.is_punct("(")).unwrap_or(false)
            {
                i += 2;
            } else {
                break;
            }
        }
        let Some(t) = toks.get(i).filter(|_| i < end) else {
            continue;
        };
        if t.is_ident("_") {
            return true;
        }
        // Bare binding ident acting as catch-all: single ident, no `::`
        // after it, not a unit-ish known name (None / Err wrappers are
        // different enums — allowed).
        if t.kind == TokKind::Ident
            && !t.is_ident("None")
            && !t.is_ident("Err")
            && !t.is_ident("Ok")
            && !t.is_ident("Some")
        {
            let next = toks.get(i + 1).filter(|_| i + 1 < end);
            let is_path = next.map(|n| n.is_punct("::")).unwrap_or(false);
            let is_struct = next
                .map(|n| n.is_punct("(") || n.is_punct("{") || n.is_punct("@"))
                .unwrap_or(false);
            if !is_path && !is_struct && next.is_none() {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// J5: exit-code registry.
// ---------------------------------------------------------------------------

/// Sentinel exit codes owned by `spec.rs`. 127 is also claimed by the
/// worker's *positive* spawn-failure convention, so only the negative
/// (dispatcher-synthesized) forms are restricted.
const SENTINEL_CODES: &[&str] = &["125", "126", "127", "128"];

fn rule_exit_code(file: &FileIndex, findings: &mut Vec<Finding>) {
    let fname = file
        .path
        .file_name()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_default();
    if fname == "spec.rs" {
        return; // the registry itself
    }
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Int {
            continue;
        }
        let digits = t
            .text
            .split(|c: char| c.is_alphabetic())
            .next()
            .unwrap_or("");
        let digits = digits.trim_end_matches('_');
        if !SENTINEL_CODES.contains(&digits) {
            continue;
        }
        // Must be a *negative* literal: preceded by unary `-`.
        if i == 0 || !toks[i - 1].is_punct("-") {
            continue;
        }
        // Unary position: the token before the `-` must not be a value
        // (ident/number/closing bracket), otherwise it's subtraction.
        if i >= 2 {
            let prev = &toks[i - 2];
            let is_value = matches!(prev.kind, TokKind::Ident | TokKind::Int | TokKind::Float)
                || prev.is_punct(")")
                || prev.is_punct("]");
            // `=> -125`, `(-125`, `== -125`, `, -125` are unary; but
            // keyword idents (`return`) are not values.
            let keyword_ok = matches!(
                prev.text.as_str(),
                "return" | "=>" | "=" | "," | "(" | "[" | "==" | "!=" | "<" | ">" | "<=" | ">="
            );
            if is_value && !keyword_ok {
                continue;
            }
        }
        findings.push(Finding::new(
            Rule::J5,
            &file.path,
            t.line,
            format!(
                "magic exit-code literal -{digits}: use the named constant from jets-core `spec.rs` (EXIT_*)"
            ),
        ));
    }
}

// ---------------------------------------------------------------------------
// J6: unwrap/expect in connection handlers.
// ---------------------------------------------------------------------------

/// Function-name predicate for handler scope: these run against
/// peer-controlled input or per-connection resources, where a panic
/// tears down state shared with healthy peers.
fn is_handler_fn(name: &str) -> bool {
    name.starts_with("serve_")
        || name.starts_with("handle_")
        || name.starts_with("accept_")
        || name.starts_with("recover_")
        || name.starts_with("reconcile_")
        || name.ends_with("_loop")
        || name.ends_with("_pump")
        || name.contains("session")
}

fn rule_unwrap_in_handler(file: &FileIndex, findings: &mut Vec<Finding>) {
    if file.file_is_test {
        return;
    }
    let toks = &file.lexed.toks;
    for func in &file.funcs {
        if func.in_test || !is_handler_fn(&func.name) {
            continue;
        }
        let mut i = func.body.start;
        while i + 1 < func.body.end {
            if toks[i].is_punct(".")
                && (toks[i + 1].is_ident("unwrap") || toks[i + 1].is_ident("expect"))
                && toks.get(i + 2).map(|t| t.is_punct("(")).unwrap_or(false)
            {
                findings.push(Finding::new(
                    Rule::J6,
                    &file.path,
                    toks[i + 1].line,
                    format!(
                        "`.{}()` in connection handler `{}`: a peer-triggered panic here tears down shared state; handle the error or suppress with a reason",
                        toks[i + 1].text, func.name
                    ),
                ));
                i += 3;
                continue;
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// J7: reactor discipline.
// ---------------------------------------------------------------------------

/// Reactor callback names. These run inline on an event-loop thread:
/// one blocking call stalls every connection multiplexed on that loop.
const REACTOR_CALLBACKS: &[&str] = &["on_open", "on_frame", "on_close"];

/// Path predicate for the reactor-converted fan-in crates: their
/// per-connection serve/accept paths must not spawn threads, because
/// connection concurrency belongs to the reactor. The blocking client
/// crates (worker agent, jets-pmi, jets-mpi) keep their thread-per-
/// connection accept loops by design and are exempt by path.
fn reactor_scoped_path(path: &Path) -> bool {
    let s = path.to_string_lossy().replace('\\', "/");
    s.split('/').any(|comp| {
        comp.contains("jets-core")
            || comp.contains("jets-relay")
            || comp.contains("jets-reactor")
            || comp == "reactor"
    })
}

fn rule_reactor_discipline(file: &FileIndex, graph: &CallGraph, findings: &mut Vec<Finding>) {
    if file.file_is_test {
        return;
    }
    let toks = &file.lexed.toks;
    for func in &file.funcs {
        if func.in_test {
            continue;
        }
        let is_callback = REACTOR_CALLBACKS.contains(&func.name.as_str());
        let is_serve_path = (func.name.starts_with("serve_") || func.name.starts_with("accept_"))
            && reactor_scoped_path(&file.path);
        if !is_callback && !is_serve_path {
            continue;
        }
        let mut i = func.body.start;
        while i < func.body.end {
            let t = &toks[i];
            // `thread::spawn` / `thread::Builder`: banned in both scopes.
            if t.is_ident("thread")
                && toks.get(i + 1).map(|n| n.is_punct("::")).unwrap_or(false)
                && toks
                    .get(i + 2)
                    .map(|n| n.is_ident("spawn") || n.is_ident("Builder"))
                    .unwrap_or(false)
            {
                let what = &toks[i + 2].text;
                let message = if is_callback {
                    format!(
                        "`thread::{what}` inside reactor callback `{}`: callbacks run on the event loop; queue work instead of spawning",
                        func.name
                    )
                } else {
                    format!(
                        "`thread::{what}` inside per-connection path `{}`: connection concurrency belongs to the reactor, not ad-hoc threads",
                        func.name
                    )
                };
                findings.push(Finding::new(Rule::J7, &file.path, t.line, message));
                i += 3;
                continue;
            }
            // Blocking calls: banned in callbacks only (serve paths on
            // the blocking side may legitimately block, they just may
            // not spawn).
            if is_callback {
                if let Some(op) = index::blocking_op_at(toks, i) {
                    findings.push(Finding::new(
                        Rule::J7,
                        &file.path,
                        t.line,
                        format!(
                            "blocking call {op} inside reactor callback `{}`: the event loop must never block; queue on the outbox or defer to a service thread",
                            func.name
                        ),
                    ));
                }
            }
            i += 1;
        }
        // Transitive form: a callback calling a blocking-tainted
        // helper stalls the loop just as surely as blocking inline.
        if is_callback {
            for c in &func.calls {
                if c.in_spawn || c.name == func.name {
                    continue;
                }
                let Some(callee) = graph.tainted_callee(&file.krate, &c.name) else {
                    continue;
                };
                let tail = graph.taint_chain(callee);
                let mut chain = vec![func.name.clone()];
                chain.extend(tail);
                findings.push(
                    Finding::new(
                        Rule::J7,
                        &file.path,
                        c.line,
                        format!(
                            "call to blocking-tainted `{}` inside reactor callback `{}`: the event loop must never block; blocks via {}",
                            c.name,
                            func.name,
                            chain.join(" -> ")
                        ),
                    )
                    .with_chain(chain),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// J8: ring writer discipline.
// ---------------------------------------------------------------------------

/// Path predicate for the flight recorder's writer path: the
/// `jets-ring` crate itself, plus the `EventLog` facade in jets-core's
/// `events.rs` (whose `record`/`encode_event` feed the ring).
fn ring_scoped_path(path: &Path) -> bool {
    let s = path.to_string_lossy().replace('\\', "/");
    s.split('/')
        .any(|comp| comp.contains("jets-ring") || comp == "ring")
        || (s.ends_with("events.rs") && s.contains("jets-core"))
}

/// Writer-path functions inside ring scope: what runs between a
/// producer deciding to record and the slot's publishing store. Span
/// emitters (`span_start`/`span_end`, `emit_*`) are writer-path too —
/// they run at task-dispatch rate on every traced process.
fn is_ring_writer_fn(name: &str) -> bool {
    name.starts_with("push")
        || name.starts_with("record")
        || name.starts_with("encode")
        || name.starts_with("span_")
        || name.starts_with("emit_")
}

/// Macros that allocate (`name!`-shape).
const RING_ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Methods that allocate (`.name(`-shape).
const RING_ALLOC_METHODS: &[&str] = &["to_string", "to_vec", "to_owned", "collect"];

/// Heap-owning types whose associated constructors (`Name::`-shape)
/// have no business in a record path that encodes into stack buffers.
const RING_ALLOC_TYPES: &[&str] = &["Vec", "String", "Box"];

/// The acceptance invariant of the flight recorder, machine-checked:
/// `EventLog::record` and everything under it takes no lock, blocks on
/// nothing, and allocates nothing — a producer records an event for the
/// cost of a claim `fetch_add` plus sixteen word stores, always.
fn rule_ring_writer(file: &FileIndex, findings: &mut Vec<Finding>) {
    if file.file_is_test || !ring_scoped_path(&file.path) {
        return;
    }
    let toks = &file.lexed.toks;
    for func in &file.funcs {
        if func.in_test || !is_ring_writer_fn(&func.name) {
            continue;
        }
        let mut i = func.body.start;
        while i < func.body.end {
            let t = &toks[i];
            // Lock acquisition: the writer path may never contend.
            if t.is_punct(".")
                && toks.get(i + 1).map(|n| n.is_ident("lock")).unwrap_or(false)
                && toks.get(i + 2).map(|n| n.is_punct("(")).unwrap_or(false)
            {
                findings.push(Finding::new(
                    Rule::J8,
                    &file.path,
                    t.line,
                    format!(
                        "`.lock()` in ring writer path `{}`: the flight-recorder record path must stay lock-free; annotate with `// jets-lint: allow(ring) <reason>` only if this is provably off the hot path",
                        func.name
                    ),
                ));
                i += 3;
                continue;
            }
            // Blocking I/O or sleeps: shared detector with J2/J7.
            if let Some(op) = index::blocking_op_at(toks, i) {
                findings.push(Finding::new(
                    Rule::J8,
                    &file.path,
                    t.line,
                    format!(
                        "blocking call {op} in ring writer path `{}`: producers record events at task-dispatch rate and must never wait",
                        func.name
                    ),
                ));
                i += 1;
                continue;
            }
            // Heap allocation: `format!`/`vec!`, allocating method
            // calls, and `Vec::`/`String::`/`Box::` constructors.
            let alloc: Option<String> = if t.kind == TokKind::Ident
                && RING_ALLOC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).map(|n| n.is_punct("!")).unwrap_or(false)
            {
                Some(format!("{}!", t.text))
            } else if t.is_punct(".")
                && toks
                    .get(i + 1)
                    .map(|n| {
                        n.kind == TokKind::Ident
                            && RING_ALLOC_METHODS.contains(&n.text.as_str())
                            && index::is_called(toks, i + 1)
                    })
                    .unwrap_or(false)
            {
                Some(format!(".{}()", toks[i + 1].text))
            } else if t.kind == TokKind::Ident
                && RING_ALLOC_TYPES.contains(&t.text.as_str())
                && toks.get(i + 1).map(|n| n.is_punct("::")).unwrap_or(false)
            {
                Some(format!("{}::", t.text))
            } else {
                None
            };
            if let Some(what) = alloc {
                findings.push(Finding::new(
                    Rule::J8,
                    &file.path,
                    t.line,
                    format!(
                        "allocation (`{what}`) in ring writer path `{}`: records are encoded into fixed stack buffers, never the heap",
                        func.name
                    ),
                ));
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// J9: interprocedural lock-order cycles.
// ---------------------------------------------------------------------------

fn rule_lock_cycles(graph: &CallGraph, findings: &mut Vec<Finding>) {
    for cycle in graph.lock_cycles() {
        let mut ring: Vec<&str> = cycle.fields.iter().map(|f| f.as_str()).collect();
        if let Some(first) = cycle.fields.first() {
            ring.push(first.as_str());
        }
        let witnesses = cycle
            .edges
            .iter()
            .map(|e| {
                let via = if e.chain.is_empty() {
                    String::new()
                } else {
                    format!(" via {}", e.chain.join(" -> "))
                };
                format!(
                    "`{}` -> `{}` at {}:{} in `{}`{}",
                    e.from,
                    e.to,
                    e.path.display(),
                    e.line,
                    e.func,
                    via
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        // Anchor the finding at the first witness edge so a suppression
        // (if ever justified) sits next to real code.
        let anchor = &cycle.edges[0];
        findings.push(
            Finding::new(
                Rule::J9,
                &anchor.path,
                anchor.line,
                format!(
                    "lock-order cycle {}: {witnesses}; pick one canonical acquisition order",
                    ring.join(" -> ")
                ),
            )
            .with_chain(cycle.fields.clone()),
        );
    }
}

// ---------------------------------------------------------------------------
// J10: protocol parity — constructed variants must be matched.
// ---------------------------------------------------------------------------

fn rule_protocol_parity(files: &[FileIndex], enums: &EnumDefs, findings: &mut Vec<Finding>) {
    // Which (enum, variant) pairs are matched (pattern position) in
    // non-test code anywhere in the analysis set?
    let mut matched: BTreeSet<(&str, &str)> = BTreeSet::new();
    for file in files {
        for u in &file.variant_uses {
            if u.is_pattern && !u.in_test {
                matched.insert((u.enum_name.as_str(), u.variant.as_str()));
            }
        }
    }
    // First non-test construction site per (enum, variant), in file
    // order (deterministic: sources arrive sorted).
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for file in files {
        for u in &file.variant_uses {
            if u.is_pattern || u.in_test {
                continue;
            }
            let Some(def) = enums.get(&u.enum_name) else {
                continue; // enum not defined in the analysis set
            };
            if !def.contains(&u.variant) {
                continue; // associated fn / const, not a variant
            }
            if matched.contains(&(u.enum_name.as_str(), u.variant.as_str())) {
                continue;
            }
            if !reported.insert((u.enum_name.clone(), u.variant.clone())) {
                continue;
            }
            findings.push(Finding::new(
                Rule::J10,
                &file.path,
                u.line,
                format!(
                    "`{}::{}` is constructed here but matched nowhere in the workspace: a dead or unhandled protocol arm is how wire-protocol drift starts",
                    u.enum_name, u.variant
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(src: &str) -> Vec<Finding> {
        lint_sources(&[(PathBuf::from("crates/x/src/lib.rs"), src.to_string())])
    }

    #[test]
    fn clean_code_has_no_findings() {
        let src = r#"
            fn canonical(inner: &Inner) {
                let mut st = inner.sched.lock();
                let mut bk = inner.book.lock();
                bk.note(&mut st);
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn inverted_lock_order_fires_j1() {
        let src = r#"
            fn inverted(inner: &Inner) {
                let bk = inner.book.lock();
                let st = inner.sched.lock();
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::J1);
    }

    #[test]
    fn guard_scope_exit_clears_locks() {
        let src = r#"
            fn scoped(inner: &Inner) {
                {
                    let bk = inner.book.lock();
                }
                let st = inner.sched.lock();
            }
        "#;
        assert!(lint_one(src).is_empty());
    }

    #[test]
    fn drop_clears_guard() {
        let src = r#"
            fn dropped(inner: &Inner) {
                let bk = inner.book.lock();
                drop(bk);
                let st = inner.sched.lock();
            }
        "#;
        assert!(lint_one(src).is_empty());
    }

    #[test]
    fn blocking_under_guard_fires_j2() {
        let src = r#"
            fn bad(inner: &Inner, rx: &Receiver<u8>) {
                let st = inner.sched.lock();
                let x = rx.recv();
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::J2);
    }

    #[test]
    fn temporary_guard_send_is_fine() {
        // The agent's writer.lock().send(..) idiom: the guard is a
        // temporary, dead by the end of the statement.
        let src = r#"
            fn ok(writer: &Mutex<MsgWriter>) {
                writer.lock().send(&msg);
            }
        "#;
        assert!(lint_one(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn helper(inner: &Inner) {
                    let bk = inner.book.lock();
                    let st = inner.sched.lock();
                    let v = rx.recv().unwrap();
                }
            }
        "#;
        assert!(lint_one(src).is_empty());
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = r#"
            fn bad(inner: &Inner, rx: &Receiver<u8>) {
                let st = inner.sched.lock();
                // jets-lint: allow(lock-across-blocking) bounded by test harness
                let x = rx.recv();
            }
        "#;
        assert!(lint_one(src).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_j0_and_does_not_silence() {
        let src = r#"
            fn bad(inner: &Inner, rx: &Receiver<u8>) {
                let st = inner.sched.lock();
                // jets-lint: allow(lock-across-blocking)
                let x = rx.recv();
            }
        "#;
        let f = lint_one(src);
        assert!(f.iter().any(|f| f.rule == Rule::J0));
        assert!(f.iter().any(|f| f.rule == Rule::J2));
    }

    #[test]
    fn unused_suppression_is_j0() {
        let src = r#"
            // jets-lint: allow(exit-code) nothing here actually needs this
            fn fine() {}
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::J0);
        assert!(f[0].message.contains("unused"));
        assert!(is_unused_suppression(&f[0]));
    }

    #[test]
    fn relaxed_signal_fires_j3() {
        let src = r#"
            fn writer_side(flag: &AtomicBool) {
                flag.store(true, Ordering::Relaxed);
            }
            fn reader_side(flag: &AtomicBool) -> bool {
                flag.load(Ordering::Acquire)
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::J3);
    }

    #[test]
    fn relaxed_counter_without_cross_fn_load_is_fine() {
        let src = r#"
            fn bump(c: &AtomicU64) {
                c.fetch_add(1, Ordering::Relaxed);
                local.store(7, Ordering::Relaxed);
            }
        "#;
        assert!(lint_one(src).is_empty());
    }

    #[test]
    fn wildcard_protocol_match_fires_j4() {
        let src = r#"
            enum WorkerMsg { Register, Done }
            fn dispatch(m: WorkerMsg) {
                match m {
                    WorkerMsg::Register => {}
                    _ => {}
                }
            }
        "#;
        let f = lint_one(src);
        assert!(f.iter().any(|f| f.rule == Rule::J4), "{f:?}");
    }

    #[test]
    fn payload_wildcard_is_allowed() {
        let src = r#"
            enum DispatcherMsg { Assign(u8), Cancel { id: u64 } }
            fn relayable(m: &DispatcherMsg) -> bool {
                match m {
                    DispatcherMsg::Assign(_) | DispatcherMsg::Cancel { .. } => true,
                }
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn missing_variant_fires_j4() {
        let src = r#"
            enum WorkerMsg { Register, Done, Heartbeat }
            fn dispatch(m: WorkerMsg) {
                match m {
                    WorkerMsg::Register => {}
                    WorkerMsg::Done => {}
                }
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::J4);
        assert!(f[0].message.contains("Heartbeat"));
    }

    #[test]
    fn ok_some_wrapper_wildcard_fires_j4() {
        let src = r#"
            enum DispatcherMsg { Assign(u8), Cancel }
            fn pump(rx: &Receiver) {
                match rx.recv() {
                    Ok(Some(DispatcherMsg::Assign(a))) => {}
                    Ok(Some(_)) | Err(_) => {}
                    Ok(None) => {}
                }
            }
        "#;
        let f = lint_one(src);
        assert!(f.iter().any(|f| f.rule == Rule::J4), "{f:?}");
    }

    #[test]
    fn err_wildcard_alone_is_fine() {
        let src = r#"
            enum DispatcherMsg { Assign(u8), Cancel }
            fn pump(rx: &Receiver) {
                match rx.recv() {
                    Ok(Some(DispatcherMsg::Assign(a))) => {}
                    Ok(Some(DispatcherMsg::Cancel)) => {}
                    Ok(None) => {}
                    Err(_) => {}
                }
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn negative_exit_literal_fires_j5() {
        let src = r#"
            fn synth() -> i32 { -125 }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::J5);
    }

    #[test]
    fn positive_and_subtraction_literals_are_fine() {
        let src = r#"
            const EXIT_RANK_PANIC: i32 = 125;
            fn sub(x: i32) -> i32 { x - 126 }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn spec_rs_is_exempt_from_j5() {
        let f = lint_sources(&[(
            PathBuf::from("crates/jets-core/src/spec.rs"),
            "pub const EXIT_CANCELED: i32 = -125;".to_string(),
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_in_handler_fires_j6() {
        let src = r#"
            fn serve_worker(stream: TcpStream) {
                let msg = read_msg(&mut stream).unwrap();
            }
        "#;
        let f = lint_one(src);
        assert!(f.iter().any(|f| f.rule == Rule::J6), "{f:?}");
    }

    #[test]
    fn unwrap_outside_handler_scope_is_fine() {
        let src = r#"
            fn parse_config(s: &str) -> Config {
                s.parse().unwrap()
            }
        "#;
        assert!(lint_one(src).is_empty());
    }

    #[test]
    fn spawn_in_reactor_scoped_serve_fires_j7() {
        let src = r#"
            fn serve_member(stream: TcpStream) {
                thread::spawn(move || pump(stream));
            }
        "#;
        let f = lint_sources(&[(
            PathBuf::from("crates/jets-relay/src/daemon.rs"),
            src.to_string(),
        )]);
        assert!(f.iter().any(|f| f.rule == Rule::J7), "{f:?}");
    }

    #[test]
    fn spawn_in_blocking_client_serve_is_fine() {
        // jets-pmi keeps its thread-per-connection accept loop by design.
        let src = r#"
            fn serve_rank(stream: TcpStream) {
                thread::spawn(move || pump(stream));
            }
        "#;
        let f = lint_sources(&[(
            PathBuf::from("crates/jets-pmi/src/server.rs"),
            src.to_string(),
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn blocking_call_in_reactor_callback_fires_j7() {
        // Callbacks are scanned regardless of path: any on_frame runs on
        // an event loop, and recv() there stalls every connection on it.
        let src = r#"
            fn on_frame(&mut self, frame: &[u8]) -> Flow {
                let reply = self.rx.recv();
                Flow::Continue
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::J7);
    }

    #[test]
    fn spawn_in_reactor_callback_fires_j7() {
        let src = r#"
            fn on_open(&mut self, outbox: &Arc<Outbox>) {
                thread::Builder::new().spawn(|| {}).ok();
            }
        "#;
        let f = lint_one(src);
        assert!(f.iter().any(|f| f.rule == Rule::J7), "{f:?}");
    }

    #[test]
    fn outbox_send_in_callback_is_fine() {
        // Outbox::send never blocks (bounded buffer, drop-on-overflow),
        // so the non-blocking send idiom must stay clean.
        let src = r#"
            fn on_frame(&mut self, frame: &[u8]) -> Flow {
                self.outbox.send(frame);
                Flow::Continue
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn j7_suppression_with_reason_silences() {
        let src = r#"
            fn on_close(&mut self, reason: CloseReason) {
                // jets-lint: allow(reactor) teardown path; loop is already dead
                thread::spawn(move || cleanup());
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    // --- interprocedural (graph) rules --------------------------------

    #[test]
    fn two_hop_taint_under_guard_fires_j2_with_chain() {
        let src = r#"
            fn drain_outbox(stream: &mut TcpStream) {
                stream.flush();
            }
            fn serve_tick(inner: &Inner, stream: &mut TcpStream) {
                let st = inner.sched.lock();
                drain_outbox(stream);
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::J2);
        assert_eq!(f[0].chain, vec!["serve_tick", "drain_outbox", ".flush()"]);
        assert!(f[0]
            .message
            .contains("serve_tick -> drain_outbox -> .flush()"));
    }

    #[test]
    fn three_hop_taint_in_callback_fires_j7_with_chain() {
        let src = r#"
            fn nap() {
                thread::sleep(Duration::from_millis(1));
            }
            fn settle() {
                nap();
            }
            fn on_frame(&mut self, frame: &[u8]) -> Flow {
                settle();
                Flow::Continue
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::J7);
        assert_eq!(f[0].chain, vec!["on_frame", "settle", "nap", "sleep()"]);
    }

    #[test]
    fn blocking_inside_spawn_does_not_taint_caller() {
        // Work handed to another thread neither blocks the caller nor
        // runs under its guards.
        let src = r#"
            fn worker_body() {
                thread::sleep(Duration::from_millis(1));
            }
            fn launch(inner: &Inner) {
                let st = inner.sched.lock();
                thread::spawn(move || worker_body());
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn tainted_call_without_guard_is_fine() {
        let src = r#"
            fn drain(stream: &mut TcpStream) {
                stream.flush();
            }
            fn tick(stream: &mut TcpStream) {
                drain(stream);
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn interprocedural_lock_cycle_fires_j9() {
        let src = r#"
            fn forward(inner: &Inner) {
                let st = inner.sched.lock();
                let bk = inner.book.lock();
            }
            fn backward(inner: &Inner) {
                let bk = inner.book.lock();
                touch_sched(inner);
            }
            fn touch_sched(inner: &Inner) {
                let st = inner.sched.lock();
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::J9);
        assert!(f[0].message.contains("x:book"));
        assert!(f[0].message.contains("x:sched"));
        assert!(f[0].message.contains("touch_sched"));
    }

    #[test]
    fn canonical_order_alone_has_no_cycle() {
        let src = r#"
            fn forward(inner: &Inner) {
                let st = inner.sched.lock();
                let bk = inner.book.lock();
            }
            fn also_forward(inner: &Inner) {
                let st = inner.sched.lock();
                take_book(inner);
            }
            fn take_book(inner: &Inner) {
                let bk = inner.book.lock();
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn transitive_reentry_is_a_one_cycle() {
        // `hold_sched` calls into a helper that re-acquires sched: J1
        // cannot see it (different functions), J9 reports it as a
        // 1-cycle.
        let src = r#"
            fn hold_sched(inner: &Inner) {
                let st = inner.sched.lock();
                helper(inner);
            }
            fn helper(inner: &Inner) {
                let st = inner.sched.lock();
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::J9);
        assert!(f[0].message.contains("x:sched -> x:sched"));
    }

    #[test]
    fn constructed_but_never_matched_variant_fires_j10() {
        let src = r#"
            enum WorkerMsg { Register, Zombie }
            fn emit(out: &mut Vec<WorkerMsg>) {
                out.push(WorkerMsg::Zombie);
            }
            fn check(m: &WorkerMsg) -> bool {
                if let WorkerMsg::Register = m { true } else { false }
            }
        "#;
        let f = lint_one(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::J10);
        assert!(f[0].message.contains("WorkerMsg::Zombie"));
    }

    #[test]
    fn constructed_and_matched_variant_is_fine() {
        let src = r#"
            enum WorkerMsg { Register, Done }
            fn emit(out: &mut Vec<WorkerMsg>) {
                out.push(WorkerMsg::Register);
                out.push(WorkerMsg::Done);
            }
            fn dispatch(m: WorkerMsg) {
                match m {
                    WorkerMsg::Register => {}
                    WorkerMsg::Done => {}
                }
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn associated_fn_on_protocol_enum_is_not_a_variant() {
        let src = r#"
            enum WorkerMsg { Register }
            fn pump(buf: &[u8]) {
                let m = WorkerMsg::decode(buf);
                if let WorkerMsg::Register = m {}
            }
            fn emit(out: &mut Vec<WorkerMsg>) {
                out.push(WorkerMsg::Register);
            }
        "#;
        assert!(lint_one(src).is_empty(), "{:?}", lint_one(src));
    }

    #[test]
    fn strip_suppression_lines_removes_comment_only_lines() {
        let src = "fn a() {}\n// jets-lint: allow(ring) stale\nfn b() {}\n";
        let lines: BTreeSet<u32> = [2].into_iter().collect();
        assert_eq!(
            strip_suppression_lines(src, &lines),
            "fn a() {}\nfn b() {}\n"
        );
    }

    #[test]
    fn strip_suppression_lines_trims_trailing_comments() {
        let src = "let x = 1; // jets-lint: allow(relaxed) stale\nlet y = 2;\n";
        let lines: BTreeSet<u32> = [1].into_iter().collect();
        assert_eq!(
            strip_suppression_lines(src, &lines),
            "let x = 1;\nlet y = 2;\n"
        );
    }

    #[test]
    fn finding_json_carries_span_and_chain() {
        let src = r#"
            fn drain_outbox(stream: &mut TcpStream) {
                stream.flush();
            }
            fn serve_tick(inner: &Inner, stream: &mut TcpStream) {
                let st = inner.sched.lock();
                drain_outbox(stream);
            }
        "#;
        let f = lint_one(src);
        let json = f[0].to_json();
        assert!(json.contains("\"span\":[7,7]"), "{json}");
        assert!(
            json.contains("\"chain\":[\"serve_tick\",\"drain_outbox\",\".flush()\"]"),
            "{json}"
        );
    }
}
