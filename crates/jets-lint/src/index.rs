//! Pass 1 of the two-pass analysis: the workspace symbol index.
//!
//! Every source file is lexed and split into functions, and each
//! function is summarized into [`FnFacts`]: the calls it makes, the
//! lock guards it acquires (and what was already held at that point),
//! and the blocking operations it performs directly. Pass 2 (see
//! [`crate::callgraph`]) stitches these per-file summaries into a
//! workspace call graph and runs the interprocedural rules over it.
//!
//! Indexing is embarrassingly parallel — each file's facts depend only
//! on its own tokens — so [`index_sources`] fans the file list out
//! across a fixed pool of `std::thread` workers (the same thread model
//! as the reactor's event loops: N threads, static assignment, no work
//! queue). All cross-file resolution (call edges, lock-field
//! declarations, protocol enum definitions) happens after the join.

use crate::lexer::{lex, Lexed, Tok, TokKind};
use std::collections::BTreeSet;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// How many lines below a suppression comment it still covers, so the
/// comment can sit above a multi-line statement.
pub const SUPPRESSION_REACH: u32 = 3;

/// Does `line` fall under a well-formed, reasoned
/// `allow(lock-across-blocking)` suppression in this file? The taint
/// pass treats such a site as *documented-contract* blocking — the
/// suppression records a reviewed decision that the op is bounded and
/// intentional (e.g. the journal's serialized WAL write), so it does
/// not seed transitive taint and callers are not re-flagged for the
/// same decision. Malformed or reason-less suppressions confer
/// nothing.
pub fn blocking_contract_at(file: &FileIndex, line: u32) -> bool {
    file.lexed.suppressions.iter().any(|s| {
        let text = s.text.trim();
        let Some(rest) = text.strip_prefix("allow(") else {
            return false;
        };
        let Some(close) = rest.find(')') else {
            return false;
        };
        rest[..close].trim() == "lock-across-blocking"
            && !rest[close + 1..].trim().is_empty()
            && line >= s.line
            && line <= s.line + SUPPRESSION_REACH
    })
}

/// Method names (called as `.name(`) that block on I/O or time.
pub const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "accept",
    "connect",
];

/// Free functions / paths that block (`thread::sleep`, frame I/O).
pub const BLOCKING_CALLS: &[&str] = &[
    "sleep",
    "read_msg",
    "read_msg_buf",
    "write_msg",
    "write_msg_buf",
];

/// A lock guard that is live at some program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldGuard {
    /// Binding name (`st`, `bk`).
    pub name: String,
    /// The field the lock was taken on (`sched`, `book`, `members`, …).
    pub field: String,
    /// Line the guard was acquired on.
    pub line: u32,
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name: the last path segment (`drain_outbox` for both
    /// `drain_outbox(..)` and `self.drain_outbox(..)`).
    pub name: String,
    pub line: u32,
    /// Lock guards live at the call.
    pub held: Vec<HeldGuard>,
    /// The call happens inside the argument list of a `spawn(..)`
    /// (`thread::spawn`, `Builder::spawn`): it runs on another thread,
    /// so it neither blocks the caller nor runs under its guards.
    pub in_spawn: bool,
}

/// A directly-blocking operation inside a function body.
#[derive(Debug, Clone)]
pub struct BlockSite {
    /// Human description (`.flush()`, `sleep()`, `writer.send()`).
    pub op: String,
    pub line: u32,
    pub held: Vec<HeldGuard>,
    pub in_spawn: bool,
}

/// A lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Receiver field of `.lock()` / `.read()` / `.write()`.
    pub field: String,
    /// `lock` for Mutex, `read`/`write` for RwLock candidates (only
    /// counted by pass 2 when the field is a declared RwLock).
    pub method: String,
    pub line: u32,
    pub held: Vec<HeldGuard>,
    pub is_let: bool,
    pub in_spawn: bool,
}

/// One function with its interprocedural facts.
#[derive(Debug)]
pub struct FnFacts {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, *inside* the braces.
    pub body: Range<usize>,
    pub in_test: bool,
    pub calls: Vec<CallSite>,
    pub blocking: Vec<BlockSite>,
    pub locks: Vec<LockSite>,
}

/// A `field: Mutex<..>` / `field: RwLock<..>` struct-field declaration.
#[derive(Debug, Clone)]
pub struct LockDecl {
    pub field: String,
    /// `Mutex` or `RwLock`.
    pub kind: String,
    pub line: u32,
}

/// One appearance of `Enum::Variant` for a protocol enum.
#[derive(Debug, Clone)]
pub struct VariantUse {
    pub enum_name: String,
    pub variant: String,
    pub line: u32,
    /// The use sits in pattern position (match arm, `let` / `if let`
    /// binding pattern, `matches!` argument) rather than being a
    /// construction.
    pub is_pattern: bool,
    pub in_test: bool,
}

/// One source file prepared for analysis: pass-1 output.
pub struct FileIndex {
    pub path: PathBuf,
    /// Crate the file belongs to (`jets-core` for
    /// `crates/jets-core/src/dispatcher.rs`), used to namespace lock
    /// fields so same-named fields in unrelated crates don't alias.
    pub krate: String,
    pub lexed: Lexed,
    /// Whole file is test-ish scope (tests/, benches/, examples/ dirs).
    pub file_is_test: bool,
    pub funcs: Vec<FnFacts>,
    pub lock_decls: Vec<LockDecl>,
    /// Protocol enum definitions found in this file.
    pub enum_defs: Vec<(String, BTreeSet<String>)>,
    /// Protocol `Enum::Variant` uses (constructions and patterns).
    pub variant_uses: Vec<VariantUse>,
    /// `(atomic-field, function)` pairs for `.load(` sites (rule J3).
    pub atomic_loads: Vec<(String, String)>,
}

/// Enum names whose matches must be exhaustive and whose constructed
/// variants must be matched somewhere (rules J4 / J10).
pub const PROTOCOL_ENUMS: &[&str] = &["WorkerMsg", "DispatcherMsg"];

/// Derive the owning crate from a path: the component after `crates`,
/// else `root` for the top-level `src/` / `tests/` trees.
pub fn crate_of(path: &Path) -> String {
    let s = path.to_string_lossy().replace('\\', "/");
    let comps: Vec<&str> = s.split('/').filter(|c| !c.is_empty()).collect();
    for (i, c) in comps.iter().enumerate() {
        if *c == "crates" && i + 1 < comps.len() {
            return comps[i + 1].to_string();
        }
    }
    "root".to_string()
}

/// Index a set of in-memory sources across a fixed pool of `threads`
/// worker threads. Output order matches input order regardless of the
/// thread count, so the analysis is deterministic.
pub fn index_sources(sources: &[(PathBuf, String)], threads: usize) -> Vec<FileIndex> {
    let threads = threads.max(1).min(sources.len().max(1));
    if threads == 1 {
        return sources
            .iter()
            .map(|(p, s)| index_file(p.clone(), s))
            .collect();
    }
    // Static round-robin assignment, reactor-style: worker `w` owns
    // every file whose position ≡ w (mod threads). No shared queue, no
    // locks; the join is the only synchronization.
    let mut slots: Vec<Option<FileIndex>> = Vec::with_capacity(sources.len());
    slots.resize_with(sources.len(), || None);
    let mut out: Vec<Vec<(usize, FileIndex)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let srcs = &sources;
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                let mut i = w;
                while i < srcs.len() {
                    let (p, s) = &srcs[i];
                    mine.push((i, index_file(p.clone(), s)));
                    i += threads;
                }
                mine
            }));
        }
        for h in handles {
            // A worker panicking means an indexing bug; propagate.
            out.push(h.join().expect("index worker panicked"));
        }
    });
    for chunk in out {
        for (i, fi) in chunk {
            slots[i] = Some(fi);
        }
    }
    slots.into_iter().map(|s| s.expect("indexed")).collect()
}

/// Index one file: lex, split into functions, extract per-function
/// facts and file-level declarations.
pub fn index_file(path: PathBuf, src: &str) -> FileIndex {
    let lexed = lex(src);
    let file_is_test = {
        let s = path.to_string_lossy().replace('\\', "/");
        s.contains("/tests/") || s.contains("/benches/") || s.contains("/examples/")
    };
    let krate = crate_of(&path);
    let test_mask = compute_test_mask(&lexed.toks);
    let mut funcs = split_functions(&lexed.toks, &test_mask);
    for f in &mut funcs {
        extract_fn_facts(&lexed.toks, f);
    }
    let lock_decls = collect_lock_decls(&lexed.toks);
    let enum_defs = collect_enum_defs(&lexed.toks);
    let pattern_mask = compute_pattern_mask(&lexed.toks);
    let variant_uses = collect_variant_uses(&lexed.toks, &pattern_mask, &test_mask, file_is_test);
    let atomic_loads = collect_atomic_loads_file(&lexed.toks, &funcs);
    FileIndex {
        path,
        krate,
        lexed,
        file_is_test,
        funcs,
        lock_decls,
        enum_defs,
        variant_uses,
        atomic_loads,
    }
}

/// Mark tokens inside `#[cfg(test)]`-gated items and `#[test]` fns.
fn compute_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            // Scan the attribute tokens.
            let attr_start = i + 2;
            let mut j = attr_start;
            let mut depth = 1;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                }
                j += 1;
            }
            let attr = &toks[attr_start..j.saturating_sub(1)];
            let is_test_attr = attr.first().map(|t| t.is_ident("test")).unwrap_or(false)
                || (attr.first().map(|t| t.is_ident("cfg")).unwrap_or(false)
                    && attr.iter().any(|t| t.is_ident("test")));
            if is_test_attr {
                // Mark through the attached item: scan forward past any
                // further attributes to the item's braced body (or `;`).
                let mut k = j;
                // Skip stacked attributes.
                while k + 1 < toks.len() && toks[k].is_punct("#") && toks[k + 1].is_punct("[") {
                    let mut d = 0;
                    k += 1;
                    while k < toks.len() {
                        if toks[k].is_punct("[") {
                            d += 1;
                        } else if toks[k].is_punct("]") {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        k += 1;
                    }
                }
                // Find the first `{` at depth 0 relative to here, or `;`.
                let mut d = 0i32;
                let mut end = k;
                while end < toks.len() {
                    let t = &toks[end];
                    if t.is_punct("{") {
                        d += 1;
                    } else if t.is_punct("}") {
                        d -= 1;
                        if d == 0 {
                            end += 1;
                            break;
                        }
                    } else if t.is_punct(";") && d == 0 {
                        end += 1;
                        break;
                    }
                    end += 1;
                }
                for m in mask.iter_mut().take(end.min(toks.len())).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

/// Split the token stream into named functions with body ranges.
fn split_functions(toks: &[Tok], test_mask: &[bool]) -> Vec<FnFacts> {
    let mut funcs = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let line = toks[i].line;
            let in_test = test_mask.get(i).copied().unwrap_or(false);
            // Find the opening `{` of the body, skipping generics,
            // params, return types, and where clauses. `;` first means
            // a trait method declaration with no body.
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut paren = 0i32;
            let mut body_start = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("<") {
                    angle += 1;
                } else if t.is_punct(">") {
                    angle -= 1;
                } else if t.is_punct("(") {
                    paren += 1;
                } else if t.is_punct(")") {
                    paren -= 1;
                } else if t.is_punct(";") && paren == 0 {
                    break;
                } else if t.is_punct("{") && paren == 0 && angle <= 0 {
                    body_start = Some(j + 1);
                    break;
                }
                j += 1;
            }
            if let Some(start) = body_start {
                let mut depth = 1i32;
                let mut k = start;
                while k < toks.len() && depth > 0 {
                    if toks[k].is_punct("{") {
                        depth += 1;
                    } else if toks[k].is_punct("}") {
                        depth -= 1;
                    }
                    k += 1;
                }
                let body = start..k.saturating_sub(1);
                funcs.push(FnFacts {
                    name,
                    line,
                    body,
                    in_test,
                    calls: Vec::new(),
                    blocking: Vec::new(),
                    locks: Vec::new(),
                });
                // Continue *inside* the body so nested fns are found too.
                i = start;
                continue;
            }
        }
        i += 1;
    }
    funcs
}

/// A guard tracked during the scan (same semantics as the J1/J2 rules:
/// let-bound guards live until `drop`, shadowing, or scope exit).
#[derive(Debug, Clone)]
pub struct Guard {
    pub name: String,
    pub field: String,
    /// Brace depth the binding was created at.
    pub depth: i32,
    pub line: u32,
}

/// Scan a function body, calling `on_lock` at every `.lock()` call with
/// (receiver-field, live guards, is-let-binding, token index) and
/// `on_tok` for every other token with the live-guard list. Maintains
/// the guard list: let-bound guards live until `drop(name)`, shadowing,
/// or scope exit; temporary `x.lock().y` guards are not tracked as live
/// past the statement (they die at the end of the expression).
pub fn scan_guards<FL, FT>(toks: &[Tok], body: Range<usize>, mut on_lock: FL, mut on_tok: FT)
where
    FL: FnMut(&str, &[Guard], bool, usize),
    FT: FnMut(&Tok, usize, &[Guard]),
{
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut i = body.start;
    while i < body.end {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
        }

        // drop(name) kills a guard.
        if t.is_ident("drop")
            && i + 2 < body.end
            && toks[i + 1].is_punct("(")
            && toks[i + 2].kind == TokKind::Ident
        {
            let victim = &toks[i + 2].text;
            guards.retain(|g| &g.name != victim);
        }

        // `.lock()` / `.lock().` — find the receiver field: the ident
        // immediately before the `.`.
        if t.is_punct(".")
            && i + 3 < body.end
            && toks[i + 1].is_ident("lock")
            && toks[i + 2].is_punct("(")
            && toks[i + 3].is_punct(")")
        {
            let field = if i > body.start && toks[i - 1].kind == TokKind::Ident {
                toks[i - 1].text.clone()
            } else {
                String::new()
            };
            // Is this a let binding? Walk back to the statement start.
            let binding = find_let_binding(toks, body.start, i);
            on_lock(&field, &guards, binding.is_some(), i);
            if let Some((name, _let_idx)) = binding {
                // Shadowing: a rebound name kills the old guard.
                guards.retain(|g| g.name != name);
                guards.push(Guard {
                    name,
                    field,
                    depth,
                    line: t.line,
                });
            }
            i += 4;
            // If this was a temporary (no let), the guard lives only to
            // the end of the statement; we simply don't track it.
            continue;
        }

        on_tok(t, i, &guards);
        i += 1;
    }
}

/// If the `.lock()` at token `dot` is the RHS of `let [mut] NAME = …`,
/// return (NAME, index of `let`). Walks back to the nearest `;`, `{`,
/// or `}` and checks the statement starts with `let`.
fn find_let_binding(toks: &[Tok], lo: usize, dot: usize) -> Option<(String, usize)> {
    let mut j = dot;
    while j > lo {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            j += 1;
            break;
        }
        // A `=` between here and the dot is fine; keep walking.
    }
    if !toks.get(j)?.is_ident("let") {
        return None;
    }
    let mut k = j + 1;
    if toks.get(k)?.is_ident("mut") {
        k += 1;
    }
    let name_tok = toks.get(k)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Require `= … .lock()` to follow (not `let (a, b) = …` patterns).
    let eq = toks.get(k + 1)?;
    if !(eq.is_punct("=") || eq.is_punct(":")) {
        return None;
    }
    Some((name_tok.text.clone(), j))
}

/// If the token at `i` begins a blocking operation, describe it.
/// Shapes: `.recv()`-style method calls from [`BLOCKING_METHODS`],
/// `.send(` on a socket-writer receiver (channel sends are
/// non-blocking for the unbounded channels used here), and free or
/// method calls of the [`BLOCKING_CALLS`] frame helpers. Shared by J2
/// (blocking under a lock guard), J7 (blocking in a reactor callback),
/// J8 (blocking in the ring writer path), and the taint seed.
pub fn blocking_op_at(toks: &[Tok], i: usize) -> Option<String> {
    let t = toks.get(i)?;
    if t.is_punct(".")
        && toks
            .get(i + 1)
            .map(|n| n.kind == TokKind::Ident)
            .unwrap_or(false)
    {
        let name = &toks[i + 1].text;
        let called = is_called(toks, i + 1);
        if called && BLOCKING_METHODS.contains(&name.as_str()) {
            return Some(format!(".{name}()"));
        }
        if called && name == "send" {
            let recv = if i > 0 && toks[i - 1].kind == TokKind::Ident {
                toks[i - 1].text.as_str()
            } else {
                ""
            };
            if recv.contains("writer") || recv.contains("sock") || recv.contains("stream") {
                return Some(format!("{recv}.send()"));
            }
        }
        return None;
    }
    // Exclude method position: `x.read_msg()` still counts, but
    // `guard.recv()` is handled above; here we accept both free and
    // method calls of the frame helpers.
    if t.kind == TokKind::Ident && BLOCKING_CALLS.contains(&t.text.as_str()) && is_called(toks, i) {
        return Some(format!("{}()", t.text));
    }
    None
}

/// Token at `i` (an ident) is immediately invoked: `name(` or
/// `name::<T>(`.
pub fn is_called(toks: &[Tok], i: usize) -> bool {
    match toks.get(i + 1) {
        Some(t) if t.is_punct("(") => true,
        Some(t) if t.is_punct("::") => {
            // turbofish: name::<T>(
            let mut j = i + 2;
            if toks.get(j).map(|t| t.is_punct("<")).unwrap_or(false) {
                let mut depth = 1;
                j += 1;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct("<") {
                        depth += 1;
                    } else if toks[j].is_punct(">") {
                        depth -= 1;
                    }
                    j += 1;
                }
                toks.get(j).map(|t| t.is_punct("(")).unwrap_or(false)
            } else {
                false
            }
        }
        _ => false,
    }
}

/// Is the ident at `i` qualified by a PascalCase type name other than
/// `Self` (`PmiServer::start`)? Associated-function calls on foreign
/// types cannot be resolved by bare name; `Self::helper` and
/// snake_case module paths (`journal::replay`) stay resolvable.
fn is_type_qualified(toks: &[Tok], i: usize, start: usize) -> bool {
    i >= start + 2
        && toks[i - 1].is_punct("::")
        && toks[i - 2].kind == TokKind::Ident
        && toks[i - 2].text != "Self"
        && toks[i - 2]
            .text
            .chars()
            .next()
            .map(|c| c.is_uppercase())
            .unwrap_or(false)
}

/// Keywords that can appear as `ident (`-shaped tokens but are not
/// calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "move", "in", "as", "fn", "let", "else",
    "unsafe", "await", "break", "continue",
];

/// Extract the call sites, blocking ops, and lock acquisitions of one
/// function, with the held-guard set at each point.
fn extract_fn_facts(toks: &[Tok], f: &mut FnFacts) {
    let body = f.body.clone();
    // Pre-compute the token ranges covered by `spawn(..)` argument
    // lists: work inside them runs on another thread.
    let spawn_mask = compute_spawn_mask(toks, body.clone());

    let mut calls = Vec::new();
    let mut blocking = Vec::new();
    // Both scan_guards closures record lock sites (let-bound `.lock()`
    // in the first, `.read()`/`.write()` candidates in the second), so
    // the vec is shared through a RefCell.
    let locks = std::cell::RefCell::new(Vec::new());

    let held_of = |guards: &[Guard]| -> Vec<HeldGuard> {
        guards
            .iter()
            .map(|g| HeldGuard {
                name: g.name.clone(),
                field: g.field.clone(),
                line: g.line,
            })
            .collect()
    };

    scan_guards(
        toks,
        body.clone(),
        |field, guards, is_let, idx| {
            locks.borrow_mut().push(LockSite {
                field: field.to_string(),
                method: "lock".to_string(),
                line: toks[idx].line,
                held: held_of(guards),
                is_let,
                in_spawn: spawn_mask[idx - body.start],
            });
        },
        |t, i, guards| {
            let in_spawn = spawn_mask[i - body.start];
            // RwLock acquisition candidates: `.read()` / `.write()`
            // with an ident receiver. Pass 2 only keeps these when the
            // receiver is a declared RwLock field, so `stream.read(..)`
            // style I/O never aliases in.
            if t.is_punct(".")
                && i + 3 < body.end
                && (toks[i + 1].is_ident("read") || toks[i + 1].is_ident("write"))
                && toks[i + 2].is_punct("(")
                && toks[i + 3].is_punct(")")
                && i > body.start
                && toks[i - 1].kind == TokKind::Ident
            {
                locks.borrow_mut().push(LockSite {
                    field: toks[i - 1].text.clone(),
                    method: toks[i + 1].text.clone(),
                    line: t.line,
                    held: held_of(guards),
                    is_let: false,
                    in_spawn,
                });
            }
            if let Some(op) = blocking_op_at(toks, i) {
                blocking.push(BlockSite {
                    op,
                    line: t.line,
                    held: held_of(guards),
                    in_spawn,
                });
            }
            // Call sites: `.name(` method calls and `name(` free calls
            // (last path segment for `a::b::name(`). Macros (`name!`)
            // and keywords are not calls; names already covered by the
            // blocking detector are recorded there instead.
            let (is_call, name_idx) = if t.is_punct(".")
                && toks
                    .get(i + 1)
                    .map(|n| n.kind == TokKind::Ident && is_called(toks, i + 1))
                    .unwrap_or(false)
            {
                (true, i + 1)
            } else if t.kind == TokKind::Ident
                && is_called(toks, i)
                && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                && !(i > body.start && toks[i - 1].is_punct("."))
                && !is_type_qualified(toks, i, body.start)
            {
                // Module-qualified calls (`journal::replay(..)`) and
                // `Self::x(..)` are kept: the last segment is the
                // callee name. `.`-prefixed idents are skipped — the
                // `.`-branch above already recorded the method call —
                // and `Type::assoc(..)` calls are skipped: resolving
                // `PmiServer::start` by the bare name `start` would hit
                // every constructor in the crate.
                (true, i)
            } else {
                (false, 0)
            };
            if is_call {
                let name = &toks[name_idx].text;
                // Skip type constructors (PascalCase) and macro-ish
                // names; workspace functions are snake_case.
                let snake = name
                    .chars()
                    .next()
                    .map(|c| c.is_lowercase() || c == '_')
                    .unwrap_or(false);
                let is_macro = toks
                    .get(name_idx + 1)
                    .map(|n| n.is_punct("!"))
                    .unwrap_or(false);
                if snake && !is_macro {
                    calls.push(CallSite {
                        name: name.clone(),
                        line: toks[name_idx].line,
                        held: held_of(guards),
                        in_spawn,
                    });
                }
            }
        },
    );

    f.calls = calls;
    f.blocking = blocking;
    f.locks = locks.into_inner();
}

/// Mark the token offsets (relative to `body.start`) inside the
/// argument list of any `spawn(..)` call.
fn compute_spawn_mask(toks: &[Tok], body: Range<usize>) -> Vec<bool> {
    let mut mask = vec![false; body.len()];
    let mut i = body.start;
    while i < body.end {
        if toks[i].is_ident("spawn") && toks.get(i + 1).map(|t| t.is_punct("(")).unwrap_or(false) {
            let mut depth = 1i32;
            let mut j = i + 2;
            while j < body.end && depth > 0 {
                if toks[j].is_punct("(") {
                    depth += 1;
                } else if toks[j].is_punct(")") {
                    depth -= 1;
                }
                if depth > 0 {
                    mask[j - body.start] = true;
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

/// Collect `field: Mutex<..>` / `field: RwLock<..>` declarations
/// (including `Arc<Mutex<..>>` wrappers) anywhere in the file.
fn collect_lock_decls(toks: &[Tok]) -> Vec<LockDecl> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i + 1].is_punct(":") {
            // Walk the type expression: `Mutex<`, `Arc<Mutex<`,
            // `Arc<RwLock<` — accept any wrapper chain of idents and
            // `<` until the lock type or something else.
            let mut j = i + 2;
            let mut hops = 0;
            while hops < 4 && j + 1 < toks.len() && toks[j].kind == TokKind::Ident {
                let name = toks[j].text.as_str();
                if (name == "Mutex" || name == "RwLock") && toks[j + 1].is_punct("<") {
                    out.push(LockDecl {
                        field: toks[i].text.clone(),
                        kind: name.to_string(),
                        line: toks[i].line,
                    });
                    break;
                }
                if toks[j + 1].is_punct("<") {
                    j += 2;
                    hops += 1;
                } else if toks[j + 1].is_punct("::") {
                    // `std::sync::Mutex<`, `parking_lot::Mutex<`
                    j += 2;
                } else {
                    break;
                }
            }
        }
        i += 1;
    }
    out
}

/// Collect protocol enum definitions (`enum WorkerMsg { … }`) from the
/// token stream.
fn collect_enum_defs(toks: &[Tok]) -> Vec<(String, BTreeSet<String>)> {
    let mut defs = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].is_ident("enum")
            && toks[i + 1].kind == TokKind::Ident
            && PROTOCOL_ENUMS.contains(&toks[i + 1].text.as_str())
        {
            let name = toks[i + 1].text.clone();
            // Find the `{`, then variants are idents at depth 1
            // that either start the body or follow a `,` at depth 1.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("{") {
                j += 1;
            }
            let mut depth = 0i32;
            let mut variants = BTreeSet::new();
            let mut expect_variant = true;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth == 1 {
                    if t.is_punct(",") {
                        expect_variant = true;
                    } else if t.is_punct("#") {
                        // attribute on a variant; skip the [ ... ]
                        let mut d = 0;
                        j += 1;
                        while j < toks.len() {
                            if toks[j].is_punct("[") {
                                d += 1;
                            } else if toks[j].is_punct("]") {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                    } else if expect_variant && t.kind == TokKind::Ident {
                        variants.insert(t.text.clone());
                        expect_variant = false;
                    }
                }
                j += 1;
            }
            defs.push((name, variants));
            i = j;
            continue;
        }
        i += 1;
    }
    defs
}

/// A parsed match expression: arm pattern token ranges.
pub struct MatchExpr {
    pub line: u32,
    /// Pattern token ranges (pattern is everything before `=>` in the arm).
    pub arms: Vec<Range<usize>>,
}

/// Parse the match starting at `match_idx` (`match` keyword). Returns
/// None for malformed input.
pub fn parse_match(toks: &[Tok], match_idx: usize, limit: usize) -> Option<MatchExpr> {
    // Scrutinee: tokens until the `{` at depth 0 (tracking parens and
    // braces of struct literals is the hard part; in this codebase
    // scrutinees are simple expressions, so track (), [], and stop at
    // the first `{` outside them).
    let mut i = match_idx + 1;
    let mut paren = 0i32;
    while i < limit {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") {
            paren += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            paren -= 1;
        } else if t.is_punct("{") && paren == 0 {
            break;
        }
        i += 1;
    }
    if i >= limit {
        return None;
    }
    let body_start = i + 1;
    // Split arms: pattern = tokens up to `=>` at depth 0; then the arm
    // value runs to `,` at depth 0 or a `{ … }` block.
    let mut arms = Vec::new();
    let mut j = body_start;
    let mut depth = 0i32; // braces/parens/brackets within the match body
    let mut pat_start = j;
    let mut in_pattern = true;
    while j < limit {
        let t = &toks[j];
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            if t.is_punct("{") && depth == 0 && !in_pattern {
                // Block-bodied arm: skip the block, then next arm.
                let mut d = 1;
                j += 1;
                while j < limit && d > 0 {
                    if toks[j].is_punct("{") {
                        d += 1;
                    } else if toks[j].is_punct("}") {
                        d -= 1;
                    }
                    j += 1;
                }
                // Optional trailing comma.
                if j < limit && toks[j].is_punct(",") {
                    j += 1;
                }
                in_pattern = true;
                pat_start = j;
                continue;
            }
            depth += 1;
        } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
            if t.is_punct("}") && depth == 0 {
                // End of the match body.
                break;
            }
            depth -= 1;
        } else if t.is_punct("=>") && depth == 0 && in_pattern {
            arms.push(pat_start..j);
            in_pattern = false;
        } else if t.is_punct(",") && depth == 0 && !in_pattern {
            in_pattern = true;
            pat_start = j + 1;
        }
        j += 1;
    }
    Some(MatchExpr {
        line: toks[match_idx].line,
        arms,
    })
}

/// Mark every token index that sits in *pattern position*: match-arm
/// patterns, the pattern of `let` / `if let` / `while let` bindings
/// (tokens between `let` and the `=`), and `matches!(..)` argument
/// lists. Everything else mentioning `Enum::Variant` is a construction.
fn compute_pattern_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("match") {
            if let Some(m) = parse_match(toks, i, toks.len()) {
                for arm in &m.arms {
                    for k in arm.clone() {
                        mask[k] = true;
                    }
                }
            }
        } else if t.is_ident("let") {
            // `let PAT = …` / `if let PAT = …` / `while let PAT = …`:
            // mark until the `=` at bracket depth 0 (stop at `;` or
            // `{` for safety on `let … else` and malformed input).
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0 && (t.is_punct("=") || t.is_punct(";")) {
                    break;
                }
                mask[j] = true;
                j += 1;
            }
        } else if t.is_ident("matches")
            && toks.get(i + 1).map(|n| n.is_punct("!")).unwrap_or(false)
            && toks.get(i + 2).map(|n| n.is_punct("(")).unwrap_or(false)
        {
            let mut depth = 1i32;
            let mut j = i + 3;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct("(") {
                    depth += 1;
                } else if toks[j].is_punct(")") {
                    depth -= 1;
                }
                if depth > 0 {
                    mask[j] = true;
                }
                j += 1;
            }
        }
        i += 1;
    }
    mask
}

/// Collect every `Enum::Variant` appearance for the protocol enums,
/// classified as pattern or construction.
fn collect_variant_uses(
    toks: &[Tok],
    pattern_mask: &[bool],
    test_mask: &[bool],
    file_is_test: bool,
) -> Vec<VariantUse> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].kind == TokKind::Ident
            && PROTOCOL_ENUMS.contains(&toks[i].text.as_str())
            && toks[i + 1].is_punct("::")
            && toks[i + 2].kind == TokKind::Ident
        {
            out.push(VariantUse {
                enum_name: toks[i].text.clone(),
                variant: toks[i + 2].text.clone(),
                line: toks[i].line,
                is_pattern: pattern_mask[i] || pattern_mask[i + 2],
                in_test: file_is_test || test_mask[i],
            });
            i += 3;
            continue;
        }
        i += 1;
    }
    out
}

/// `(atomic-field, enclosing-function)` pairs for every `.load(` with
/// an ident receiver (rule J3's cross-function heuristic).
fn collect_atomic_loads_file(toks: &[Tok], funcs: &[FnFacts]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for func in funcs {
        let mut i = func.body.start;
        while i + 2 < func.body.end {
            if toks[i].is_punct(".")
                && toks[i + 1].is_ident("load")
                && toks[i + 2].is_punct("(")
                && i > 0
                && toks[i - 1].kind == TokKind::Ident
            {
                out.push((toks[i - 1].text.clone(), func.name.clone()));
            }
            i += 1;
        }
    }
    out
}
