//! A small Rust lexer, sufficient for invariant checking.
//!
//! This is deliberately *not* a full parser: jets-lint runs in
//! environments without network access to a crates registry (the
//! development container, the offline-check harness), so it cannot
//! depend on `syn`. Instead it tokenizes Rust source precisely enough
//! that the rule passes can reason about token *sequences* — guards,
//! match arms, paths, literals — without ever being confused by the
//! contents of strings or comments.
//!
//! The lexer guarantees:
//!
//! * string/char/byte/raw-string literals become single [`TokKind::Str`]
//!   / [`TokKind::Char`] tokens (their contents can never fake a match
//!   arm or a lock acquisition);
//! * comments are stripped, except that `// jets-lint:` suppression
//!   comments are captured with their line numbers;
//! * every token carries the 1-based line it starts on, so findings have
//!   real `file:line` spans.

/// Token classification. The rule passes mostly look at `Ident` texts
/// and a handful of punctuation sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `match`, `let`, names, `_`).
    Ident,
    /// Integer literal (suffix kept in the text: `125i32`).
    Int,
    /// Float literal.
    Float,
    /// String literal of any flavour (contents dropped).
    Str,
    /// Char literal (contents dropped).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation; multi-character operators are fused (`::`, `=>`,
    /// `->`, `..`, `..=`, comparison and compound-assignment operators).
    Punct,
}

/// One token with its source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Source text (for `Str`/`Char` a placeholder, contents dropped).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A `// jets-lint: ...` comment captured during lexing, unparsed.
#[derive(Debug, Clone)]
pub struct RawSuppression {
    /// 1-based line of the comment.
    pub line: u32,
    /// Comment text after the `jets-lint:` marker, trimmed.
    pub text: String,
}

/// Lexer output: the token stream plus captured suppression comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens, comments and whitespace stripped.
    pub toks: Vec<Tok>,
    /// Raw `// jets-lint:` comments, in file order.
    pub suppressions: Vec<RawSuppression>,
}

/// Marker that introduces a suppression comment.
const MARKER: &str = "jets-lint:";

/// Multi-character punctuation, longest first so fusing is greedy.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "=>", "->", "..", "==", "!=", "<=", ">=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "|=", "&=", "<<", ">>",
];

/// Tokenize `src`. Never fails: unrecognized bytes become single-char
/// punctuation, which at worst makes a rule conservative.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Count newlines in b[from..to), advancing `line`.
    let bump = |line: &mut u32, b: &[char], from: usize, to: usize| {
        *line += b[from..to].iter().filter(|&&c| c == '\n').count() as u32;
    };

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (incl. doc comments). Capture jets-lint markers:
        // only plain `// jets-lint: ...` comments count — doc comments
        // (`///`, `//!`) and mid-prose mentions of the marker are
        // documentation, not suppressions.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            let is_doc = text.starts_with("///") || text.starts_with("//!");
            let body = text.trim_start_matches("//").trim_start();
            if !is_doc && body.starts_with(MARKER) {
                out.suppressions.push(RawSuppression {
                    line,
                    text: body[MARKER.len()..].trim().to_string(),
                });
            }
            continue; // the \n is handled by the whitespace arm
        }
        // Block comment, nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            bump(&mut line, &b, start, i);
            continue;
        }
        // Raw strings: r"...", r#"..."#, br#"..."# etc.
        if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
            let start = i;
            i = skip_raw_string(&b, i);
            bump(&mut line, &b, start, i);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: "\"raw\"".to_string(),
                line,
            });
            continue;
        }
        // Plain and byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start = i;
            i += if c == 'b' { 2 } else { 1 };
            while i < n {
                if b[i] == '\\' {
                    i += 2;
                } else if b[i] == '"' {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            let tok_line = line;
            bump(&mut line, &b, start, i.min(n));
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: "\"str\"".to_string(),
                line: tok_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if is_lifetime(&b, i) {
                let start = i;
                i += 1;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line,
                });
            } else {
                // 'x', '\n', '\u{1f4a9}' — scan to the closing quote.
                i += 1;
                while i < n {
                    if b[i] == '\\' {
                        i += 2;
                    } else if b[i] == '\'' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: "'c'".to_string(),
                    line,
                });
            }
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            // A fractional part: digit '.' digit (not `0..x` ranges, not
            // method calls `1.max(..)` whose next char is alphabetic).
            if i < n && b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit() {
                is_float = true;
                i += 1;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            }
            out.toks.push(Tok {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Identifiers / keywords (incl. r#raw idents).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            if c == 'r' && i + 1 < n && b[i + 1] == '#' && i + 2 < n && is_ident_start(b[i + 2]) {
                i += 2; // r# prefix of a raw identifier
            }
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            let text = text.strip_prefix("r#").unwrap_or(&text).to_string();
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        // Punctuation: fuse known multi-char operators.
        let mut matched = None;
        for m in MULTI_PUNCT {
            if src_matches(&b, i, m) {
                matched = Some(*m);
                break;
            }
        }
        if let Some(m) = matched {
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: m.to_string(),
                line,
            });
            i += m.chars().count();
        } else {
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// `b[i..]` starts a raw (possibly byte) string literal.
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

/// Skip a raw string starting at `i`; returns the index just past it.
fn skip_raw_string(b: &[char], mut i: usize) -> usize {
    if b[i] == 'b' {
        i += 1;
    }
    i += 1; // 'r'
    let mut hashes = 0;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == '"' {
            let mut k = 0;
            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    b.len()
}

/// `'` at `i` starts a lifetime (not a char literal): `'ident` not
/// followed by a closing quote.
fn is_lifetime(b: &[char], i: usize) -> bool {
    if i + 1 >= b.len() {
        return false;
    }
    let c1 = b[i + 1];
    if !(c1.is_alphabetic() || c1 == '_') {
        return false;
    }
    // 'a' is a char literal; 'a  (no closing quote) is a lifetime.
    let mut j = i + 2;
    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
        j += 1;
    }
    !(j < b.len() && b[j] == '\'')
}

fn src_matches(b: &[char], i: usize, m: &str) -> bool {
    let mc: Vec<char> = m.chars().collect();
    if i + mc.len() > b.len() {
        return false;
    }
    b[i..i + mc.len()] == mc[..]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r##"
            // match WorkerMsg::Fake never seen
            let s = "match WorkerMsg::AlsoFake { _ => }";
            let r = r#"lock() sleep()"#;
            /* block _ => comment /* nested */ still comment */
            let c = 'x';
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"WorkerMsg".to_string()));
        assert!(!ids.contains(&"sleep".to_string()));
    }

    #[test]
    fn lines_survive_multiline_strings() {
        let src = "let a = \"x\ny\";\nlet b = 1;\n";
        let l = lex(src);
        let b = l.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn suppressions_are_captured() {
        let src = "fn f() {}\n// jets-lint: allow(exit-code) spec table\nfn g() {}\n";
        let l = lex(src);
        assert_eq!(l.suppressions.len(), 1);
        assert_eq!(l.suppressions[0].line, 2);
        assert_eq!(l.suppressions[0].text, "allow(exit-code) spec table");
    }

    #[test]
    fn multi_punct_fuses() {
        let l = lex("a => b :: c -> d ..= e");
        let puncts: Vec<String> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(puncts, vec!["=>", "::", "->", "..="]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'q'; }");
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn negative_numbers_tokenize_as_minus_then_int() {
        let l = lex("x = -125;");
        let kinds: Vec<TokKind> = l.toks.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokKind::Int));
        let int = l.toks.iter().find(|t| t.kind == TokKind::Int).unwrap();
        assert_eq!(int.text, "125");
    }
}
