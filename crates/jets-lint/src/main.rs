//! jets-lint CLI.
//!
//! ```text
//! jets-lint --workspace [--deny] [--json] [--verbose] [--root <dir>]
//! jets-lint <file.rs> [<file.rs> ...] [--deny] [--json]
//! jets-lint --workspace --fix-suppressions
//! ```
//!
//! `--workspace` walks the repo's Rust sources (crates/, src/, tests/)
//! excluding build output, lint fixtures, and vendored tooling.
//! `--deny` exits non-zero when any finding survives suppression — that
//! is the CI mode. `--json` emits one JSON object per finding on
//! stdout (a JSON-lines stream) for machine consumption. `--verbose`
//! prints per-pass timing (parallel indexing vs. graph + rules) to
//! stderr. `--fix-suppressions` deletes unused `// jets-lint:
//! allow(...)` comments in place and reports what it removed.

use jets_lint::{
    default_threads, is_unused_suppression, lint_paths_with_stats, strip_suppression_lines,
    workspace_files, Finding,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut workspace = false;
    let mut deny = false;
    let mut json = false;
    let mut verbose = false;
    let mut fix_suppressions = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny" => deny = true,
            "--json" => json = true,
            "--verbose" => verbose = true,
            "--fix-suppressions" => fix_suppressions = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("jets-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: jets-lint [--workspace] [--deny] [--json] [--verbose] [--fix-suppressions] [--root <dir>] [files...]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("jets-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    if workspace {
        let root =
            root.unwrap_or_else(|| find_workspace_root().unwrap_or_else(|| PathBuf::from(".")));
        files.extend(workspace_files(&root));
    }
    if files.is_empty() {
        eprintln!("jets-lint: no input files (use --workspace or pass paths)");
        return ExitCode::from(2);
    }

    let (findings, stats) = lint_paths_with_stats(&files, default_threads());
    if verbose {
        eprintln!(
            "jets-lint: pass 1 (index, {} threads): {} files, {} fns in {:.1?}",
            stats.threads, stats.files, stats.funcs, stats.pass1
        );
        eprintln!(
            "jets-lint: pass 2 (graph + rules): {} lock edges in {:.1?}",
            stats.lock_edges, stats.pass2
        );
    }

    if fix_suppressions {
        return apply_fix_suppressions(&findings);
    }

    report(&findings, json);

    if deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Delete the unused-suppression lines the lint run identified, one
/// rewrite per file. Other findings are reported but untouched.
fn apply_fix_suppressions(findings: &[Finding]) -> ExitCode {
    let mut by_file: BTreeMap<&Path, BTreeSet<u32>> = BTreeMap::new();
    for f in findings {
        if is_unused_suppression(f) {
            by_file.entry(&f.path).or_default().insert(f.line);
        }
    }
    if by_file.is_empty() {
        eprintln!("jets-lint: no unused suppressions to remove");
        return ExitCode::SUCCESS;
    }
    let mut removed = 0usize;
    for (path, lines) in &by_file {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("jets-lint: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let fixed = strip_suppression_lines(&src, lines);
        if let Err(e) = std::fs::write(path, fixed) {
            eprintln!("jets-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        removed += lines.len();
        eprintln!(
            "jets-lint: {}: removed {} unused suppression(s)",
            path.display(),
            lines.len()
        );
    }
    eprintln!("jets-lint: removed {removed} unused suppression(s) total");
    ExitCode::SUCCESS
}

fn report(findings: &[Finding], json: bool) {
    if json {
        for f in findings {
            println!("{}", f.to_json());
        }
        return;
    }
    for f in findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("jets-lint: clean");
    } else {
        eprintln!("jets-lint: {} finding(s)", findings.len());
    }
}

/// Walk up from the current directory until the JETS workspace root is
/// recognized (the dispatcher source exists). Robust both from the real
/// repo root and from the offline-check shadow workspace, which runs
/// the same sources from a different cwd.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates/jets-core/src/dispatcher.rs").exists() {
            return Some(dir);
        }
        if !pop(&mut dir) {
            return None;
        }
    }
}

fn pop(dir: &mut PathBuf) -> bool {
    let parent: Option<&Path> = dir.parent();
    match parent {
        Some(p) => {
            let p = p.to_path_buf();
            *dir = p;
            true
        }
        None => false,
    }
}
