//! jets-lint CLI.
//!
//! ```text
//! jets-lint --workspace [--deny] [--json] [--root <dir>]
//! jets-lint <file.rs> [<file.rs> ...] [--deny] [--json]
//! ```
//!
//! `--workspace` walks the repo's Rust sources (crates/, src/, tests/)
//! excluding build output, lint fixtures, and vendored tooling.
//! `--deny` exits non-zero when any finding survives suppression — that
//! is the CI mode. `--json` emits one JSON object per finding on
//! stdout (a JSON-lines stream) for machine consumption.

use jets_lint::{lint_paths, workspace_files, Finding};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut workspace = false;
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("jets-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: jets-lint [--workspace] [--deny] [--json] [--root <dir>] [files...]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("jets-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    if workspace {
        let root =
            root.unwrap_or_else(|| find_workspace_root().unwrap_or_else(|| PathBuf::from(".")));
        files.extend(workspace_files(&root));
    }
    if files.is_empty() {
        eprintln!("jets-lint: no input files (use --workspace or pass paths)");
        return ExitCode::from(2);
    }

    let findings = lint_paths(&files);
    report(&findings, json);

    if deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn report(findings: &[Finding], json: bool) {
    if json {
        for f in findings {
            println!("{}", f.to_json());
        }
        return;
    }
    for f in findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("jets-lint: clean");
    } else {
        eprintln!("jets-lint: {} finding(s)", findings.len());
    }
}

/// Walk up from the current directory until the JETS workspace root is
/// recognized (the dispatcher source exists). Robust both from the real
/// repo root and from the offline-check shadow workspace, which runs
/// the same sources from a different cwd.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates/jets-core/src/dispatcher.rs").exists() {
            return Some(dir);
        }
        if !pop(&mut dir) {
            return None;
        }
    }
}

fn pop(dir: &mut PathBuf) -> bool {
    let parent: Option<&Path> = dir.parent();
    match parent {
        Some(p) => {
            let p = p.to_path_buf();
            *dir = p;
            true
        }
        None => false,
    }
}
