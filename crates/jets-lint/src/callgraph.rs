//! Pass 2 of the two-pass analysis: the workspace call graph and the
//! derived interprocedural facts.
//!
//! Nodes are the functions indexed by pass 1 ([`crate::index`]); edges
//! are *name-based and crate-scoped* — a call site `drain_outbox(..)`
//! (free or method form) resolves to every function named
//! `drain_outbox` **in the caller's own crate**. There is no
//! trait-object or generic resolution: a name that several same-crate
//! functions share resolves to all of them (union), which
//! over-approximates reachability within a crate at the price of
//! occasional false positives. Cross-crate edges are deliberately not
//! formed: without type information, `cvar.wait_for(..)` in the
//! dispatcher would otherwise resolve to the reactor's `poll(2)`
//! wrapper of the same name, and every such collision fabricates a
//! taint chain. Ubiquitous trait / teardown method names (`new`,
//! `clone`, `shutdown`, `kill`, …) are excluded from resolution
//! entirely — an edge through them would be noise, not signal. These
//! limits are documented in `docs/static-analysis.md`.
//!
//! Three facts are computed over the graph:
//!
//! * **Blocking taint** — a function that directly performs socket
//!   I/O, `sleep`, channel `recv`, or `flush` is tainted; taint
//!   propagates caller-ward along call edges (BFS, so recorded chains
//!   are shortest). Calls made inside `spawn(..)` argument lists do
//!   not propagate: the blocking happens on another thread. A blocking
//!   site covered by a reasoned `allow(lock-across-blocking)`
//!   suppression is documented-contract blocking and seeds no taint
//!   (see [`crate::index::blocking_contract_at`]).
//! * **Transitive lock sets** — the lock fields a function may acquire
//!   directly or through its callees, with a witness chain per field.
//! * **The lock-order graph** — an edge `A → B` for every site that
//!   acquires `B` (directly or transitively) while holding `A`. A
//!   cycle in this graph is a potential deadlock (rule J9).

use crate::index::{FileIndex, HeldGuard, BLOCKING_CALLS, BLOCKING_METHODS};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;

/// Names never resolved to call edges: ubiquitous trait / collection
/// method names where a name match says nothing about what is actually
/// called. `send` is here because the *blocking* sends (socket
/// writers) are caught receiver-sensitively by the direct detector,
/// while channel/outbox sends are non-blocking by design. `shutdown`,
/// `kill`, and `abort` are teardown verbs defined on sockets
/// (`TcpStream::shutdown`), processes (`process::abort`), and half the
/// workspace's handle types — a name match there is meaningless.
const UNRESOLVED_NAMES: &[&str] = &[
    "new",
    "default",
    "clone",
    "drop",
    "from",
    "into",
    "len",
    "is_empty",
    "get",
    "set",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "clear",
    "next",
    "iter",
    "send",
    "lock",
    "load",
    "store",
    "swap",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "as_ref",
    "as_mut",
    "deref",
    "deref_mut",
    "index",
    "to_string",
    "call",
    "min",
    "max",
    "map",
    "and_then",
    "unwrap_or",
    "shutdown",
    "kill",
    "abort",
];

/// A function node: (file index, function index) into the pass-1 output.
pub type NodeId = usize;

/// Why a function is blocking-tainted.
#[derive(Debug, Clone)]
pub enum TaintCause {
    /// Performs the op itself.
    Direct { op: String, line: u32 },
    /// Calls a tainted function.
    Call { callee: NodeId, line: u32 },
}

/// Why a lock field is in a function's transitive lock set.
#[derive(Debug, Clone)]
pub enum LockCause {
    Direct { line: u32 },
    Call { callee: NodeId, line: u32 },
}

/// One edge of the lock-order graph with its witness.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Namespaced lock held (`jets-core:sched`).
    pub from: String,
    /// Namespaced lock acquired while `from` is held.
    pub to: String,
    /// Where the edge is created: the acquisition (intra) or the call
    /// that leads to the acquisition (inter).
    pub path: PathBuf,
    pub line: u32,
    /// Function the witness site is in.
    pub func: String,
    /// Call chain from `func` to the function that acquires `to`
    /// (empty for a direct acquisition in `func` itself).
    pub chain: Vec<String>,
}

/// A lock-order cycle: the field ring plus one witness edge per hop.
#[derive(Debug, Clone)]
pub struct LockCycle {
    /// Canonicalized field ring (`a -> b -> a` stored as `[a, b]`).
    pub fields: Vec<String>,
    pub edges: Vec<LockEdge>,
}

/// The workspace call graph plus derived facts.
pub struct CallGraph<'a> {
    pub files: &'a [FileIndex],
    /// Node -> (file, fn) indices.
    pub nodes: Vec<(usize, usize)>,
    by_name: BTreeMap<String, Vec<NodeId>>,
    /// Blocking taint: node -> cause (absent = not tainted).
    taint: BTreeMap<NodeId, TaintCause>,
    /// Transitive lock sets: node -> (namespaced field -> cause).
    locksets: BTreeMap<NodeId, BTreeMap<String, LockCause>>,
    /// Lock-order edges, deduplicated by (from, to) keeping the first
    /// witness found (deterministic: files and functions in order).
    pub lock_edges: BTreeMap<(String, String), LockEdge>,
    /// Namespaced lock fields discovered from struct declarations
    /// (plus the canonical `sched` / `book` pair).
    pub lock_fields: BTreeSet<String>,
}

impl<'a> CallGraph<'a> {
    /// Build the graph and compute taint, lock sets, and lock edges.
    pub fn build(files: &'a [FileIndex]) -> CallGraph<'a> {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.funcs.iter().enumerate() {
                // Test functions are indexed but are not resolution
                // targets: production code never calls them, and their
                // free use of blocking ops must not taint same-named
                // production helpers.
                if file.file_is_test || f.in_test {
                    continue;
                }
                let id = nodes.len();
                nodes.push((fi, gi));
                by_name.entry(f.name.clone()).or_default().push(id);
            }
        }

        // Lock-field universe: declared Mutex/RwLock fields, namespaced
        // by crate, plus the canonical dispatcher pair.
        let mut lock_fields = BTreeSet::new();
        let mut rwlock_fields = BTreeSet::new();
        for file in files.iter() {
            for d in &file.lock_decls {
                lock_fields.insert(format!("{}:{}", file.krate, d.field));
                if d.kind == "RwLock" {
                    rwlock_fields.insert(format!("{}:{}", file.krate, d.field));
                }
            }
        }
        for file in files.iter() {
            // sched/book are lock fields wherever they are used, even
            // in fixture sets that carry no struct declaration.
            lock_fields.insert(format!("{}:sched", file.krate));
            lock_fields.insert(format!("{}:book", file.krate));
        }

        let mut g = CallGraph {
            files,
            nodes,
            by_name,
            taint: BTreeMap::new(),
            locksets: BTreeMap::new(),
            lock_edges: BTreeMap::new(),
            lock_fields,
        };
        g.compute_taint();
        g.compute_locksets(&rwlock_fields);
        g.compute_lock_edges(&rwlock_fields);
        g
    }

    // The `'a` returns are deliberate: facts live in the pass-1 slice,
    // not in `self`, so holding one does not freeze the graph's own
    // mutable state (taint / lockset maps) during computation.
    fn facts(&self, id: NodeId) -> &'a crate::index::FnFacts {
        let (fi, gi) = self.nodes[id];
        &self.files[fi].funcs[gi]
    }

    fn file_of(&self, id: NodeId) -> &'a FileIndex {
        &self.files[self.nodes[id].0]
    }

    /// Resolve a call-site name in crate `krate` to candidate nodes:
    /// name-based, restricted to functions defined in the same crate
    /// (cross-crate name matches fabricate edges — see module doc).
    /// Empty for unknown or deliberately-unresolved names.
    pub fn resolve(&self, krate: &str, name: &str) -> Vec<NodeId> {
        if UNRESOLVED_NAMES.contains(&name)
            || BLOCKING_METHODS.contains(&name)
            || BLOCKING_CALLS.contains(&name)
        {
            return Vec::new();
        }
        self.by_name
            .get(name)
            .map(|v| {
                v.iter()
                    .copied()
                    .filter(|&id| self.file_of(id).krate == krate)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Caller-ward BFS from directly-blocking functions. BFS order
    /// means every recorded cause chain is a shortest witness.
    fn compute_taint(&mut self) {
        // Reverse edges: callee -> callers (with the call line).
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for id in 0..self.nodes.len() {
            let file = self.file_of(id);
            let f = self.facts(id);
            // A blocking site under a reasoned allow(lock-across-blocking)
            // suppression is documented-contract blocking (bounded,
            // reviewed) and does not seed taint — otherwise every caller
            // of the journal's serialized WAL write would re-litigate
            // the decision its root suppression already records.
            if let Some(b) = f
                .blocking
                .iter()
                .find(|b| !b.in_spawn && !crate::index::blocking_contract_at(file, b.line))
            {
                self.taint.insert(
                    id,
                    TaintCause::Direct {
                        op: b.op.clone(),
                        line: b.line,
                    },
                );
                queue.push_back(id);
            }
        }
        // Build caller adjacency once: callee -> [(caller, line)].
        let mut callers: BTreeMap<NodeId, Vec<(NodeId, u32)>> = BTreeMap::new();
        for id in 0..self.nodes.len() {
            let krate = &self.file_of(id).krate;
            let f = self.facts(id);
            for c in &f.calls {
                if c.in_spawn {
                    continue;
                }
                for callee in self.resolve(krate, &c.name) {
                    if callee != id {
                        callers.entry(callee).or_default().push((id, c.line));
                    }
                }
            }
        }
        while let Some(id) = queue.pop_front() {
            if let Some(cs) = callers.get(&id) {
                let cs = cs.clone();
                for (caller, line) in cs {
                    if let std::collections::btree_map::Entry::Vacant(e) = self.taint.entry(caller)
                    {
                        e.insert(TaintCause::Call { callee: id, line });
                        queue.push_back(caller);
                    }
                }
            }
        }
    }

    /// Is the function at `id` blocking-tainted?
    pub fn tainted(&self, id: NodeId) -> bool {
        self.taint.contains_key(&id)
    }

    /// First tainted candidate for a call-site name in crate `krate`,
    /// if any.
    pub fn tainted_callee(&self, krate: &str, name: &str) -> Option<NodeId> {
        self.resolve(krate, name)
            .into_iter()
            .find(|id| self.tainted(*id))
    }

    /// The taint witness chain starting at `id`: function names down
    /// the call chain, ending with the blocking op itself
    /// (`["drain_outbox", ".flush()"]`).
    pub fn taint_chain(&self, id: NodeId) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = id;
        let mut hops = 0;
        loop {
            out.push(self.facts(cur).name.clone());
            match self.taint.get(&cur) {
                Some(TaintCause::Direct { op, .. }) => {
                    out.push(op.clone());
                    break;
                }
                Some(TaintCause::Call { callee, .. }) => {
                    cur = *callee;
                }
                None => break,
            }
            hops += 1;
            if hops > 32 {
                out.push("…".to_string());
                break;
            }
        }
        out
    }

    /// Namespace a raw receiver field against the declared lock-field
    /// universe. The receiver's crate is assumed to be the use site's
    /// crate (no type resolution); a field declared in no crate under
    /// that name is not a lock.
    fn lock_node(
        &self,
        krate: &str,
        field: &str,
        method: &str,
        rw: &BTreeSet<String>,
    ) -> Option<String> {
        if field.is_empty() {
            return None;
        }
        let key = format!("{krate}:{field}");
        match method {
            // `.read()` / `.write()` only count on declared RwLock
            // fields — everything else is Read/Write trait I/O.
            "read" | "write" => rw.contains(&key).then_some(key),
            _ => self.lock_fields.contains(&key).then_some(key),
        }
    }

    /// Fixpoint: lockset(f) = direct locks ∪ ⋃ lockset(callees).
    fn compute_locksets(&mut self, rw: &BTreeSet<String>) {
        // Seed with direct acquisitions.
        for id in 0..self.nodes.len() {
            let krate = self.file_of(id).krate.clone();
            let f = self.facts(id);
            let mut set: BTreeMap<String, LockCause> = BTreeMap::new();
            for l in &f.locks {
                if l.in_spawn {
                    continue;
                }
                if let Some(node) = self.lock_node(&krate, &l.field, &l.method, rw) {
                    set.entry(node)
                        .or_insert_with(|| LockCause::Direct { line: l.line });
                }
            }
            if !set.is_empty() {
                self.locksets.insert(id, set);
            }
        }
        // Propagate caller-ward until stable. The graph is small
        // (thousands of nodes, lock fields in the tens), so a simple
        // sweep loop converges in a handful of iterations.
        loop {
            let mut changed = false;
            for id in 0..self.nodes.len() {
                let krate = self.file_of(id).krate.clone();
                let f = self.facts(id);
                let mut add: Vec<(String, LockCause)> = Vec::new();
                for c in &f.calls {
                    if c.in_spawn {
                        continue;
                    }
                    for callee in self.resolve(&krate, &c.name) {
                        if callee == id {
                            continue;
                        }
                        if let Some(cs) = self.locksets.get(&callee) {
                            for field in cs.keys() {
                                let have = self
                                    .locksets
                                    .get(&id)
                                    .map(|s| s.contains_key(field))
                                    .unwrap_or(false);
                                if !have {
                                    add.push((
                                        field.clone(),
                                        LockCause::Call {
                                            callee,
                                            line: c.line,
                                        },
                                    ));
                                }
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    let set = self.locksets.entry(id).or_default();
                    for (field, cause) in add {
                        if let std::collections::btree_map::Entry::Vacant(e) = set.entry(field) {
                            e.insert(cause);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// The chain of function names from `id` to the function that
    /// directly acquires `field` (exclusive of `id` itself).
    fn lock_chain(&self, id: NodeId, field: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = id;
        let mut hops = 0;
        while let Some(cause) = self.locksets.get(&cur).and_then(|s| s.get(field)) {
            match cause {
                LockCause::Direct { .. } => break,
                LockCause::Call { callee, .. } => {
                    out.push(self.facts(*callee).name.clone());
                    cur = *callee;
                }
            }
            hops += 1;
            if hops > 32 {
                out.push("…".to_string());
                break;
            }
        }
        out
    }

    /// Build the lock-order graph: an edge `H → L` for every site that
    /// acquires `L` (directly, or transitively through a call) while
    /// holding `H`.
    fn compute_lock_edges(&mut self, rw: &BTreeSet<String>) {
        let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
        for id in 0..self.nodes.len() {
            let file = self.file_of(id);
            let krate = file.krate.clone();
            let path = file.path.clone();
            let f = self.facts(id);
            let held_nodes = |held: &[HeldGuard]| -> Vec<String> {
                held.iter()
                    .filter_map(|h| self.lock_node(&krate, &h.field, "lock", rw))
                    .collect()
            };
            // Intra: direct acquisition while holding.
            for l in &f.locks {
                if l.in_spawn {
                    continue;
                }
                let Some(to) = self.lock_node(&krate, &l.field, &l.method, rw) else {
                    continue;
                };
                for from in held_nodes(&l.held) {
                    if from == to {
                        continue; // re-entry is J1's domain
                    }
                    edges
                        .entry((from.clone(), to.clone()))
                        .or_insert_with(|| LockEdge {
                            from,
                            to: to.clone(),
                            path: path.clone(),
                            line: l.line,
                            func: f.name.clone(),
                            chain: Vec::new(),
                        });
                }
            }
            // Inter: call while holding, callee transitively acquires.
            for c in &f.calls {
                if c.in_spawn || c.held.is_empty() {
                    continue;
                }
                for callee in self.resolve(&krate, &c.name) {
                    if callee == id {
                        continue;
                    }
                    let Some(cs) = self.locksets.get(&callee) else {
                        continue;
                    };
                    let targets: Vec<String> = cs.keys().cloned().collect();
                    for to in targets {
                        // A `from == to` edge here is a transitive
                        // re-entry of a held lock — a self-deadlock the
                        // intra rule J1 cannot see; it becomes a
                        // 1-cycle in the lock graph.
                        for from in held_nodes(&c.held) {
                            let mut chain = vec![self.facts(callee).name.clone()];
                            chain.extend(self.lock_chain(callee, &to));
                            edges
                                .entry((from.clone(), to.clone()))
                                .or_insert_with(|| LockEdge {
                                    from,
                                    to: to.clone(),
                                    path: path.clone(),
                                    line: c.line,
                                    func: f.name.clone(),
                                    chain,
                                });
                        }
                    }
                }
            }
        }
        self.lock_edges = edges;
    }

    /// Find lock-order cycles: for every edge `a → b`, the shortest
    /// path `b → … → a` (BFS) closes a cycle. Cycles are deduplicated
    /// by their canonical field rotation, so each distinct ring is
    /// reported once. Self-edges (`a → a`, transitive re-entry) are
    /// 1-cycles.
    pub fn lock_cycles(&self) -> Vec<LockCycle> {
        // Adjacency over fields.
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (from, to) in self.lock_edges.keys() {
            adj.entry(from.as_str()).or_default().push(to.as_str());
        }
        let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
        let mut out = Vec::new();
        for (from, to) in self.lock_edges.keys() {
            let ring: Option<Vec<String>> = if from == to {
                Some(vec![from.clone()])
            } else {
                // BFS from `to` back to `from`.
                let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
                let mut q = VecDeque::new();
                q.push_back(to.as_str());
                let mut found = false;
                while let Some(n) = q.pop_front() {
                    if n == from.as_str() {
                        found = true;
                        break;
                    }
                    for &m in adj.get(n).map(|v| v.as_slice()).unwrap_or(&[]) {
                        if m != to.as_str() && !prev.contains_key(m) {
                            prev.insert(m, n);
                            q.push_back(m);
                        }
                    }
                }
                if found {
                    // Reconstruct to -> ... -> from, then the ring is
                    // [from, to, ..] without the closing repeat.
                    let mut rev = vec![from.as_str()];
                    let mut cur = from.as_str();
                    while cur != to.as_str() {
                        cur = prev[cur];
                        rev.push(cur);
                    }
                    rev.reverse(); // to .. from
                    let mut ring: Vec<String> = vec![from.clone()];
                    ring.extend(rev.iter().take(rev.len() - 1).map(|s| s.to_string()));
                    Some(ring)
                } else {
                    None
                }
            };
            let Some(ring) = ring else { continue };
            // Canonical rotation: start at the lexicographically
            // smallest field.
            let min_pos = ring
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| f.as_str())
                .map(|(i, _)| i)
                .unwrap_or(0);
            let canon: Vec<String> = ring[min_pos..]
                .iter()
                .chain(ring[..min_pos].iter())
                .cloned()
                .collect();
            if !seen.insert(canon.clone()) {
                continue;
            }
            // Witness edges along the ring.
            let mut edges = Vec::new();
            let n = canon.len();
            let mut complete = true;
            for i in 0..n {
                let a = &canon[i];
                let b = &canon[(i + 1) % n];
                match self.lock_edges.get(&(a.clone(), b.clone())) {
                    Some(e) => edges.push(e.clone()),
                    None => complete = false,
                }
            }
            if complete {
                out.push(LockCycle {
                    fields: canon,
                    edges,
                });
            }
        }
        out
    }
}
