//! Fixture-driven self-test: every rule must be proven live by a
//! known-bad snippet (exact rule ids and line spans, nothing else), and
//! every known-good snippet must pass clean. A final test lints the
//! real workspace and asserts zero unsuppressed findings — the CI gate,
//! enforced from the test suite as well.

use jets_lint::{lint_paths, Finding};
use std::path::{Path, PathBuf};

fn fixture(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rel)
}

/// Lint one fixture file and return `(rule_id, line)` pairs, sorted.
fn fired(rel: &str) -> Vec<(String, u32)> {
    let findings = lint_paths(&[fixture(rel)]);
    let mut out: Vec<(String, u32)> = findings
        .iter()
        .map(|f| (f.rule.id().to_string(), f.line))
        .collect();
    out.sort();
    out
}

fn assert_clean(rel: &str) {
    let findings = lint_paths(&[fixture(rel)]);
    assert!(
        findings.is_empty(),
        "expected {rel} to be clean, got:\n{}",
        render(&findings)
    );
}

fn render(findings: &[Finding]) -> String {
    findings
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn lock_order_bad_fires_exactly() {
    assert_eq!(fired("lock-order/bad.rs"), vec![("J1".to_string(), 3)]);
}

#[test]
fn lock_order_good_is_clean() {
    assert_clean("lock-order/good.rs");
}

#[test]
fn lock_across_blocking_bad_fires_exactly() {
    assert_eq!(
        fired("lock-across-blocking/bad.rs"),
        vec![("J2".to_string(), 3), ("J2".to_string(), 9)]
    );
}

#[test]
fn lock_across_blocking_good_is_clean() {
    assert_clean("lock-across-blocking/good.rs");
}

#[test]
fn relaxed_bad_fires_exactly() {
    assert_eq!(fired("relaxed/bad.rs"), vec![("J3".to_string(), 2)]);
}

#[test]
fn relaxed_good_is_clean() {
    assert_clean("relaxed/good.rs");
}

#[test]
fn protocol_bad_fires_exactly() {
    // The wildcard arm (line 10) and the missing-variant summary on the
    // match itself (line 8).
    assert_eq!(
        fired("protocol/bad.rs"),
        vec![("J4".to_string(), 8), ("J4".to_string(), 10)]
    );
}

#[test]
fn protocol_good_is_clean() {
    assert_clean("protocol/good.rs");
}

#[test]
fn exit_code_bad_fires_exactly() {
    assert_eq!(
        fired("exit-code/bad.rs"),
        vec![("J5".to_string(), 2), ("J5".to_string(), 6)]
    );
}

#[test]
fn exit_code_good_is_clean() {
    assert_clean("exit-code/good.rs");
}

#[test]
fn exit_code_registry_file_is_exempt() {
    assert_clean("exit-code/spec.rs");
}

#[test]
fn unwrap_bad_fires_exactly() {
    assert_eq!(
        fired("unwrap/bad.rs"),
        vec![
            ("J6".to_string(), 2),
            ("J6".to_string(), 7),
            ("J6".to_string(), 12),
            ("J6".to_string(), 17),
            ("J6".to_string(), 22)
        ]
    );
}

#[test]
fn unwrap_good_is_clean() {
    assert_clean("unwrap/good.rs");
}

#[test]
fn reactor_bad_fires_exactly() {
    // Blocking recv in a callback (line 2), spawn in a callback (line
    // 3), spawn in a reactor-scoped serve path (line 8).
    assert_eq!(
        fired("reactor/bad.rs"),
        vec![
            ("J7".to_string(), 2),
            ("J7".to_string(), 3),
            ("J7".to_string(), 8)
        ]
    );
}

#[test]
fn reactor_good_is_clean() {
    assert_clean("reactor/good.rs");
}

#[test]
fn ring_bad_fires_exactly() {
    // Writer-path violations in `push_frame`: lock (2), allocating
    // method (3), allocating macro (4), allocating constructor (5),
    // blocking sleep (6) — plus the strict ring form of J3 on the
    // unannotated Relaxed claim cursor in `record_claim` (9), and the
    // span-emitter extension: lock (12) and `format!` (13) in
    // `span_start`, allocating method (16) in `emit_span`.
    assert_eq!(
        fired("ring/bad.rs"),
        vec![
            ("J3".to_string(), 9),
            ("J8".to_string(), 2),
            ("J8".to_string(), 3),
            ("J8".to_string(), 4),
            ("J8".to_string(), 5),
            ("J8".to_string(), 6),
            ("J8".to_string(), 12),
            ("J8".to_string(), 13),
            ("J8".to_string(), 16)
        ]
    );
}

#[test]
fn ring_good_is_clean() {
    assert_clean("ring/good.rs");
}

#[test]
fn suppression_bad_fires_exactly() {
    // Missing reason (J0@2) does NOT silence the sentinel (J5@3);
    // unknown key (J0@6); unused suppression (J0@9).
    assert_eq!(
        fired("suppression/bad.rs"),
        vec![
            ("J0".to_string(), 2),
            ("J0".to_string(), 6),
            ("J0".to_string(), 9),
            ("J5".to_string(), 3),
        ]
    );
}

#[test]
fn suppression_good_is_clean() {
    assert_clean("suppression/good.rs");
}

#[test]
fn callgraph_two_hop_taint_bad_fires_exactly() {
    // The call to the blocking helper under the live guard (line 7).
    assert_eq!(
        fired("callgraph/taint-2hop/bad.rs"),
        vec![("J2".to_string(), 7)]
    );
}

#[test]
fn callgraph_two_hop_taint_reports_full_chain() {
    let findings = lint_paths(&[fixture("callgraph/taint-2hop/bad.rs")]);
    assert_eq!(findings.len(), 1, "{}", render(&findings));
    assert_eq!(
        findings[0].chain,
        vec!["serve_tick", "drain_outbox", ".flush()"]
    );
    assert!(
        findings[0]
            .message
            .contains("serve_tick -> drain_outbox -> .flush()"),
        "chain missing from diagnostic: {}",
        findings[0]
    );
}

#[test]
fn callgraph_two_hop_taint_good_is_clean() {
    assert_clean("callgraph/taint-2hop/good.rs");
}

#[test]
fn callgraph_three_hop_taint_bad_fires_exactly() {
    // The reactor callback's call into the 3-hop blocking chain
    // (line 10), with every hop in the diagnostic.
    assert_eq!(
        fired("callgraph/taint-3hop/bad.rs"),
        vec![("J7".to_string(), 10)]
    );
    let findings = lint_paths(&[fixture("callgraph/taint-3hop/bad.rs")]);
    assert_eq!(
        findings[0].chain,
        vec!["on_frame", "settle", "nap", "sleep()"]
    );
}

#[test]
fn callgraph_three_hop_taint_good_is_clean() {
    assert_clean("callgraph/taint-3hop/good.rs");
}

#[test]
fn callgraph_lock_cycle_bad_fires_exactly() {
    // One cycle, anchored at the inter-procedural witness edge: the
    // call made while `book` is held (line 9).
    assert_eq!(
        fired("callgraph/lock-cycle/bad.rs"),
        vec![("J9".to_string(), 9)]
    );
    let findings = lint_paths(&[fixture("callgraph/lock-cycle/bad.rs")]);
    assert!(
        findings[0].message.contains("touch_sched"),
        "witness path missing: {}",
        findings[0]
    );
}

#[test]
fn callgraph_lock_cycle_good_is_clean() {
    assert_clean("callgraph/lock-cycle/good.rs");
}

#[test]
fn callgraph_parity_bad_fires_exactly() {
    // `WorkerMsg::Zombie` is constructed (line 7) but matched nowhere.
    assert_eq!(
        fired("callgraph/parity/bad.rs"),
        vec![("J10".to_string(), 7)]
    );
}

#[test]
fn callgraph_parity_good_is_clean() {
    assert_clean("callgraph/parity/good.rs");
}

/// The acceptance gate, runnable from the test suite: the real tree
/// must carry zero unsuppressed findings. Walks up from this crate to
/// the workspace root (works from the real crate and from the
/// offline-check shadow, whose sources are symlinks).
#[test]
fn workspace_is_clean() {
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = loop {
        if root.join("crates/jets-core/src/dispatcher.rs").exists() {
            break root;
        }
        assert!(
            root.pop(),
            "workspace root not found above CARGO_MANIFEST_DIR"
        );
    };
    let files = jets_lint::workspace_files(&root);
    assert!(
        files.len() > 20,
        "workspace walk found suspiciously few files ({})",
        files.len()
    );
    let findings = lint_paths(&files);
    assert!(
        findings.is_empty(),
        "workspace has unsuppressed jets-lint findings:\n{}",
        render(&findings)
    );
}
