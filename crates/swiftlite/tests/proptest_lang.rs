//! Property-based tests of the language front-end and evaluator.

use proptest::prelude::*;
use std::sync::Arc;
use swiftlite::{FnExecutor, RunOptions, Workflow};

/// A model expression we can both render as swiftlite source and
/// evaluate in Rust.
#[derive(Debug, Clone)]
enum ModelExpr {
    Lit(i64),
    Add(Box<ModelExpr>, Box<ModelExpr>),
    Sub(Box<ModelExpr>, Box<ModelExpr>),
    Mul(Box<ModelExpr>, Box<ModelExpr>),
    Mod(Box<ModelExpr>, Box<ModelExpr>),
}

impl ModelExpr {
    fn render(&self) -> String {
        match self {
            ModelExpr::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -v)
                } else {
                    v.to_string()
                }
            }
            ModelExpr::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            ModelExpr::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            ModelExpr::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            ModelExpr::Mod(a, b) => format!("({} %% {})", a.render(), b.render()),
        }
    }

    fn eval(&self) -> i64 {
        match self {
            ModelExpr::Lit(v) => *v,
            ModelExpr::Add(a, b) => a.eval().wrapping_add(b.eval()),
            ModelExpr::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            ModelExpr::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            ModelExpr::Mod(a, b) => a.eval().rem_euclid(b.eval()),
        }
    }
}

fn model_expr() -> impl Strategy<Value = ModelExpr> {
    let leaf = (-50i64..50).prop_map(ModelExpr::Lit);
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ModelExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ModelExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ModelExpr::Mul(Box::new(a), Box::new(b))),
            // Divisor strictly positive so %% is total.
            (inner, (1i64..40).prop_map(ModelExpr::Lit))
                .prop_map(|(a, b)| ModelExpr::Mod(Box::new(a), Box::new(b))),
        ]
    })
}

fn options(tag: u64) -> RunOptions {
    RunOptions {
        work_dir: std::env::temp_dir().join(format!("swift-prop-{tag}-{}", std::process::id())),
        wait_timeout: std::time::Duration::from_secs(20),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The interpreter agrees with a reference evaluator on arbitrary
    /// integer arithmetic, including the Swift `%%` operator.
    #[test]
    fn arithmetic_matches_reference(expr in model_expr(), tag in 0u64..1_000_000) {
        // Keep magnitudes sane: reject overflow-prone trees by value.
        let expected = expr.eval();
        prop_assume!(expected.abs() < 1_000_000_000);
        let source = format!("int r = {};\ntrace(r);\n", expr.render());
        let report = Workflow::parse(&source)
            .unwrap()
            .run(Arc::new(FnExecutor::new()), options(tag))
            .unwrap();
        prop_assert_eq!(&report.traces, &vec![expected.to_string()]);
    }

    /// The lexer/parser never panic on arbitrary input — they return
    /// structured errors.
    #[test]
    fn parser_total_on_arbitrary_input(src in ".{0,200}") {
        let _ = Workflow::parse(&src);
    }

    /// The parser is total on inputs built from language-ish tokens too
    /// (denser in near-miss programs than uniformly random text).
    #[test]
    fn parser_total_on_tokenish_input(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("int".to_string()),
                Just("file".to_string()),
                Just("foreach".to_string()),
                Just("app".to_string()),
                Just("if".to_string()),
                Just("=".to_string()),
                Just(";".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just("%%".to_string()),
                Just("x".to_string()),
                Just("42".to_string()),
                Just("\"s\"".to_string()),
            ],
            0..30,
        )
    ) {
        let src = tokens.join(" ");
        let _ = Workflow::parse(&src);
    }

    /// strcat agrees with plain Rust concatenation for arbitrary
    /// alphanumeric fragments.
    #[test]
    fn strcat_matches_reference(parts in prop::collection::vec("[a-zA-Z0-9_.]{0,10}", 1..6), tag in 0u64..1_000_000) {
        let args = parts
            .iter()
            .map(|p| format!("\"{p}\""))
            .collect::<Vec<_>>()
            .join(", ");
        let source = format!("trace(strcat({args}));\n");
        let report = Workflow::parse(&source)
            .unwrap()
            .run(Arc::new(FnExecutor::new()), options(tag.wrapping_add(1)))
            .unwrap();
        prop_assert_eq!(&report.traces, &vec![parts.concat()]);
    }

    /// foreach over [lo:hi] visits exactly the inclusive range, whatever
    /// the bounds.
    #[test]
    fn foreach_covers_inclusive_range(lo in -20i64..20, span in 0i64..20, tag in 0u64..1_000_000) {
        let hi = lo + span;
        let source = format!("foreach i in [{lo}:{hi}] {{ trace(i); }}\n");
        let report = Workflow::parse(&source)
            .unwrap()
            .run(Arc::new(FnExecutor::new()), options(tag.wrapping_add(2)))
            .unwrap();
        let mut got: Vec<i64> = report.traces.iter().map(|t| t.parse().unwrap()).collect();
        got.sort_unstable();
        prop_assert_eq!(got, (lo..=hi).collect::<Vec<_>>());
    }
}
