//! End-to-end tests of the swiftlite dataflow engine.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use swiftlite::{AppCall, FnExecutor, RunOptions, Workflow};

fn options(tag: &str) -> RunOptions {
    RunOptions {
        work_dir: std::env::temp_dir().join(format!("swift-test-{tag}-{}", std::process::id())),
        wait_timeout: Duration::from_secs(30),
    }
}

fn run(source: &str, executor: FnExecutor, tag: &str) -> swiftlite::WorkflowReport {
    Workflow::parse(source)
        .unwrap()
        .run(Arc::new(executor), options(tag))
        .unwrap()
}

#[test]
fn arithmetic_and_trace() {
    let report = run(
        r#"
        int a = 6;
        int b = a * 7;
        trace("answer", b);
        "#,
        FnExecutor::new(),
        "arith",
    );
    assert_eq!(report.traces, vec!["answer 42".to_string()]);
    assert_eq!(report.apps_run, 0);
}

#[test]
fn dataflow_runs_out_of_textual_order() {
    // The trace depends on `b`, which is assigned *after* it textually;
    // statement-level concurrency must resolve it.
    let report = run(
        r#"
        int a;
        trace("value", a + 1);
        a = 41;
        "#,
        FnExecutor::new(),
        "order",
    );
    assert_eq!(report.traces, vec!["value 42".to_string()]);
}

#[test]
fn foreach_expands_and_runs_concurrently() {
    let counter = Arc::new(AtomicUsize::new(0));
    let executor = FnExecutor::new();
    let c = Arc::clone(&counter);
    executor.register("tick", move |_call: &AppCall| {
        c.fetch_add(1, Ordering::SeqCst);
        Ok(())
    });
    let report = run(
        r#"
        app (file o) tick (int i) {
            "tick" i
        }
        foreach i in [0:9] {
            file out;
            out = tick(i);
        }
        "#,
        executor,
        "foreach",
    );
    assert_eq!(report.apps_run, 10);
    assert_eq!(counter.load(Ordering::SeqCst), 10);
}

#[test]
fn app_outputs_flow_into_dependent_apps() {
    // b depends on a's output file; check the path threads through and
    // ordering holds.
    let log: Arc<parking_lot::Mutex<Vec<String>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let executor = FnExecutor::new();
    let l1 = Arc::clone(&log);
    executor.register("stage", move |call: &AppCall| {
        l1.lock().push(call.args.join(" "));
        Ok(())
    });
    let report = run(
        r#"
        app (file o) stage (string tag, file input) {
            "stage" tag @input
        }
        app (file o) first (string tag) {
            "stage" tag "none"
        }
        file a <"/tmp/swift-chain-a">;
        file b <"/tmp/swift-chain-b">;
        a = first("one");
        b = stage("two", a);
        "#,
        executor,
        "chain",
    );
    assert_eq!(report.apps_run, 2);
    let entries = log.lock().clone();
    assert_eq!(entries[0], "one none");
    assert_eq!(entries[1], "two /tmp/swift-chain-a");
}

#[test]
fn multi_output_apps_fulfil_all_targets() {
    let executor = FnExecutor::new();
    executor.register("produce", |_call: &AppCall| Ok(()));
    let report = run(
        r#"
        app (file c, file v) produce (int k) {
            "produce" k @c @v
        }
        file cs[] <simple_mapper; prefix="/tmp/none/c_", suffix=".coor">;
        file vs[] <simple_mapper; prefix="/tmp/none/v_", suffix=".vel">;
        (cs[3], vs[3]) = produce(3);
        trace("made", @cs[3], @vs[3]);
        "#,
        executor,
        "multi",
    );
    assert_eq!(report.apps_run, 1);
    assert_eq!(
        report.traces,
        vec!["made /tmp/none/c_3.coor /tmp/none/v_3.vel".to_string()]
    );
}

#[test]
fn modulus_and_if_control_flow() {
    let report = run(
        r#"
        foreach j in [0:5] {
            if (j %% 2 == 1) {
                trace("odd", j);
            }
        }
        "#,
        FnExecutor::new(),
        "mod",
    );
    let mut traces = report.traces.clone();
    traces.sort();
    assert_eq!(traces, vec!["odd 1", "odd 3", "odd 5"]);
}

#[test]
fn string_builtins() {
    let report = run(
        r#"
        string s = strcat("a", 1, "-", 2.5);
        trace(s);
        trace(toString(7));
        trace(toInt("12") + 1);
        trace(toFloat("1.5") * 2);
        "#,
        FnExecutor::new(),
        "strings",
    );
    let mut traces = report.traces.clone();
    traces.sort();
    assert_eq!(traces, vec!["13", "3.0", "7", "a1-2.5"]);
}

#[test]
fn app_failure_fails_the_workflow() {
    let executor = FnExecutor::new();
    executor.register("explode", |_call: &AppCall| Err("boom".to_string()));
    let err = Workflow::parse(
        r#"
        app (file o) explode () {
            "explode"
        }
        file out;
        out = explode();
        "#,
    )
    .unwrap()
    .run(Arc::new(executor), options("fail"))
    .unwrap_err();
    assert!(err.message.contains("boom"), "got: {}", err.message);
}

#[test]
fn double_assignment_is_an_error() {
    let err = Workflow::parse("int x;\nx = 1;\nx = 2;\n")
        .unwrap()
        .run(Arc::new(FnExecutor::new()), options("double"))
        .unwrap_err();
    assert!(
        err.message.contains("assigned twice"),
        "got: {}",
        err.message
    );
}

#[test]
fn missing_producer_times_out_with_diagnosis() {
    let mut opts = options("hang");
    opts.wait_timeout = Duration::from_millis(100);
    let err = Workflow::parse("int x;\ntrace(x);\n")
        .unwrap()
        .run(Arc::new(FnExecutor::new()), opts)
        .unwrap_err();
    assert!(err.message.contains("timed out"), "got: {}", err.message);
}

#[test]
fn preexisting_mapped_file_is_an_input() {
    let dir = std::env::temp_dir().join(format!("swift-input-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("seed.dat");
    std::fs::write(&input, "seed").unwrap();
    let executor = FnExecutor::new();
    let seen = Arc::new(parking_lot::Mutex::new(String::new()));
    let s2 = Arc::clone(&seen);
    executor.register("consume", move |call: &AppCall| {
        *s2.lock() = call.args[0].clone();
        Ok(())
    });
    let source = format!(
        r#"
        app (file o) consume (file input) {{
            "consume" @input
        }}
        file seed <"{}">;
        file out;
        out = consume(seed);
        "#,
        input.to_string_lossy()
    );
    let report = run(&source, executor, "input");
    assert_eq!(report.apps_run, 1);
    assert_eq!(*seen.lock(), input.to_string_lossy());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn nested_foreach_with_dataflow_chain() {
    // A miniature REM dependency structure: segment (i, j+1) consumes
    // segment (i, j)'s output. Track per-chain completion order.
    let executor = FnExecutor::new();
    let order: Arc<parking_lot::Mutex<Vec<String>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let o2 = Arc::clone(&order);
    executor.register("seg", move |call: &AppCall| {
        o2.lock().push(call.args.join(","));
        Ok(())
    });
    let report = run(
        r#"
        app (file o) seg (int i, int j, file prev) {
            "seg" i j
        }
        app (file o) seed (int i) {
            "seg" i "-1"
        }
        int replicas = 3;
        int segments = 3;
        file c[];
        foreach i in [0:replicas-1] {
            c[i * 10] = seed(i);
            foreach j in [0:segments-1] {
                c[i * 10 + j + 1] = seg(i, j, c[i * 10 + j]);
            }
        }
        "#,
        executor,
        "nested",
    );
    assert_eq!(report.apps_run, 12); // 3 seeds + 9 segments
    let entries = order.lock().clone();
    // Within each replica chain, segments must appear in j order.
    for i in 0..3 {
        let js: Vec<&String> = entries
            .iter()
            .filter(|e| e.starts_with(&format!("{i},")) && !e.ends_with("-1"))
            .collect();
        let positions: Vec<i32> = js
            .iter()
            .map(|e| e.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted, "chain {i} out of order: {entries:?}");
    }
}

#[test]
fn mpi_attributes_reach_the_executor() {
    let executor = FnExecutor::new();
    let shapes: Arc<parking_lot::Mutex<Vec<(u32, u32)>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let s2 = Arc::clone(&shapes);
    executor.register("par", move |call: &AppCall| {
        s2.lock().push((call.nodes, call.ppn));
        Ok(())
    });
    let report = run(
        r#"
        app (file o) par (int n) mpi(nodes=n, ppn=2) {
            "par" n
        }
        file a;
        file b;
        a = par(4);
        b = par(8);
        "#,
        executor,
        "mpi",
    );
    assert_eq!(report.apps_run, 2);
    let mut got = shapes.lock().clone();
    got.sort_unstable();
    assert_eq!(got, vec![(4, 2), (8, 2)]);
}

#[test]
fn stdout_redirect_reaches_executor() {
    let executor = FnExecutor::new();
    let paths: Arc<parking_lot::Mutex<Vec<Option<String>>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let p2 = Arc::clone(&paths);
    executor.register("say", move |call: &AppCall| {
        p2.lock().push(call.stdout.clone());
        Ok(())
    });
    run(
        r#"
        app (file o) say (string w) {
            "say" w stdout=@o
        }
        file out <"/tmp/swift-say.log">;
        out = say("hello");
        "#,
        executor,
        "stdout",
    );
    assert_eq!(
        paths.lock().clone(),
        vec![Some("/tmp/swift-say.log".to_string())]
    );
}

#[test]
fn read_data_consumes_a_produced_file() {
    let executor = FnExecutor::new();
    executor.register("emit", |call: &AppCall| {
        std::fs::write(call.stdout.as_ref().unwrap(), "42\n").map_err(|e| e.to_string())
    });
    let dir = std::env::temp_dir().join(format!("swift-readdata-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let source = format!(
        r#"
        app (file o) emit () {{
            "emit" stdout=@o
        }}
        file out <"{}/answer.txt">;
        out = emit();
        int answer = toInt(readData(out));
        trace("answer", answer + 1);
        "#,
        dir.display()
    );
    let report = run(&source, executor, "readdata");
    assert_eq!(report.traces, vec!["answer 43".to_string()]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn length_builtin_counts_characters() {
    let report = run(
        r#"
        trace(length("hello"));
        trace(length(strcat("a", "bc")));
        trace(length(""));
        "#,
        FnExecutor::new(),
        "length",
    );
    let mut traces = report.traces.clone();
    traces.sort();
    assert_eq!(traces, vec!["0", "3", "5"]);
}
