//! The Swift → JETS bridge: app calls become dispatcher jobs.
//!
//! This is the "MPICH/Coasters form" of the paper (Section 5.2): Swift
//! scripts express the workflow; each app invocation is packed into a job
//! specification — including its MPI shape — and submitted to the JETS
//! dispatcher, which aggregates pilot-job workers, runs the PMI process
//! manager, and launches the proxies.

use crate::executor::{AppCall, AppExecutor};
use jets_core::spec::{CommandSpec, JobSpec};
use jets_core::{Dispatcher, JobStatus};
use std::sync::Arc;
use std::time::Duration;

/// Runs app calls as JETS jobs.
pub struct JetsExecutor {
    dispatcher: Arc<Dispatcher>,
    job_timeout: Duration,
    max_retries: u32,
}

impl JetsExecutor {
    /// Wrap a dispatcher. Jobs get `job_timeout` to finish.
    pub fn new(dispatcher: Arc<Dispatcher>, job_timeout: Duration) -> JetsExecutor {
        JetsExecutor {
            dispatcher,
            job_timeout,
            max_retries: 0,
        }
    }

    /// Builder-style per-job retry budget (worker-failure tolerance).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    fn command(&self, call: &AppCall) -> CommandSpec {
        // A leading '@' names a builtin application in the workers'
        // registries; anything else is an executable on disk. The stdout
        // redirect rides along as an environment variable (builtins and
        // wrapper scripts honour it; see jets-worker docs).
        let mut env = Vec::new();
        if let Some(path) = &call.stdout {
            env.push(("SWIFT_STDOUT".to_string(), path.clone()));
        }
        match call.executable.strip_prefix('@') {
            Some(app) => CommandSpec::Builtin {
                app: app.to_string(),
                args: call.args.clone(),
                env,
            },
            None => CommandSpec::Exec {
                program: call.executable.clone(),
                args: call.args.clone(),
                env,
            },
        }
    }
}

impl AppExecutor for JetsExecutor {
    fn run(&self, call: &AppCall) -> Result<(), String> {
        let spec = JobSpec {
            nodes: call.nodes,
            ppn: call.ppn,
            cmd: self.command(call),
            priority: 0,
            max_retries: self.max_retries,
            // Apps with an mpi() attribute always take the MPI path, even
            // at 1×1 — their code expects a PMI environment.
            mpi: call.mpi || call.nodes > 1 || call.ppn > 1,
            stage: Vec::new(),
            deadline_ms: None,
        };
        let id = self.dispatcher.submit(spec);
        let record = self
            .dispatcher
            .wait_job(id, self.job_timeout)
            .ok_or_else(|| {
                format!(
                    "job {id} ({}) did not finish within {:?}",
                    call.executable, self.job_timeout
                )
            })?;
        match record.status {
            JobStatus::Succeeded => Ok(()),
            status => Err(format!(
                "job {id} ({}) ended {status:?} with exit codes {:?}",
                call.executable, record.exit_codes
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jets_core::DispatcherConfig;
    use jets_worker::apps::standard_registry;
    use jets_worker::{Executor, Worker, WorkerConfig};

    fn call(executable: &str, nodes: u32, ppn: u32) -> AppCall {
        AppCall {
            executable: executable.to_string(),
            args: vec!["5".to_string()],
            stdout: None,
            nodes,
            ppn,
            mpi: nodes > 1 || ppn > 1,
        }
    }

    #[test]
    fn builtin_and_mpi_jobs_run_through_jets() {
        let dispatcher = Arc::new(Dispatcher::start(DispatcherConfig::default()).unwrap());
        let exec_backend = Arc::new(Executor::new(standard_registry()));
        let workers: Vec<Worker> = (0..2)
            .map(|i| {
                Worker::spawn(
                    WorkerConfig::new(dispatcher.addr().to_string(), format!("w{i}")),
                    exec_backend.clone() as Arc<dyn jets_worker::TaskExecutor>,
                )
            })
            .collect();
        let jets = JetsExecutor::new(Arc::clone(&dispatcher), Duration::from_secs(30));
        // Sequential builtin.
        jets.run(&call("@sleep", 1, 1)).unwrap();
        // MPI builtin across both workers.
        jets.run(&call("@mpi-sleep", 2, 1)).unwrap();
        // Failure propagates.
        let err = jets.run(&call("@fail", 1, 1)).unwrap_err();
        assert!(err.contains("Failed"), "err: {err}");
        dispatcher.shutdown();
        for w in workers {
            w.join();
        }
    }

    #[test]
    fn stdout_redirect_becomes_env() {
        let dispatcher = Arc::new(Dispatcher::start(DispatcherConfig::default()).unwrap());
        let jets = JetsExecutor::new(Arc::clone(&dispatcher), Duration::from_secs(5));
        let c = AppCall {
            executable: "@x".into(),
            args: vec![],
            stdout: Some("/tmp/x.out".into()),
            nodes: 1,
            ppn: 1,
            mpi: false,
        };
        match jets.command(&c) {
            CommandSpec::Builtin { app, env, .. } => {
                assert_eq!(app, "x");
                assert_eq!(
                    env,
                    vec![("SWIFT_STDOUT".to_string(), "/tmp/x.out".to_string())]
                );
            }
            other => panic!("expected builtin, got {other:?}"),
        }
        match jets.command(&AppCall {
            executable: "bin/tool".into(),
            args: vec!["a".into()],
            stdout: None,
            nodes: 1,
            ppn: 1,
            mpi: false,
        }) {
            CommandSpec::Exec { program, env, .. } => {
                assert_eq!(program, "bin/tool");
                assert!(env.is_empty());
            }
            other => panic!("expected exec, got {other:?}"),
        }
    }
}
