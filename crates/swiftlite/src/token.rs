//! Lexer for the swiftlite language.
//!
//! Token inventory follows Swift's surface syntax where the paper uses
//! it, including the `%%` modulus operator ("In Swift scripts, the `%%`
//! operator represents modulus", Section 6.2.2).

use std::fmt;

/// A lexical token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string literal (escapes processed).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%%` (Swift modulus)
    Mod,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `@`
    At,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBrace => write!(f, "'{{'"),
            TokenKind::RBrace => write!(f, "'}}'"),
            TokenKind::LBracket => write!(f, "'['"),
            TokenKind::RBracket => write!(f, "']'"),
            TokenKind::Lt => write!(f, "'<'"),
            TokenKind::Gt => write!(f, "'>'"),
            TokenKind::Le => write!(f, "'<='"),
            TokenKind::Ge => write!(f, "'>='"),
            TokenKind::EqEq => write!(f, "'=='"),
            TokenKind::Ne => write!(f, "'!='"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::Plus => write!(f, "'+'"),
            TokenKind::Minus => write!(f, "'-'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Slash => write!(f, "'/'"),
            TokenKind::Mod => write!(f, "'%%'"),
            TokenKind::AndAnd => write!(f, "'&&'"),
            TokenKind::OrOr => write!(f, "'||'"),
            TokenKind::Bang => write!(f, "'!'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Semi => write!(f, "';'"),
            TokenKind::Colon => write!(f, "':'"),
            TokenKind::At => write!(f, "'@'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `source`, appending a final [`TokenKind::Eof`].
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '#' => {
                // Line comment.
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(LexError {
                            line,
                            message: "unterminated block comment".to_string(),
                        });
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '"' => {
                let start_line = line;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= n {
                        return Err(LexError {
                            line: start_line,
                            message: "unterminated string literal".to_string(),
                        });
                    }
                    match bytes[i] {
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\\' => {
                            i += 1;
                            if i >= n {
                                return Err(LexError {
                                    line: start_line,
                                    message: "unterminated escape".to_string(),
                                });
                            }
                            s.push(match bytes[i] {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '"' => '"',
                                other => {
                                    return Err(LexError {
                                        line,
                                        message: format!("unknown escape '\\{other}'"),
                                    })
                                }
                            });
                            i += 1;
                        }
                        '\n' => {
                            return Err(LexError {
                                line: start_line,
                                message: "newline in string literal".to_string(),
                            })
                        }
                        other => {
                            s.push(other);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line: start_line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < n && bytes[i] == '.' && i + 1 < n && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad float literal '{text}'"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LexError {
                        line,
                        message: format!("integer literal '{text}' out of range"),
                    })?)
                };
                tokens.push(Token { kind, line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    line,
                });
            }
            _ => {
                let two: String = bytes[i..n.min(i + 2)].iter().collect();
                let (kind, width) = match two.as_str() {
                    "<=" => (TokenKind::Le, 2),
                    ">=" => (TokenKind::Ge, 2),
                    "==" => (TokenKind::EqEq, 2),
                    "!=" => (TokenKind::Ne, 2),
                    "%%" => (TokenKind::Mod, 2),
                    "&&" => (TokenKind::AndAnd, 2),
                    "||" => (TokenKind::OrOr, 2),
                    _ => match c {
                        '(' => (TokenKind::LParen, 1),
                        ')' => (TokenKind::RParen, 1),
                        '{' => (TokenKind::LBrace, 1),
                        '}' => (TokenKind::RBrace, 1),
                        '[' => (TokenKind::LBracket, 1),
                        ']' => (TokenKind::RBracket, 1),
                        '<' => (TokenKind::Lt, 1),
                        '>' => (TokenKind::Gt, 1),
                        '=' => (TokenKind::Eq, 1),
                        '+' => (TokenKind::Plus, 1),
                        '-' => (TokenKind::Minus, 1),
                        '*' => (TokenKind::Star, 1),
                        '/' => (TokenKind::Slash, 1),
                        '!' => (TokenKind::Bang, 1),
                        ',' => (TokenKind::Comma, 1),
                        ';' => (TokenKind::Semi, 1),
                        ':' => (TokenKind::Colon, 1),
                        '@' => (TokenKind::At, 1),
                        other => {
                            return Err(LexError {
                                line,
                                message: format!("unexpected character '{other}'"),
                            })
                        }
                    },
                };
                tokens.push(Token { kind, line });
                i += width;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Int(42),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_modulus_and_comparisons() {
        assert_eq!(
            kinds("j %% 2 == 1 <= 2 >= 3 != 4"),
            vec![
                TokenKind::Ident("j".into()),
                TokenKind::Mod,
                TokenKind::Int(2),
                TokenKind::EqEq,
                TokenKind::Int(1),
                TokenKind::Le,
                TokenKind::Int(2),
                TokenKind::Ge,
                TokenKind::Int(3),
                TokenKind::Ne,
                TokenKind::Int(4),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""a\"b\n" "plain""#),
            vec![
                TokenKind::Str("a\"b\n".into()),
                TokenKind::Str("plain".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_floats_and_ints_distinctly() {
        assert_eq!(
            kinds("1.5 2 0.25"),
            vec![
                TokenKind::Float(1.5),
                TokenKind::Int(2),
                TokenKind::Float(0.25),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_of_all_styles() {
        let src = "# hash\n1 // slash\n/* block\nstill */ 2";
        assert_eq!(
            kinds(src),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let tokens = tokenize("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("\"oops").is_err());
        assert!(tokenize("\"nl\n\"").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        let e = tokenize("a $ b").unwrap_err();
        assert!(e.message.contains('$'));
    }

    #[test]
    fn single_percent_is_an_error() {
        // Swift modulus is %%; a lone % is not a token.
        assert!(tokenize("a % b").is_err());
    }

    #[test]
    fn lexes_mapping_brackets() {
        assert_eq!(
            kinds("<\"f.txt\">"),
            vec![
                TokenKind::Lt,
                TokenKind::Str("f.txt".into()),
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }
}
