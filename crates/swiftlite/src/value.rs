//! Runtime values, single-assignment futures, arrays, and scopes.
//!
//! Every swiftlite variable is a *single-assignment dataflow future*:
//! statements that read it block until the statement that writes it has
//! run. This is the Swift execution model the paper leans on ("the
//! statements ... are all executed concurrently, limited by data
//! dependencies", Section 6.2.2). Arrays are sparse maps of futures that
//! auto-vivify on first reference, so a reader of `c[7]` and the app call
//! that later writes `c[7]` meet at the same cell regardless of order.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// A closed file; the payload is its path.
    File(String),
}

impl Value {
    /// Human-readable type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bool(_) => "boolean",
            Value::File(_) => "file",
        }
    }

    /// Render as a command-line word / string-concatenation fragment.
    pub fn render(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    v.to_string()
                }
            }
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::File(p) => p.clone(),
        }
    }
}

/// Why a future wait ended without a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitError {
    /// The workflow failed elsewhere; give up.
    Cancelled,
    /// Nobody produced the value in time (likely a dependency cycle or a
    /// missing producer).
    TimedOut,
}

/// Shared cancellation token: set once on first workflow error.
#[derive(Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unset token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has the token been tripped?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

struct FutureInner {
    cell: Mutex<Option<Value>>,
    cv: Condvar,
    /// For file futures: the mapped path, known before the value exists.
    path: Mutex<Option<String>>,
}

/// A single-assignment dataflow variable.
#[derive(Clone)]
pub struct Future {
    inner: Arc<FutureInner>,
}

impl Default for Future {
    fn default() -> Self {
        Self::new()
    }
}

impl Future {
    /// A fresh, unset future.
    pub fn new() -> Self {
        Future {
            inner: Arc::new(FutureInner {
                cell: Mutex::new(None),
                cv: Condvar::new(),
                path: Mutex::new(None),
            }),
        }
    }

    /// A fresh file future with a known mapped path.
    pub fn with_path(path: String) -> Self {
        let f = Future::new();
        *f.inner.path.lock() = Some(path);
        f
    }

    /// The mapped path, if this is a file future.
    pub fn path(&self) -> Option<String> {
        self.inner.path.lock().clone()
    }

    /// Set the mapped path (declaration time).
    pub fn set_path(&self, path: String) {
        *self.inner.path.lock() = Some(path);
    }

    /// Fulfil the future. Errors on double assignment — the defining
    /// property of single-assignment variables.
    pub fn set(&self, value: Value) -> Result<(), String> {
        let mut cell = self.inner.cell.lock();
        if cell.is_some() {
            return Err("variable assigned twice".to_string());
        }
        *cell = Some(value);
        self.inner.cv.notify_all();
        Ok(())
    }

    /// The value if already set (non-blocking).
    pub fn try_get(&self) -> Option<Value> {
        self.inner.cell.lock().clone()
    }

    /// Block until the value is set, the workflow is cancelled, or
    /// `timeout` expires.
    pub fn wait(&self, cancel: &CancelToken, timeout: Duration) -> Result<Value, WaitError> {
        let deadline = Instant::now() + timeout;
        let mut cell = self.inner.cell.lock();
        loop {
            if let Some(v) = cell.as_ref() {
                return Ok(v.clone());
            }
            if cancel.is_cancelled() {
                return Err(WaitError::Cancelled);
            }
            if Instant::now() >= deadline {
                return Err(WaitError::TimedOut);
            }
            // Wake periodically to observe cancellation.
            self.inner.cv.wait_for(&mut cell, Duration::from_millis(50));
        }
    }

    /// True when two handles name the same cell.
    pub fn same_cell(&self, other: &Future) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// How array elements derive their file paths.
pub type ElementMapper = Arc<dyn Fn(i64) -> String + Send + Sync>;

struct ArrayInner {
    elems: Mutex<HashMap<i64, Future>>,
    mapper: Option<ElementMapper>,
    is_file: bool,
}

/// A sparse array of futures.
#[derive(Clone)]
pub struct ArrayHandle {
    inner: Arc<ArrayInner>,
}

impl ArrayHandle {
    /// A new array; `mapper` assigns element paths for file arrays.
    pub fn new(is_file: bool, mapper: Option<ElementMapper>) -> Self {
        ArrayHandle {
            inner: Arc::new(ArrayInner {
                elems: Mutex::new(HashMap::new()),
                mapper,
                is_file,
            }),
        }
    }

    /// Is this an array of files?
    pub fn is_file(&self) -> bool {
        self.inner.is_file
    }

    /// Get (auto-vivifying) the element future at `index`. `anon_path`
    /// supplies a path for unmapped file elements. If the element is a
    /// file whose mapped path already exists on disk at vivification, it
    /// is treated as a workflow *input* and fulfilled immediately.
    pub fn element(&self, index: i64, anon_path: impl FnOnce() -> String) -> Future {
        let mut elems = self.inner.elems.lock();
        if let Some(f) = elems.get(&index) {
            return f.clone();
        }
        let future = if self.inner.is_file {
            let path = match &self.inner.mapper {
                Some(m) => m(index),
                None => anon_path(),
            };
            let f = Future::with_path(path.clone());
            if std::path::Path::new(&path).exists() {
                f.set(Value::File(path)).expect("fresh future");
            }
            f
        } else {
            Future::new()
        };
        elems.insert(index, future.clone());
        future
    }

    /// Number of vivified elements (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.elems.lock().len()
    }

    /// True when no element has been referenced yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a name is bound to.
#[derive(Clone)]
pub enum Binding {
    /// A scalar future.
    Scalar(Future),
    /// An array of futures.
    Array(ArrayHandle),
}

/// A lexical scope (chain of frames).
pub struct Scope {
    parent: Option<Arc<Scope>>,
    vars: Mutex<HashMap<String, Binding>>,
}

impl Scope {
    /// The root scope.
    pub fn root() -> Arc<Scope> {
        Arc::new(Scope {
            parent: None,
            vars: Mutex::new(HashMap::new()),
        })
    }

    /// A child frame.
    pub fn child(parent: &Arc<Scope>) -> Arc<Scope> {
        Arc::new(Scope {
            parent: Some(Arc::clone(parent)),
            vars: Mutex::new(HashMap::new()),
        })
    }

    /// Define a name in this frame. Shadowing outer frames is allowed;
    /// redefinition within a frame is an error.
    pub fn define(&self, name: &str, binding: Binding) -> Result<(), String> {
        let mut vars = self.vars.lock();
        if vars.contains_key(name) {
            return Err(format!("variable '{name}' already defined in this scope"));
        }
        vars.insert(name.to_string(), binding);
        Ok(())
    }

    /// Look a name up through the frame chain.
    pub fn lookup(&self, name: &str) -> Option<Binding> {
        if let Some(b) = self.vars.lock().get(name) {
            return Some(b.clone());
        }
        self.parent.as_ref()?.lookup(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn future_set_then_get() {
        let f = Future::new();
        assert_eq!(f.try_get(), None);
        f.set(Value::Int(7)).unwrap();
        assert_eq!(f.try_get(), Some(Value::Int(7)));
        assert_eq!(f.wait(&CancelToken::new(), T).unwrap(), Value::Int(7));
    }

    #[test]
    fn future_rejects_double_set() {
        let f = Future::new();
        f.set(Value::Int(1)).unwrap();
        assert!(f.set(Value::Int(2)).is_err());
    }

    #[test]
    fn wait_blocks_until_cross_thread_set() {
        let f = Future::new();
        let f2 = f.clone();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            f2.set(Value::Str("done".into())).unwrap();
        });
        let v = f.wait(&CancelToken::new(), T).unwrap();
        assert_eq!(v, Value::Str("done".into()));
        h.join().unwrap();
    }

    #[test]
    fn wait_observes_cancellation() {
        let f = Future::new();
        let cancel = CancelToken::new();
        let c2 = cancel.clone();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            c2.cancel();
        });
        assert_eq!(f.wait(&cancel, T), Err(WaitError::Cancelled));
        h.join().unwrap();
    }

    #[test]
    fn wait_times_out() {
        let f = Future::new();
        assert_eq!(
            f.wait(&CancelToken::new(), Duration::from_millis(30)),
            Err(WaitError::TimedOut)
        );
    }

    #[test]
    fn array_vivifies_one_cell_per_index() {
        let a = ArrayHandle::new(false, None);
        let x = a.element(3, || unreachable!("not a file array"));
        let y = a.element(3, || unreachable!());
        assert!(x.same_cell(&y));
        assert_eq!(a.len(), 1);
        let z = a.element(4, || unreachable!());
        assert!(!x.same_cell(&z));
    }

    #[test]
    fn file_array_maps_paths() {
        let mapper: ElementMapper = Arc::new(|i| format!("/tmp/none/seg_{i}.coor"));
        let a = ArrayHandle::new(true, Some(mapper));
        let f = a.element(7, || unreachable!("mapper provided"));
        assert_eq!(f.path().as_deref(), Some("/tmp/none/seg_7.coor"));
        assert_eq!(f.try_get(), None, "nonexistent file is not an input");
    }

    #[test]
    fn preexisting_mapped_file_becomes_input() {
        let dir = std::env::temp_dir().join(format!("swift-val-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("input_0.dat");
        std::fs::write(&path, "x").unwrap();
        let p = path.to_string_lossy().into_owned();
        let mapper: ElementMapper = Arc::new(move |_| p.clone());
        let a = ArrayHandle::new(true, Some(mapper));
        let f = a.element(0, || unreachable!());
        assert!(matches!(f.try_get(), Some(Value::File(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scope_lookup_walks_chain_and_shadows() {
        let root = Scope::root();
        root.define("x", Binding::Scalar(Future::new())).unwrap();
        let child = Scope::child(&root);
        assert!(child.lookup("x").is_some());
        // Shadowing in the child is fine.
        child.define("x", Binding::Scalar(Future::new())).unwrap();
        // Redefinition in the same frame is not.
        assert!(child.define("x", Binding::Scalar(Future::new())).is_err());
        assert!(child.lookup("missing").is_none());
    }

    #[test]
    fn value_rendering() {
        assert_eq!(Value::Int(-3).render(), "-3");
        assert_eq!(Value::Float(2.0).render(), "2.0");
        assert_eq!(Value::Float(2.5).render(), "2.5");
        assert_eq!(Value::Str("s".into()).render(), "s");
        assert_eq!(Value::Bool(true).render(), "true");
        assert_eq!(Value::File("/p".into()).render(), "/p");
    }
}
