//! # swiftlite — a mini-Swift dataflow scripting language
//!
//! The "language support" half of the JETS paper: application workflows
//! are written as implicitly-parallel scripts in (a subset of) the Swift
//! language (Wilde et al., *Parallel Computing* 37(9), 2011). Variables
//! are single-assignment dataflow futures; all statements execute
//! concurrently, limited only by data dependencies; `app` functions bind
//! leaf tasks to command lines and — through this crate's `mpi(nodes=…,
//! ppn=…)` extension — to MPI job shapes that the JETS dispatcher
//! launches.
//!
//! The feature set is exactly what the paper's scripts need (Figs. 14 and
//! 17): `int/float/string/boolean/file` types and arrays, literal and
//! `simple_mapper` file mappings, `foreach` over ranges, `if`/`else`, the
//! Swift `%%` modulus, `strcat`/`trace`/`toInt`/`toFloat`/`toString`
//! builtins, multi-output app calls, and pre-existing mapped files as
//! workflow inputs.
//!
//! ```
//! use swiftlite::{FnExecutor, RunOptions, Workflow};
//! use std::sync::Arc;
//!
//! // A pre-existing mapped file is treated as a workflow *input*, so
//! // output paths must be fresh.
//! let dir = std::env::temp_dir().join(format!("swiftlite-doc-{}", std::process::id()));
//! std::fs::remove_dir_all(&dir).ok();
//! std::fs::create_dir_all(&dir).unwrap();
//! let source = format!(r#"
//!     app (file o) greet (string who) {{
//!         "greeter" who stdout=@o
//!     }}
//!     foreach i in [0:2] {{
//!         file out <single_file_mapper; file=strcat("{}/", i, ".out")>;
//!         out = greet(strcat("world-", i));
//!         trace("submitted", i);
//!     }}
//! "#, dir.display());
//! let workflow = Workflow::parse(&source).unwrap();
//! let executor = FnExecutor::new();
//! executor.register("greeter", |call| {
//!     std::fs::write(call.stdout.as_ref().unwrap(), &call.args[0]).map_err(|e| e.to_string())
//! });
//! let report = workflow.run(Arc::new(executor), RunOptions::default()).unwrap();
//! assert_eq!(report.apps_run, 3);
//! assert_eq!(report.traces.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod engine;
pub mod executor;
pub mod jets;
pub mod parser;
pub mod token;
pub mod value;

pub use engine::{RunOptions, SwiftError, Workflow, WorkflowReport};
pub use executor::{AppCall, AppExecutor, FnExecutor, ProcessExecutor};
pub use jets::JetsExecutor;
pub use parser::parse;
pub use value::Value;
