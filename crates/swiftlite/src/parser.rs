//! Recursive-descent parser for swiftlite.

use crate::ast::*;
use crate::token::{tokenize, Token, TokenKind};
use std::collections::HashMap;
use std::fmt;

/// Parse error with source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a whole program.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source).map_err(|e| ParseError {
        line: e.line,
        message: e.message,
    })?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        type_aliases: default_types(),
    };
    parser.program()
}

fn default_types() -> HashMap<String, Type> {
    [
        ("int", Type::Int),
        ("float", Type::Float),
        ("string", Type::Str),
        ("boolean", Type::Bool),
        ("file", Type::File),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    type_aliases: HashMap<String, Type>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn is_type_name(&self, name: &str) -> bool {
        self.type_aliases.contains_key(name)
    }

    fn type_of(&self, name: &str) -> Option<Type> {
        self.type_aliases.get(name).copied()
    }

    // ---- grammar ----

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::default();
        while self.peek() != &TokenKind::Eof {
            match self.peek() {
                TokenKind::Ident(name) if name == "type" => self.type_decl()?,
                TokenKind::Ident(name) if name == "app" => {
                    let app = self.app_decl()?;
                    if program.app(&app.name).is_some() {
                        return Err(self.error(format!("duplicate app '{}'", app.name)));
                    }
                    program.apps.push(app);
                }
                _ => program.body.push(self.statement()?),
            }
        }
        Ok(program)
    }

    /// `type name;` — registers a file-like alias (Swift's `type file;`).
    fn type_decl(&mut self) -> Result<(), ParseError> {
        self.advance(); // 'type'
        let name = self.expect_ident()?;
        self.type_aliases.entry(name).or_insert(Type::File);
        self.expect(&TokenKind::Semi)
    }

    /// `app (outputs) name (inputs) [mpi(nodes=…, ppn=…)] { tokens }`
    fn app_decl(&mut self) -> Result<AppDecl, ParseError> {
        let line = self.line();
        self.advance(); // 'app'
        self.expect(&TokenKind::LParen)?;
        let outputs = self.param_list()?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let inputs = self.param_list()?;

        let mut nodes = None;
        let mut ppn = None;
        if let TokenKind::Ident(attr) = self.peek() {
            if attr == "mpi" {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                loop {
                    let key = self.expect_ident()?;
                    self.expect(&TokenKind::Eq)?;
                    let value = self.expression()?;
                    match key.as_str() {
                        "nodes" => nodes = Some(value),
                        "ppn" => ppn = Some(value),
                        other => return Err(self.error(format!("unknown mpi attribute '{other}'"))),
                    }
                    if self.peek() == &TokenKind::Comma {
                        self.advance();
                    } else {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
            }
        }

        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Semi {
                self.advance();
                continue;
            }
            // `stdout=@x` redirect?
            if let (TokenKind::Ident(id), TokenKind::Eq) = (self.peek(), self.peek_at(1)) {
                if id == "stdout" {
                    self.advance();
                    self.advance();
                    self.expect(&TokenKind::At)?;
                    let target = self.expect_ident()?;
                    body.push(AppToken::StdoutRedirect(target));
                    continue;
                }
            }
            body.push(AppToken::Arg(self.app_word()?));
        }
        self.expect(&TokenKind::RBrace)?;
        if !body.iter().any(|t| matches!(t, AppToken::Arg(_))) {
            return Err(ParseError {
                line,
                message: format!("app '{name}' has an empty command line"),
            });
        }
        Ok(AppDecl {
            name,
            outputs,
            inputs,
            nodes,
            ppn,
            body,
            line,
        })
    }

    /// One word of an app command line: a primary expression (no binary
    /// operators, so adjacent words don't merge).
    fn app_word(&mut self) -> Result<Expr, ParseError> {
        self.postfix()
    }

    fn param_list(&mut self) -> Result<Vec<(Type, String)>, ParseError> {
        let mut params = Vec::new();
        if self.peek() == &TokenKind::RParen {
            self.advance();
            return Ok(params);
        }
        loop {
            let ty_name = self.expect_ident()?;
            let ty = self
                .type_of(&ty_name)
                .ok_or_else(|| self.error(format!("unknown type '{ty_name}'")))?;
            let name = self.expect_ident()?;
            // Array parameters are not supported; keep the door shut
            // explicitly for a clear diagnostic.
            if self.peek() == &TokenKind::LBracket {
                return Err(self.error("array parameters are not supported"));
            }
            params.push((ty, name));
            match self.advance() {
                TokenKind::Comma => continue,
                TokenKind::RParen => break,
                other => {
                    return Err(ParseError {
                        line: self.line(),
                        message: format!("expected ',' or ')', found {other}"),
                    })
                }
            }
        }
        Ok(params)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            body.push(self.statement()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(body)
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Ident(name) if name == "foreach" => self.foreach_stmt(),
            TokenKind::Ident(name) if name == "if" => self.if_stmt(),
            TokenKind::Ident(name) if self.is_type_name(&name) => self.decl_stmt(),
            TokenKind::LParen => self.multi_assign(),
            TokenKind::Ident(_) => {
                // assignment (x = …, a[i] = …) or expression statement.
                match self.peek_at(1) {
                    TokenKind::Eq => {
                        let name = self.expect_ident()?;
                        self.advance(); // '='
                        let rhs = self.expression()?;
                        self.expect(&TokenKind::Semi)?;
                        Ok(Stmt::Assign {
                            lhs: LValue::Var(name),
                            rhs,
                            line,
                        })
                    }
                    TokenKind::LBracket => {
                        let name = self.expect_ident()?;
                        self.advance(); // '['
                        let index = self.expression()?;
                        self.expect(&TokenKind::RBracket)?;
                        self.expect(&TokenKind::Eq)?;
                        let rhs = self.expression()?;
                        self.expect(&TokenKind::Semi)?;
                        Ok(Stmt::Assign {
                            lhs: LValue::Index(name, index),
                            rhs,
                            line,
                        })
                    }
                    _ => {
                        let expr = self.expression()?;
                        self.expect(&TokenKind::Semi)?;
                        Ok(Stmt::Expr { expr, line })
                    }
                }
            }
            other => Err(self.error(format!("expected a statement, found {other}"))),
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let ty_name = self.expect_ident()?;
        let ty = self.type_of(&ty_name).expect("checked by caller");
        let name = self.expect_ident()?;
        let mut is_array = false;
        if self.peek() == &TokenKind::LBracket {
            self.advance();
            self.expect(&TokenKind::RBracket)?;
            is_array = true;
        }
        let mut mapping = None;
        if self.peek() == &TokenKind::Lt {
            mapping = Some(self.mapping()?);
        }
        let mut init = None;
        if self.peek() == &TokenKind::Eq {
            self.advance();
            init = Some(self.expression()?);
        }
        self.expect(&TokenKind::Semi)?;
        if mapping.is_some() && ty != Type::File {
            return Err(ParseError {
                line,
                message: "only file variables can be mapped".to_string(),
            });
        }
        Ok(Stmt::Decl {
            ty,
            name,
            is_array,
            mapping,
            init,
            line,
        })
    }

    /// `<"path">` | `<single_file_mapper; file=expr>` |
    /// `<simple_mapper; prefix=expr[, suffix=expr]>`
    fn mapping(&mut self) -> Result<Mapping, ParseError> {
        self.expect(&TokenKind::Lt)?;
        let mapping = match self.peek().clone() {
            TokenKind::Ident(mapper) => {
                self.advance();
                let mut fields: Vec<(String, Expr)> = Vec::new();
                if self.peek() == &TokenKind::Semi {
                    self.advance();
                    loop {
                        let key = self.expect_ident()?;
                        self.expect(&TokenKind::Eq)?;
                        // Additive level: '>' must stay the closer.
                        let value = self.additive()?;
                        fields.push((key, value));
                        if self.peek() == &TokenKind::Comma {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                let field = |name: &str| {
                    fields
                        .iter()
                        .find(|(k, _)| k == name)
                        .map(|(_, v)| v.clone())
                };
                match mapper.as_str() {
                    "single_file_mapper" => Mapping::Literal(
                        field("file")
                            .ok_or_else(|| self.error("single_file_mapper needs file="))?,
                    ),
                    "simple_mapper" => Mapping::Simple {
                        prefix: field("prefix")
                            .ok_or_else(|| self.error("simple_mapper needs prefix="))?,
                        suffix: field("suffix").unwrap_or(Expr::Str(String::new())),
                    },
                    other => return Err(self.error(format!("unknown mapper '{other}'"))),
                }
            }
            _ => {
                let expr = self.additive()?;
                Mapping::Literal(expr)
            }
        };
        self.expect(&TokenKind::Gt)?;
        Ok(mapping)
    }

    fn foreach_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.advance(); // 'foreach'
        let var = self.expect_ident()?;
        let mut index = None;
        if self.peek() == &TokenKind::Comma {
            self.advance();
            index = Some(self.expect_ident()?);
        }
        match self.advance() {
            TokenKind::Ident(kw) if kw == "in" => {}
            other => {
                return Err(ParseError {
                    line: self.line(),
                    message: format!("expected 'in', found {other}"),
                })
            }
        }
        self.expect(&TokenKind::LBracket)?;
        let lo = self.expression()?;
        self.expect(&TokenKind::Colon)?;
        let hi = self.expression()?;
        self.expect(&TokenKind::RBracket)?;
        let body = self.block()?;
        Ok(Stmt::Foreach {
            var,
            index,
            lo,
            hi,
            body,
            line,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.advance(); // 'if'
        self.expect(&TokenKind::LParen)?;
        let cond = self.expression()?;
        self.expect(&TokenKind::RParen)?;
        let then_body = self.block()?;
        let mut else_body = Vec::new();
        if let TokenKind::Ident(kw) = self.peek() {
            if kw == "else" {
                self.advance();
                if let TokenKind::Ident(kw2) = self.peek() {
                    if kw2 == "if" {
                        // else-if chains nest as a single-statement block.
                        else_body = vec![self.if_stmt()?];
                        return Ok(Stmt::If {
                            cond,
                            then_body,
                            else_body,
                            line,
                        });
                    }
                }
                else_body = self.block()?;
            }
        }
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            line,
        })
    }

    /// `(a, b) = app(args);`
    fn multi_assign(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.expect(&TokenKind::LParen)?;
        let mut lhs = Vec::new();
        loop {
            let name = self.expect_ident()?;
            if self.peek() == &TokenKind::LBracket {
                self.advance();
                let idx = self.expression()?;
                self.expect(&TokenKind::RBracket)?;
                lhs.push(LValue::Index(name, idx));
            } else {
                lhs.push(LValue::Var(name));
            }
            match self.advance() {
                TokenKind::Comma => continue,
                TokenKind::RParen => break,
                other => {
                    return Err(ParseError {
                        line: self.line(),
                        message: format!("expected ',' or ')', found {other}"),
                    })
                }
            }
        }
        self.expect(&TokenKind::Eq)?;
        let app = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek() == &TokenKind::RParen {
            self.advance();
        } else {
            loop {
                args.push(self.expression()?);
                match self.advance() {
                    TokenKind::Comma => continue,
                    TokenKind::RParen => break,
                    other => {
                        return Err(ParseError {
                            line: self.line(),
                            message: format!("expected ',' or ')', found {other}"),
                        })
                    }
                }
            }
        }
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt::MultiAssign {
            lhs,
            app,
            args,
            line,
        })
    }

    // ---- expressions, precedence climbing ----

    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &TokenKind::OrOr {
            self.advance();
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.peek() == &TokenKind::AndAnd {
            self.advance();
            let rhs = self.equality()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.comparison()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                _ => break,
            };
            self.advance();
            let rhs = self.comparison()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.advance();
            let rhs = self.additive()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Mod => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            TokenKind::Minus => {
                self.advance();
                Ok(Expr::Un(UnOp::Neg, Box::new(self.unary()?)))
            }
            TokenKind::Bang => {
                self.advance();
                Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Int(v))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Float(v))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            TokenKind::At => {
                self.advance();
                // @x or @(expr) or @a[i]
                let inner = self.postfix()?;
                Ok(Expr::Filename(Box::new(inner)))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expression()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.advance();
                match name.as_str() {
                    "true" => return Ok(Expr::Bool(true)),
                    "false" => return Ok(Expr::Bool(false)),
                    _ => {}
                }
                match self.peek() {
                    TokenKind::LParen => {
                        self.advance();
                        let mut args = Vec::new();
                        if self.peek() == &TokenKind::RParen {
                            self.advance();
                        } else {
                            loop {
                                args.push(self.expression()?);
                                match self.advance() {
                                    TokenKind::Comma => continue,
                                    TokenKind::RParen => break,
                                    other => {
                                        return Err(ParseError {
                                            line: self.line(),
                                            message: format!("expected ',' or ')', found {other}"),
                                        })
                                    }
                                }
                            }
                        }
                        Ok(Expr::Call(name, args))
                    }
                    TokenKind::LBracket => {
                        self.advance();
                        let idx = self.expression()?;
                        self.expect(&TokenKind::RBracket)?;
                        Ok(Expr::Index(name, Box::new(idx)))
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations() {
        let p = parse("int n = 10;\nfloat x;\nstring s = \"hi\";\n").unwrap();
        assert_eq!(p.body.len(), 3);
        assert!(matches!(
            &p.body[0],
            Stmt::Decl { ty: Type::Int, name, init: Some(Expr::Int(10)), .. } if name == "n"
        ));
    }

    #[test]
    fn parses_mapped_file_declarations() {
        let p = parse(
            "file f <\"a.txt\">;\nfile g[] <simple_mapper; prefix=\"out/c_\", suffix=\".coor\">;\n",
        )
        .unwrap();
        assert!(matches!(
            &p.body[0],
            Stmt::Decl { ty: Type::File, mapping: Some(Mapping::Literal(Expr::Str(s))), is_array: false, .. } if s == "a.txt"
        ));
        assert!(matches!(
            &p.body[1],
            Stmt::Decl {
                is_array: true,
                mapping: Some(Mapping::Simple { .. }),
                ..
            }
        ));
    }

    #[test]
    fn parses_app_declaration_with_mpi_attribute() {
        let src = r#"
app (file o) namd (file c, int steps) mpi(nodes=4, ppn=2) {
    "namd-lite" "--steps" steps @c stdout=@o
}
"#;
        let p = parse(src).unwrap();
        let app = p.app("namd").unwrap();
        assert_eq!(app.outputs, vec![(Type::File, "o".to_string())]);
        assert_eq!(
            app.inputs,
            vec![
                (Type::File, "c".to_string()),
                (Type::Int, "steps".to_string())
            ]
        );
        assert_eq!(app.nodes, Some(Expr::Int(4)));
        assert_eq!(app.ppn, Some(Expr::Int(2)));
        assert_eq!(app.body.len(), 5);
        assert!(matches!(&app.body[4], AppToken::StdoutRedirect(t) if t == "o"));
        assert!(
            matches!(&app.body[3], AppToken::Arg(Expr::Filename(inner)) if matches!(**inner, Expr::Var(ref v) if v == "c"))
        );
    }

    #[test]
    fn parses_foreach_over_range() {
        let p = parse("foreach i in [0:9] { trace(i); }").unwrap();
        assert!(matches!(
            &p.body[0],
            Stmt::Foreach { var, lo: Expr::Int(0), hi: Expr::Int(9), body, .. }
                if var == "i" && body.len() == 1
        ));
    }

    #[test]
    fn parses_if_else_with_modulus() {
        let p = parse("if (j %% 2 == 1) { trace(1); } else { trace(2); }").unwrap();
        let Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } = &p.body[0]
        else {
            panic!("expected if");
        };
        assert!(matches!(cond, Expr::Bin(BinOp::Eq, _, _)));
        assert_eq!(then_body.len(), 1);
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse("if (a) { } else if (b) { } else { trace(1); }").unwrap();
        let Stmt::If { else_body, .. } = &p.body[0] else {
            panic!()
        };
        assert!(matches!(&else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_array_assignment_and_indexing() {
        let p = parse("c[i+1] = namd(c[i]);").unwrap();
        assert!(matches!(
            &p.body[0],
            Stmt::Assign { lhs: LValue::Index(name, _), rhs: Expr::Call(app, _), .. }
                if name == "c" && app == "namd"
        ));
    }

    #[test]
    fn parses_multi_output_assignment() {
        let p = parse("(c[k], v[k], o) = namd(c[p], v[p], 10);").unwrap();
        let Stmt::MultiAssign { lhs, app, args, .. } = &p.body[0] else {
            panic!("expected multi-assign");
        };
        assert_eq!(lhs.len(), 3);
        assert_eq!(app, "namd");
        assert_eq!(args.len(), 3);
        assert!(matches!(&lhs[2], LValue::Var(v) if v == "o"));
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse("int x = 1 + 2 * 3;").unwrap();
        let Stmt::Decl { init: Some(e), .. } = &p.body[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        assert!(matches!(
            e,
            Expr::Bin(BinOp::Add, lhs, rhs)
                if matches!(**lhs, Expr::Int(1)) && matches!(**rhs, Expr::Bin(BinOp::Mul, _, _))
        ));
    }

    #[test]
    fn type_alias_declares_file_like_type() {
        let p = parse("type restart;\nrestart r <\"a.coor\">;\n").unwrap();
        assert!(matches!(&p.body[0], Stmt::Decl { ty: Type::File, .. }));
    }

    #[test]
    fn rejects_mapping_on_non_file() {
        assert!(parse("int x <\"a\">;").is_err());
    }

    #[test]
    fn rejects_duplicate_app() {
        let src = "app (file o) a() { \"x\" }\napp (file o) a() { \"y\" }\n";
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("duplicate app"));
    }

    #[test]
    fn rejects_empty_app_body() {
        let e = parse("app (file o) a() { stdout=@o }").unwrap_err();
        assert!(e.message.contains("empty command line"));
    }

    #[test]
    fn reports_line_numbers() {
        let e = parse("int x = 1;\nint y = ;\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn parses_rem_style_script() {
        // A miniature of the paper's Fig. 17 core loop.
        let src = r#"
type file;
app (file c_out, file o) namd (file c_in, int steps) mpi(nodes=2, ppn=1) {
    "namd-lite" @c_in steps stdout=@o
}
app (file x) exchange (file a, file b) {
    "rem-exchange" @a @b
}
int replicas = 4;
int exchanges = 2;
file c[] <simple_mapper; prefix="seg_", suffix=".coor">;
file o[] <simple_mapper; prefix="seg_", suffix=".log">;
file x[] <simple_mapper; prefix="ex_", suffix=".out">;
foreach i in [0:replicas-1] {
    foreach j in [0:exchanges] {
        int current = i * (exchanges + 1) + j;
        if (j %% 2 == 1) {
            trace("exchange phase", i, j);
        }
        (c[current], o[current]) = namd(c[current], 10);
    }
}
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.apps.len(), 2);
        assert_eq!(p.body.len(), 6);
    }
}
