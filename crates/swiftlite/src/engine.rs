//! The dataflow interpreter.
//!
//! Execution model: every non-declaration statement runs on its own
//! thread; reads of unset single-assignment variables block; writes
//! fulfil futures and wake readers. The result is exactly Swift's
//! semantics — "they are all executed concurrently, limited by data
//! dependencies" — with the thread scheduler as the dataflow engine. App
//! calls resolve to [`AppCall`]s and block their statement's thread until
//! the executor finishes, so workflow-wide concurrency equals the number
//! of runnable statements, and available task parallelism flows straight
//! into the underlying JETS dispatcher.

use crate::ast::*;
use crate::executor::{AppCall, AppExecutor};
use crate::parser::{parse, ParseError};
use crate::value::{
    ArrayHandle, Binding, CancelToken, ElementMapper, Future, Scope, Value, WaitError,
};
use parking_lot::Mutex;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Options controlling a workflow run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Directory for anonymous (unmapped) file variables.
    pub work_dir: PathBuf,
    /// Patience for any single dataflow wait; exceeding it fails the
    /// workflow (it almost always means a dependency cycle or a missing
    /// producer).
    pub wait_timeout: Duration,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            work_dir: std::env::temp_dir().join(format!("swiftlite-{}", std::process::id())),
            wait_timeout: Duration::from_secs(600),
        }
    }
}

/// Summary of a completed workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkflowReport {
    /// Number of app invocations executed.
    pub apps_run: usize,
    /// Lines emitted by `trace(...)`, in emission order.
    pub traces: Vec<String>,
}

/// A workflow failure (parse-time or run-time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwiftError {
    /// Description, with a source line where known.
    pub message: String,
}

impl fmt::Display for SwiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for SwiftError {}

impl From<ParseError> for SwiftError {
    fn from(e: ParseError) -> Self {
        SwiftError {
            message: e.to_string(),
        }
    }
}

/// A parsed, runnable workflow.
pub struct Workflow {
    program: Program,
}

impl Workflow {
    /// Parse a workflow from source text.
    pub fn parse(source: &str) -> Result<Workflow, SwiftError> {
        Ok(Workflow {
            program: parse(source)?,
        })
    }

    /// The parsed program (inspection).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Run to completion against `executor`.
    pub fn run(
        &self,
        executor: Arc<dyn AppExecutor>,
        options: RunOptions,
    ) -> Result<WorkflowReport, SwiftError> {
        std::fs::create_dir_all(&options.work_dir).map_err(|e| SwiftError {
            message: format!("cannot create work dir: {e}"),
        })?;
        let engine = Arc::new(Engine {
            program: self.program.clone(),
            executor,
            options,
            cancel: CancelToken::new(),
            error: Mutex::new(None),
            traces: Mutex::new(Vec::new()),
            apps_run: AtomicUsize::new(0),
            handles: Mutex::new(Vec::new()),
            anon: AtomicU64::new(0),
        });
        let root = Scope::root();
        engine.exec_block(&root, &self.program.body);
        // Join until quiescent (threads may spawn more threads).
        loop {
            let handle = engine.handles.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        let error = engine.error.lock().clone();
        if let Some(message) = error {
            return Err(SwiftError { message });
        }
        let apps_run = engine.apps_run.load(Ordering::Relaxed);
        let traces = engine.traces.lock().clone();
        Ok(WorkflowReport { apps_run, traces })
    }
}

struct Engine {
    program: Program,
    executor: Arc<dyn AppExecutor>,
    options: RunOptions,
    cancel: CancelToken,
    error: Mutex<Option<String>>,
    traces: Mutex<Vec<String>>,
    apps_run: AtomicUsize,
    handles: Mutex<Vec<JoinHandle<()>>>,
    anon: AtomicU64,
}

type EvalResult = Result<Value, String>;

const STMT_STACK: usize = 192 * 1024;

impl Engine {
    fn fail(&self, message: String) {
        let mut err = self.error.lock();
        if err.is_none() {
            *err = Some(message);
        }
        self.cancel.cancel();
    }

    fn anon_path(&self) -> String {
        let n = self.anon.fetch_add(1, Ordering::Relaxed);
        self.options
            .work_dir
            .join(format!("anon_{n}.dat"))
            .to_string_lossy()
            .into_owned()
    }

    fn spawn(self: &Arc<Self>, scope: Arc<Scope>, stmt: Stmt) {
        if self.cancel.is_cancelled() {
            return;
        }
        let engine = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("swift-stmt".to_string())
            .stack_size(STMT_STACK)
            .spawn(move || {
                if let Err(message) = engine.exec_stmt(&scope, &stmt) {
                    engine.fail(message);
                }
            })
            .expect("spawn statement thread");
        self.handles.lock().push(handle);
    }

    /// Process a block: declarations bind names in order (so later
    /// statements can reference them); every other statement gets its own
    /// concurrently-executing thread.
    fn exec_block(self: &Arc<Self>, scope: &Arc<Scope>, stmts: &[Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::Decl { .. } => {
                    if let Err(message) = self.exec_decl(scope, stmt) {
                        self.fail(message);
                        return;
                    }
                }
                other => self.spawn(Arc::clone(scope), other.clone()),
            }
        }
    }

    fn exec_decl(self: &Arc<Self>, scope: &Arc<Scope>, stmt: &Stmt) -> Result<(), String> {
        let Stmt::Decl {
            ty,
            name,
            is_array,
            mapping,
            init,
            line,
        } = stmt
        else {
            unreachable!("exec_decl called on non-decl");
        };
        let at = |m: String| format!("line {line}: {m}");
        let binding = if *is_array {
            let mapper: Option<ElementMapper> = match mapping {
                None => None,
                Some(Mapping::Literal(_)) => {
                    return Err(at("array mapping needs simple_mapper".to_string()))
                }
                Some(Mapping::Simple { prefix, suffix }) => {
                    let prefix = self.eval(scope, prefix).map_err(&at)?.render();
                    let suffix = self.eval(scope, suffix).map_err(&at)?.render();
                    Some(Arc::new(move |i: i64| format!("{prefix}{i}{suffix}")) as ElementMapper)
                }
            };
            Binding::Array(ArrayHandle::new(*ty == Type::File, mapper))
        } else if *ty == Type::File {
            let path = match mapping {
                Some(Mapping::Literal(expr)) => self.eval(scope, expr).map_err(&at)?.render(),
                Some(Mapping::Simple { prefix, suffix }) => {
                    let p = self.eval(scope, prefix).map_err(&at)?.render();
                    let s = self.eval(scope, suffix).map_err(&at)?.render();
                    format!("{p}{s}")
                }
                None => self.anon_path(),
            };
            let future = Future::with_path(path.clone());
            // A mapped file that already exists is a workflow input.
            if mapping.is_some() && std::path::Path::new(&path).exists() {
                future.set(Value::File(path)).expect("fresh future");
            }
            Binding::Scalar(future)
        } else {
            Binding::Scalar(Future::new())
        };
        scope.define(name, binding.clone()).map_err(&at)?;
        if let Some(init_expr) = init {
            let lhs = LValue::Var(name.clone());
            self.spawn(
                Arc::clone(scope),
                Stmt::Assign {
                    lhs,
                    rhs: init_expr.clone(),
                    line: *line,
                },
            );
        }
        Ok(())
    }

    fn exec_stmt(self: &Arc<Self>, scope: &Arc<Scope>, stmt: &Stmt) -> Result<(), String> {
        match stmt {
            Stmt::Decl { .. } => self.exec_decl(scope, stmt),
            Stmt::Assign { lhs, rhs, line } => {
                let at = |m: String| format!("line {line}: {m}");
                // An app call on the right-hand side routes its output
                // into the assignment target.
                if let Expr::Call(name, args) = rhs {
                    if self.program.app(name).is_some() {
                        let target = self.lvalue_future(scope, lhs).map_err(&at)?;
                        let decl = self.program.app(name).expect("checked").clone();
                        if decl.outputs.len() != 1 {
                            return Err(at(format!(
                                "app '{name}' has {} outputs; use (a, b) = {name}(...)",
                                decl.outputs.len()
                            )));
                        }
                        self.run_app(scope, &decl, args, vec![target])
                            .map_err(&at)?;
                        return Ok(());
                    }
                }
                let value = self.eval(scope, rhs).map_err(&at)?;
                let target = self.lvalue_future(scope, lhs).map_err(&at)?;
                target.set(value).map_err(&at)
            }
            Stmt::MultiAssign {
                lhs,
                app,
                args,
                line,
            } => {
                let at = |m: String| format!("line {line}: {m}");
                let decl = self
                    .program
                    .app(app)
                    .ok_or_else(|| at(format!("unknown app '{app}'")))?
                    .clone();
                if decl.outputs.len() != lhs.len() {
                    return Err(at(format!(
                        "app '{app}' has {} outputs but {} targets were given",
                        decl.outputs.len(),
                        lhs.len()
                    )));
                }
                let targets = lhs
                    .iter()
                    .map(|l| self.lvalue_future(scope, l))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(&at)?;
                self.run_app(scope, &decl, args, targets).map_err(&at)?;
                Ok(())
            }
            Stmt::Foreach {
                var,
                index,
                lo,
                hi,
                body,
                line,
            } => {
                let at = |m: String| format!("line {line}: {m}");
                let lo = self.eval_int(scope, lo).map_err(&at)?;
                let hi = self.eval_int(scope, hi).map_err(&at)?;
                for i in lo..=hi {
                    let child = Scope::child(scope);
                    let value = Future::new();
                    value.set(Value::Int(i)).expect("fresh future");
                    child.define(var, Binding::Scalar(value)).map_err(&at)?;
                    if let Some(index_name) = index {
                        let idx = Future::new();
                        idx.set(Value::Int(i)).expect("fresh future");
                        child
                            .define(index_name, Binding::Scalar(idx))
                            .map_err(&at)?;
                    }
                    self.exec_block(&child, body);
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                let at = |m: String| format!("line {line}: {m}");
                let value = self.eval(scope, cond).map_err(&at)?;
                let Value::Bool(b) = value else {
                    return Err(at(format!(
                        "if condition must be boolean, got {}",
                        value.type_name()
                    )));
                };
                let child = Scope::child(scope);
                self.exec_block(&child, if b { then_body } else { else_body });
                Ok(())
            }
            Stmt::Expr { expr, line } => {
                let at = |m: String| format!("line {line}: {m}");
                if let Expr::Call(name, args) = expr {
                    if self.program.app(name).is_some() {
                        let decl = self.program.app(name).expect("checked").clone();
                        // Outputs land at their app-declared anonymous
                        // paths; used for apps invoked purely for effect.
                        let targets = (0..decl.outputs.len())
                            .map(|_| Future::with_path(self.anon_path()))
                            .collect();
                        self.run_app(scope, &decl, args, targets).map_err(&at)?;
                        return Ok(());
                    }
                }
                self.eval(scope, expr).map_err(&at)?;
                Ok(())
            }
        }
    }

    /// Resolve an l-value to its (possibly vivified) future.
    fn lvalue_future(&self, scope: &Arc<Scope>, lvalue: &LValue) -> Result<Future, String> {
        match lvalue {
            LValue::Var(name) => match scope.lookup(name) {
                Some(Binding::Scalar(f)) => Ok(f),
                Some(Binding::Array(_)) => Err(format!("'{name}' is an array; index it to assign")),
                None => Err(format!("undefined variable '{name}'")),
            },
            LValue::Index(name, index_expr) => {
                let index = self.eval_int(scope, index_expr)?;
                match scope.lookup(name) {
                    Some(Binding::Array(a)) => Ok(a.element(index, || self.anon_path())),
                    Some(Binding::Scalar(_)) => {
                        Err(format!("'{name}' is a scalar; cannot index it"))
                    }
                    None => Err(format!("undefined variable '{name}'")),
                }
            }
        }
    }

    /// Execute one app call: evaluate arguments, render the command line,
    /// run it through the executor, and fulfil the output futures.
    fn run_app(
        self: &Arc<Self>,
        scope: &Arc<Scope>,
        decl: &AppDecl,
        args: &[Expr],
        targets: Vec<Future>,
    ) -> Result<(), String> {
        if args.len() != decl.inputs.len() {
            return Err(format!(
                "app '{}' takes {} arguments, {} given",
                decl.name,
                decl.inputs.len(),
                args.len()
            ));
        }
        debug_assert_eq!(targets.len(), decl.outputs.len());
        let arg_values = args
            .iter()
            .map(|a| self.eval(scope, a))
            .collect::<Result<Vec<_>, _>>()?;

        // The app body's scope: parameters only, all pre-fulfilled, so
        // rendering never blocks. Output parameters are bound to their
        // (future) paths.
        let app_scope = Scope::root();
        for ((ty, name), value) in decl.inputs.iter().zip(arg_values) {
            let _ = ty;
            let f = Future::new();
            f.set(value).expect("fresh future");
            app_scope.define(name, Binding::Scalar(f))?;
        }
        let mut output_paths = Vec::with_capacity(targets.len());
        for ((ty, name), target) in decl.outputs.iter().zip(&targets) {
            if *ty != Type::File {
                return Err(format!(
                    "app '{}': output '{name}' must be a file",
                    decl.name
                ));
            }
            let path = match target.path() {
                Some(p) => p,
                None => {
                    let p = self.anon_path();
                    target.set_path(p.clone());
                    p
                }
            };
            let f = Future::new();
            f.set(Value::File(path.clone())).expect("fresh future");
            app_scope.define(name, Binding::Scalar(f))?;
            output_paths.push(path);
        }

        let nodes = match &decl.nodes {
            Some(e) => self.eval_int(&app_scope, e)? as u32,
            None => 1,
        };
        let ppn = match &decl.ppn {
            Some(e) => self.eval_int(&app_scope, e)? as u32,
            None => 1,
        };
        if nodes == 0 || ppn == 0 {
            return Err(format!("app '{}': nodes and ppn must be ≥ 1", decl.name));
        }

        let mut words = Vec::new();
        let mut stdout = None;
        for token in &decl.body {
            match token {
                AppToken::Arg(expr) => words.push(self.eval(&app_scope, expr)?.render()),
                AppToken::StdoutRedirect(name) => {
                    let Some(Binding::Scalar(f)) = app_scope.lookup(name) else {
                        return Err(format!(
                            "app '{}': stdout target '{name}' is not a parameter",
                            decl.name
                        ));
                    };
                    match f.try_get() {
                        Some(Value::File(p)) => stdout = Some(p),
                        _ => {
                            return Err(format!(
                                "app '{}': stdout target '{name}' is not a file",
                                decl.name
                            ))
                        }
                    }
                }
            }
        }
        let executable = words.remove(0);
        let call = AppCall {
            executable,
            args: words,
            stdout,
            nodes,
            ppn,
            mpi: decl.nodes.is_some() || decl.ppn.is_some(),
        };
        self.executor
            .run(&call)
            .map_err(|e| format!("app '{}' failed: {e}", decl.name))?;
        self.apps_run.fetch_add(1, Ordering::Relaxed);
        for (target, path) in targets.iter().zip(output_paths) {
            target
                .set(Value::File(path))
                .map_err(|_| format!("app '{}' wrote an already-assigned output", decl.name))?;
        }
        Ok(())
    }

    fn eval_int(&self, scope: &Arc<Scope>, expr: &Expr) -> Result<i64, String> {
        match self.eval(scope, expr)? {
            Value::Int(v) => Ok(v),
            other => Err(format!("expected int, got {}", other.type_name())),
        }
    }

    fn eval(&self, scope: &Arc<Scope>, expr: &Expr) -> EvalResult {
        match expr {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Var(name) => match scope.lookup(name) {
                Some(Binding::Scalar(f)) => self.wait_future(&f, name),
                Some(Binding::Array(_)) => Err(format!("'{name}' is an array")),
                None => Err(format!("undefined variable '{name}'")),
            },
            Expr::Index(name, index) => {
                let idx = self.eval_int(scope, index)?;
                match scope.lookup(name) {
                    Some(Binding::Array(a)) => {
                        let f = a.element(idx, || self.anon_path());
                        self.wait_future(&f, &format!("{name}[{idx}]"))
                    }
                    Some(Binding::Scalar(_)) => Err(format!("'{name}' is not an array")),
                    None => Err(format!("undefined variable '{name}'")),
                }
            }
            Expr::Filename(inner) => {
                // @x: the *path* of a file variable, available before the
                // file is produced.
                let future = match inner.as_ref() {
                    Expr::Var(name) => match scope.lookup(name) {
                        Some(Binding::Scalar(f)) => Some(f),
                        _ => None,
                    },
                    Expr::Index(name, index) => {
                        let idx = self.eval_int(scope, index)?;
                        match scope.lookup(name) {
                            Some(Binding::Array(a)) => Some(a.element(idx, || self.anon_path())),
                            _ => None,
                        }
                    }
                    _ => None,
                };
                if let Some(f) = &future {
                    if let Some(path) = f.path() {
                        return Ok(Value::Str(path));
                    }
                }
                // Fall back to evaluating (blocks until the file closes).
                match self.eval(scope, inner)? {
                    Value::File(p) => Ok(Value::Str(p)),
                    other => Err(format!("@ applied to {}", other.type_name())),
                }
            }
            Expr::Un(op, inner) => {
                let v = self.eval(scope, inner)?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(-i)),
                    (UnOp::Neg, Value::Float(f)) => Ok(Value::Float(-f)),
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (op, v) => Err(format!("cannot apply {op:?} to {}", v.type_name())),
                }
            }
            Expr::Bin(op, lhs, rhs) => self.eval_bin(scope, *op, lhs, rhs),
            Expr::Call(name, args) => self.eval_call(scope, name, args),
        }
    }

    fn wait_future(&self, future: &Future, what: &str) -> EvalResult {
        match future.wait(&self.cancel, self.options.wait_timeout) {
            Ok(v) => Ok(v),
            Err(WaitError::Cancelled) => Err("cancelled".to_string()),
            Err(WaitError::TimedOut) => Err(format!(
                "dataflow wait on '{what}' timed out after {:?} — dependency cycle or missing producer?",
                self.options.wait_timeout
            )),
        }
    }

    fn eval_bin(&self, scope: &Arc<Scope>, op: BinOp, lhs: &Expr, rhs: &Expr) -> EvalResult {
        // Short-circuit booleans first.
        if matches!(op, BinOp::And | BinOp::Or) {
            let l = self.eval(scope, lhs)?;
            let Value::Bool(lb) = l else {
                return Err(format!("logical op on {}", l.type_name()));
            };
            if op == BinOp::And && !lb {
                return Ok(Value::Bool(false));
            }
            if op == BinOp::Or && lb {
                return Ok(Value::Bool(true));
            }
            let r = self.eval(scope, rhs)?;
            let Value::Bool(rb) = r else {
                return Err(format!("logical op on {}", r.type_name()));
            };
            return Ok(Value::Bool(rb));
        }

        let l = self.eval(scope, lhs)?;
        let r = self.eval(scope, rhs)?;
        use BinOp::*;
        use Value::*;
        match (op, &l, &r) {
            // String concatenation when either side is a string.
            (Add, Str(_), _) | (Add, _, Str(_)) => Ok(Str(format!("{}{}", l.render(), r.render()))),
            (Add, Int(a), Int(b)) => Ok(Int(a.wrapping_add(*b))),
            (Sub, Int(a), Int(b)) => Ok(Int(a.wrapping_sub(*b))),
            (Mul, Int(a), Int(b)) => Ok(Int(a.wrapping_mul(*b))),
            (Div, Int(a), Int(b)) => {
                if *b == 0 {
                    Err("integer division by zero".to_string())
                } else {
                    Ok(Int(a / b))
                }
            }
            (Mod, Int(a), Int(b)) => {
                if *b == 0 {
                    Err("modulus by zero".to_string())
                } else {
                    Ok(Int(a.rem_euclid(*b)))
                }
            }
            (Add | Sub | Mul | Div, _, _) if l.is_numeric() && r.is_numeric() => {
                let a = l.as_f64();
                let b = r.as_f64();
                Ok(Float(match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    _ => unreachable!(),
                }))
            }
            (Eq, _, _) => Ok(Bool(values_equal(&l, &r))),
            (Ne, _, _) => Ok(Bool(!values_equal(&l, &r))),
            (Lt | Le | Gt | Ge, _, _) => {
                let ord = compare(&l, &r)?;
                Ok(Bool(match op {
                    Lt => ord == std::cmp::Ordering::Less,
                    Le => ord != std::cmp::Ordering::Greater,
                    Gt => ord == std::cmp::Ordering::Greater,
                    Ge => ord != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                }))
            }
            _ => Err(format!(
                "cannot apply {op:?} to {} and {}",
                l.type_name(),
                r.type_name()
            )),
        }
    }

    fn eval_call(&self, scope: &Arc<Scope>, name: &str, args: &[Expr]) -> EvalResult {
        // Builtins. (App calls as bare expressions are handled at the
        // statement level; reaching here means the position requires a
        // value, which only single-output apps could provide — not
        // supported inside larger expressions to keep dataflow explicit.)
        match name {
            "strcat" => {
                let mut out = String::new();
                for a in args {
                    out.push_str(&self.eval(scope, a)?.render());
                }
                Ok(Value::Str(out))
            }
            "toString" => {
                let v = self.eval(scope, args.first().ok_or("toString needs an argument")?)?;
                Ok(Value::Str(v.render()))
            }
            "toInt" => {
                let v = self.eval(scope, args.first().ok_or("toInt needs an argument")?)?;
                match v {
                    Value::Int(i) => Ok(Value::Int(i)),
                    Value::Float(f) => Ok(Value::Int(f as i64)),
                    Value::Str(s) => s
                        .trim()
                        .parse()
                        .map(Value::Int)
                        .map_err(|_| format!("toInt: '{s}' is not an integer")),
                    other => Err(format!("toInt on {}", other.type_name())),
                }
            }
            "toFloat" => {
                let v = self.eval(scope, args.first().ok_or("toFloat needs an argument")?)?;
                match v {
                    Value::Int(i) => Ok(Value::Float(i as f64)),
                    Value::Float(f) => Ok(Value::Float(f)),
                    Value::Str(s) => s
                        .trim()
                        .parse()
                        .map(Value::Float)
                        .map_err(|_| format!("toFloat: '{s}' is not a number")),
                    other => Err(format!("toFloat on {}", other.type_name())),
                }
            }
            "length" => {
                let v = self.eval(scope, args.first().ok_or("length needs an argument")?)?;
                match v {
                    Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                    other => Err(format!("length on {}", other.type_name())),
                }
            }
            "readData" => {
                // Swift's readData: read a (closed) file's contents. The
                // dataflow wait on the file future happens in eval, so
                // this only runs once the producer finished.
                let v = self.eval(scope, args.first().ok_or("readData needs an argument")?)?;
                let Value::File(path) = v else {
                    return Err(format!("readData on {}", v.type_name()));
                };
                std::fs::read_to_string(&path)
                    .map(|s| Value::Str(s.trim_end().to_string()))
                    .map_err(|e| format!("readData({path}): {e}"))
            }
            "trace" => {
                let mut parts = Vec::with_capacity(args.len());
                for a in args {
                    parts.push(self.eval(scope, a)?.render());
                }
                self.traces.lock().push(parts.join(" "));
                Ok(Value::Bool(true))
            }
            other if self.program.app(other).is_some() => Err(format!(
                "app '{other}' cannot be called inside an expression; assign its outputs"
            )),
            other => Err(format!("unknown function '{other}'")),
        }
    }
}

impl Value {
    fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    fn as_f64(&self) -> f64 {
        match self {
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            _ => f64::NAN,
        }
    }
}

fn values_equal(l: &Value, r: &Value) -> bool {
    use Value::*;
    match (l, r) {
        (Int(a), Int(b)) => a == b,
        (Float(a), Float(b)) => a == b,
        (Int(a), Float(b)) | (Float(b), Int(a)) => *a as f64 == *b,
        (Str(a), Str(b)) => a == b,
        (Bool(a), Bool(b)) => a == b,
        (File(a), File(b)) => a == b,
        _ => false,
    }
}

fn compare(l: &Value, r: &Value) -> Result<std::cmp::Ordering, String> {
    use Value::*;
    match (l, r) {
        (Int(a), Int(b)) => Ok(a.cmp(b)),
        (Str(a), Str(b)) => Ok(a.cmp(b)),
        _ if l.is_numeric() && r.is_numeric() => l
            .as_f64()
            .partial_cmp(&r.as_f64())
            .ok_or_else(|| "NaN comparison".to_string()),
        _ => Err(format!(
            "cannot compare {} with {}",
            l.type_name(),
            r.type_name()
        )),
    }
}
