//! Abstract syntax of swiftlite programs.

/// Base types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// A mapped file (dataflow token whose value is its path).
    File,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric addition or string concatenation).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%%` (Swift modulus).
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Boolean not.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Var(String),
    /// Array element `name[index]`.
    Index(String, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Builtin function call (`strcat`, `toString`, ...). App calls are
    /// parsed as this and resolved against app declarations at run time.
    Call(String, Vec<Expr>),
    /// `@x` — the filename of a file variable (valid in app bodies and
    /// expressions).
    Filename(Box<Expr>),
}

/// How a file variable maps to a path.
#[derive(Debug, Clone, PartialEq)]
pub enum Mapping {
    /// `<"literal/path">`.
    Literal(Expr),
    /// `<simple_mapper; prefix="p", suffix=".x">` — arrays append the
    /// element index between prefix and suffix.
    Simple {
        /// Path prefix expression.
        prefix: Expr,
        /// Path suffix expression.
        suffix: Expr,
    },
}

/// An l-value: a variable or one of its elements.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Plain variable.
    Var(String),
    /// Array element.
    Index(String, Expr),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Variable declaration, possibly an array, mapped, or initialized.
    Decl {
        /// Element type.
        ty: Type,
        /// Name.
        name: String,
        /// Declared with `[]`.
        is_array: bool,
        /// Optional file mapping.
        mapping: Option<Mapping>,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source line.
        line: usize,
    },
    /// Single assignment `lhs = rhs;` (rhs may be an app call).
    Assign {
        /// Target.
        lhs: LValue,
        /// Value.
        rhs: Expr,
        /// Source line.
        line: usize,
    },
    /// Multi-output app call `(a, b) = app(args);`.
    MultiAssign {
        /// Targets, in app-output order.
        lhs: Vec<LValue>,
        /// The app name.
        app: String,
        /// The arguments.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
    },
    /// `foreach v[, idx] in [lo:hi] { body }`.
    Foreach {
        /// Loop variable (the range value).
        var: String,
        /// Optional index variable (equals the value for ranges).
        index: Option<String>,
        /// Range lower bound (inclusive).
        lo: Expr,
        /// Range upper bound (inclusive, Swift-style).
        hi: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `if (cond) { } else { }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch.
        else_body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// Bare expression statement (e.g. `trace(...)` or an app call whose
    /// outputs are all pre-mapped).
    Expr {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: usize,
    },
}

/// One token of an app command line.
#[derive(Debug, Clone, PartialEq)]
pub enum AppToken {
    /// An expression whose value is rendered as one argument word.
    Arg(Expr),
    /// `stdout=@x` — redirect standard output to file variable `x`.
    StdoutRedirect(String),
}

/// A declared app (leaf function bound to an executable).
#[derive(Debug, Clone, PartialEq)]
pub struct AppDecl {
    /// App name.
    pub name: String,
    /// Output parameters `(type, name)` — all must be files or scalars
    /// produced by the wrapper.
    pub outputs: Vec<(Type, String)>,
    /// Input parameters.
    pub inputs: Vec<(Type, String)>,
    /// MPI node count expression (default 1).
    pub nodes: Option<Expr>,
    /// MPI ranks-per-node expression (default 1).
    pub ppn: Option<Expr>,
    /// Command-line template; the first `Arg` is the executable.
    pub body: Vec<AppToken>,
    /// Source line.
    pub line: usize,
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// App declarations by name.
    pub apps: Vec<AppDecl>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Find an app declaration by name.
    pub fn app(&self, name: &str) -> Option<&AppDecl> {
        self.apps.iter().find(|a| a.name == name)
    }
}
