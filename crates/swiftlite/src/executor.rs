//! App execution backends for swiftlite workflows.
//!
//! The language resolves an app call into an [`AppCall`] — a rendered
//! command line plus MPI shape — and hands it to an [`AppExecutor`]. Three
//! executors ship with the crate:
//!
//! * [`ProcessExecutor`] — run the command as a local OS process
//!   (`nodes`/`ppn` collapse to one process; Swift's "local" provider).
//! * [`FnExecutor`] — dispatch to registered Rust closures; used by tests
//!   and by harnesses that want app bodies in-process.
//! * `JetsExecutor` (in [`crate::jets`]) — submit through the JETS
//!   dispatcher, the MPICH/Coasters configuration of the paper.

use std::collections::HashMap;
use std::process::{Command, Stdio};
use std::sync::Arc;

/// One resolved app invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct AppCall {
    /// Executable (or `@builtin` name for in-process application sets).
    pub executable: String,
    /// Rendered argument words.
    pub args: Vec<String>,
    /// Path to redirect standard output to, if the app body used
    /// `stdout=@x`.
    pub stdout: Option<String>,
    /// MPI nodes (1 = sequential).
    pub nodes: u32,
    /// MPI ranks per node.
    pub ppn: u32,
    /// True when the app declared an `mpi(...)` attribute: launch through
    /// the MPI path (PMI wire-up) even at 1×1, like `mpiexec -n 1`.
    pub mpi: bool,
}

/// Executes app calls to completion.
pub trait AppExecutor: Send + Sync {
    /// Run the call, blocking until it finishes. `Err` carries a
    /// diagnostic and fails the workflow.
    fn run(&self, call: &AppCall) -> Result<(), String>;
}

/// Runs apps as local OS processes.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProcessExecutor;

impl AppExecutor for ProcessExecutor {
    fn run(&self, call: &AppCall) -> Result<(), String> {
        let mut command = Command::new(&call.executable);
        command.args(&call.args);
        match &call.stdout {
            Some(path) => {
                let file = std::fs::File::create(path)
                    .map_err(|e| format!("cannot create stdout file {path}: {e}"))?;
                command.stdout(Stdio::from(file));
            }
            None => {
                command.stdout(Stdio::null());
            }
        }
        let status = command
            .status()
            .map_err(|e| format!("cannot spawn {}: {e}", call.executable))?;
        if status.success() {
            Ok(())
        } else {
            Err(format!(
                "{} exited with {:?}",
                call.executable,
                status.code()
            ))
        }
    }
}

/// A closure-backed app implementation.
pub type AppImpl = Arc<dyn Fn(&AppCall) -> Result<(), String> + Send + Sync>;

/// Dispatches app calls to registered closures by executable name.
#[derive(Clone, Default)]
pub struct FnExecutor {
    apps: Arc<parking_lot::RwLock<HashMap<String, AppImpl>>>,
}

impl FnExecutor {
    /// An empty executor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an implementation for `executable`.
    pub fn register(
        &self,
        executable: impl Into<String>,
        f: impl Fn(&AppCall) -> Result<(), String> + Send + Sync + 'static,
    ) {
        self.apps.write().insert(executable.into(), Arc::new(f));
    }
}

impl AppExecutor for FnExecutor {
    fn run(&self, call: &AppCall) -> Result<(), String> {
        let f = self
            .apps
            .read()
            .get(&call.executable)
            .cloned()
            .ok_or_else(|| format!("no implementation registered for '{}'", call.executable))?;
        f(call)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_executor_runs_true_and_false() {
        let exec = ProcessExecutor;
        let ok = AppCall {
            executable: "true".into(),
            args: vec![],
            stdout: None,
            nodes: 1,
            ppn: 1,
            mpi: false,
        };
        assert!(exec.run(&ok).is_ok());
        let bad = AppCall {
            executable: "false".into(),
            ..ok.clone()
        };
        assert!(exec.run(&bad).is_err());
    }

    #[test]
    fn process_executor_redirects_stdout() {
        let dir = std::env::temp_dir().join(format!("swift-exec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("echo.out");
        let call = AppCall {
            executable: "echo".into(),
            args: vec!["hello".into(), "world".into()],
            stdout: Some(out.to_string_lossy().into_owned()),
            nodes: 1,
            ppn: 1,
            mpi: false,
        };
        ProcessExecutor.run(&call).unwrap();
        assert_eq!(std::fs::read_to_string(&out).unwrap().trim(), "hello world");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn process_executor_reports_missing_binary() {
        let call = AppCall {
            executable: "/no/such/binary".into(),
            args: vec![],
            stdout: None,
            nodes: 1,
            ppn: 1,
            mpi: false,
        };
        let err = ProcessExecutor.run(&call).unwrap_err();
        assert!(err.contains("cannot spawn"));
    }

    #[test]
    fn fn_executor_dispatches_by_name() {
        let exec = FnExecutor::new();
        exec.register("work", |call: &AppCall| {
            if call.args == ["ok"] {
                Ok(())
            } else {
                Err("bad args".to_string())
            }
        });
        let ok = AppCall {
            executable: "work".into(),
            args: vec!["ok".into()],
            stdout: None,
            nodes: 2,
            ppn: 4,
            mpi: true,
        };
        assert!(exec.run(&ok).is_ok());
        let bad = AppCall {
            args: vec!["nope".into()],
            ..ok.clone()
        };
        assert!(exec.run(&bad).is_err());
        let missing = AppCall {
            executable: "ghost".into(),
            ..ok
        };
        assert!(exec.run(&missing).unwrap_err().contains("ghost"));
    }
}
