//! A small parser for the Prometheus text exposition format, as
//! rendered by `jets-obs` registries.
//!
//! `jets top` scrapes `GET /metrics` off a live dispatcher (or relay,
//! or worker process) and reads individual samples back through
//! [`Scrape`]; the loopback tests use the same parser to assert on
//! mid-run metric values, so the parser is deliberately strict about
//! nothing and tolerant of everything — an unparseable line is skipped,
//! not fatal (a monitoring path must never take the batch down).

use std::collections::HashMap;

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (the part before `{` or whitespace).
    pub name: String,
    /// Label pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed scrape: every sample, in document order.
#[derive(Debug, Default, Clone)]
pub struct Scrape {
    /// All samples in the scrape.
    pub samples: Vec<Sample>,
}

impl Scrape {
    /// Parse Prometheus text. Comment (`#`) and blank lines are
    /// skipped; malformed sample lines are dropped silently.
    pub fn parse(text: &str) -> Scrape {
        let samples = text.lines().filter_map(parse_sample).collect();
        Scrape { samples }
    }

    /// The first sample named `name` with no labels (plain counters and
    /// gauges).
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// The first sample named `name` whose labels include `key="val"`.
    pub fn labeled(&self, name: &str, key: &str, val: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.label(key) == Some(val))
            .map(|s| s.value)
    }

    /// All samples named `name`, e.g. every quantile of a summary.
    pub fn all(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// Summary quantiles of `name` filtered by one extra label, keyed
    /// by the `quantile` label value (`"0.5"`, `"0.95"`, `"0.99"`).
    pub fn quantiles(&self, name: &str, key: &str, val: &str) -> HashMap<String, f64> {
        self.samples
            .iter()
            .filter(|s| s.name == name && s.label(key) == Some(val))
            .filter_map(|s| s.label("quantile").map(|q| (q.to_string(), s.value)))
            .collect()
    }
}

/// Parse one sample line; `None` for comments, blanks, and noise.
fn parse_sample(line: &str) -> Option<Sample> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (head, value_str) = match line.find('}') {
        // `name{...} value` — split after the closing brace.
        Some(close) => {
            let (head, rest) = line.split_at(close + 1);
            (head, rest.trim())
        }
        // `name value` — split on whitespace.
        None => {
            let mut it = line.splitn(2, char::is_whitespace);
            (it.next()?, it.next()?.trim())
        }
    };
    let value: f64 = value_str.split_whitespace().next()?.parse().ok()?;
    let (name, labels) = match head.split_once('{') {
        Some((name, rest)) => (name, parse_labels(rest.strip_suffix('}')?)),
        None => (head, Vec::new()),
    };
    if name.is_empty() {
        return None;
    }
    Some(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parse `k1="v1",k2="v2"`. Escapes beyond `\\`, `\"`, and `\n` are
/// passed through untouched — jets-obs never emits others.
fn parse_labels(body: &str) -> Vec<(String, String)> {
    let mut labels = Vec::new();
    let mut rest = body;
    loop {
        rest = rest.trim_start_matches(',').trim();
        if rest.is_empty() {
            break;
        }
        let Some((key, after_eq)) = rest.split_once("=\"") else {
            break;
        };
        // Find the closing unescaped quote.
        let mut val = String::new();
        let mut chars = after_eq.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, esc)) = chars.next() {
                        val.push(match esc {
                            'n' => '\n',
                            other => other,
                        });
                    }
                }
                '"' => {
                    end = Some(i);
                    break;
                }
                other => val.push(other),
            }
        }
        let Some(end) = end else {
            break;
        };
        labels.push((key.trim().to_string(), val));
        rest = &after_eq[end + 1..];
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_counters_and_gauges() {
        let s = Scrape::parse(
            "# HELP jets_jobs_submitted_total Jobs accepted\n\
             # TYPE jets_jobs_submitted_total counter\n\
             jets_jobs_submitted_total 1600\n\
             jets_queue_depth 7\n",
        );
        assert_eq!(s.value("jets_jobs_submitted_total"), Some(1600.0));
        assert_eq!(s.value("jets_queue_depth"), Some(7.0));
        assert_eq!(s.value("jets_absent"), None);
    }

    #[test]
    fn parses_labeled_summary_lines() {
        let s = Scrape::parse(
            "jets_job_phase_seconds{phase=\"queue\",quantile=\"0.5\"} 0.000131\n\
             jets_job_phase_seconds{phase=\"queue\",quantile=\"0.99\"} 0.002047\n\
             jets_job_phase_seconds_count{phase=\"queue\"} 1600\n",
        );
        let q = s.quantiles("jets_job_phase_seconds", "phase", "queue");
        assert_eq!(q.get("0.5"), Some(&0.000131));
        assert_eq!(q.get("0.99"), Some(&0.002047));
        assert_eq!(
            s.labeled("jets_job_phase_seconds_count", "phase", "queue"),
            Some(1600.0)
        );
    }

    #[test]
    fn tolerates_noise_without_failing() {
        let s = Scrape::parse("garbage\nname_only\nx 1 2 3\nok 4.5\n{} 9\n");
        assert_eq!(s.value("ok"), Some(4.5));
        // `x 1 2 3` keeps the first numeric field, Prometheus-style
        // (trailing fields are timestamps).
        assert_eq!(s.value("x"), Some(1.0));
        assert_eq!(s.samples.len(), 2);
    }

    #[test]
    fn unescapes_label_values() {
        let s = Scrape::parse("m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
        assert_eq!(s.samples[0].label("k"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn round_trips_a_real_jets_obs_render() {
        let m = jets_core::DispatcherMetrics::new();
        m.jobs_submitted_total.add(3);
        m.workers_ready.set(12);
        for us in [100, 200, 400, 800] {
            m.phase_queue.record(us);
        }
        let s = Scrape::parse(&m.render());
        assert_eq!(s.value("jets_jobs_submitted_total"), Some(3.0));
        assert_eq!(s.value("jets_workers_ready"), Some(12.0));
        let q = s.quantiles(jets_core::metrics::JOB_PHASE_METRIC, "phase", "queue");
        assert!(q.contains_key("0.5") && q.contains_key("0.95") && q.contains_key("0.99"));
        assert_eq!(
            s.labeled("jets_job_phase_seconds_count", "phase", "queue"),
            Some(4.0)
        );
    }
}
