//! # jets-cli — command-line tools
//!
//! The deployable faces of the system, mirroring the paper's software
//! inventory:
//!
//! * `jets` — the stand-alone batch tool (Section 5.1): feed it a task
//!   list (`MPI: 4 namd2.sh in.pdb out.log` per line), point workers at
//!   it, get your batch executed.
//! * `jets-worker` — the pilot-job worker agent, started on compute nodes
//!   by the system scheduler's allocation script.
//! * `jets-mpiexec` — a manual-launcher `mpiexec`: starts the PMI service
//!   for one MPI job and *prints* the proxy commands instead of exec'ing
//!   them (MPICH2 `launcher=manual`).
//! * `namd-lite` — the molecular-dynamics application, serial or MPI
//!   (PMI environment detected automatically).
//! * `rem-exchange` — the replica-exchange step, operating on restart
//!   files.
//! * `swiftlite` — run a workflow script locally or through a JETS
//!   dispatcher.
//!
//! This library crate holds the tiny argument-parsing helper the binaries
//! share; all behaviour lives in `src/bin/`.

#![warn(missing_docs)]

pub mod prom;

use std::collections::HashMap;

/// Minimal option parser: `--key value` pairs plus positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// `--key value` options, last occurrence wins.
    pub options: HashMap<String, String>,
    /// `--flag` options with no value.
    pub flags: Vec<String>,
    /// Positional arguments in order.
    pub positional: Vec<String>,
}

/// Parse `argv`. `value_keys` lists the option keys that take a value
/// (everything else starting with `--` is a flag).
pub fn parse_args(argv: impl IntoIterator<Item = String>, value_keys: &[&str]) -> Args {
    let mut args = Args::default();
    let mut iter = argv.into_iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if value_keys.contains(&key) {
                if let Some(value) = iter.next() {
                    args.options.insert(key.to_string(), value);
                }
            } else {
                args.flags.push(key.to_string());
            }
        } else {
            args.positional.push(arg);
        }
    }
    args
}

impl Args {
    /// A `--key value` option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A parsed `--key value` option with a default.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Is `--flag` present?
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str, value_keys: &[&str]) -> Args {
        parse_args(line.split_whitespace().map(str::to_string), value_keys)
    }

    #[test]
    fn parses_options_flags_and_positionals() {
        let args = parse(
            "tasks.txt --dispatcher 127.0.0.1:7777 --verbose --nodes 4 extra",
            &["dispatcher", "nodes"],
        );
        assert_eq!(args.get("dispatcher"), Some("127.0.0.1:7777"));
        assert_eq!(args.get_parse("nodes", 0u32), 4);
        assert!(args.has_flag("verbose"));
        assert_eq!(args.positional, vec!["tasks.txt", "extra"]);
    }

    #[test]
    fn defaults_apply_when_missing_or_malformed() {
        let args = parse("--nodes four", &["nodes"]);
        assert_eq!(args.get_parse("nodes", 7u32), 7);
        assert_eq!(args.get_parse("absent", 9i64), 9);
    }

    #[test]
    fn last_occurrence_wins() {
        let args = parse("--n 1 --n 2", &["n"]);
        assert_eq!(args.get("n"), Some("2"));
    }
}
