//! `namd-lite` — the molecular-dynamics application binary.
//!
//! ```text
//! namd-lite CONFIG
//! ```
//!
//! Runs one MD segment from a NAMD-style configuration file. When
//! launched by a JETS proxy the `PMI_*` environment is present and the
//! segment runs as one rank of an MPI job over real sockets; otherwise it
//! runs serially.

use jets_mpi::runner::run_rank_from_lookup;
use namd_sim::{run_segment, MdConfig};

fn main() {
    let Some(config_path) = std::env::args().nth(1) else {
        eprintln!("usage: namd-lite CONFIG");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("namd-lite: cannot read {config_path}: {e}");
            std::process::exit(3);
        }
    };
    let config = match MdConfig::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("namd-lite: {config_path}: {e}");
            std::process::exit(4);
        }
    };
    let result = if std::env::var(jets_pmi::ENV_RANK).is_ok() {
        run_rank_from_lookup(
            |k| std::env::var(k).ok(),
            |comm| run_segment(&config, Some(comm)),
        )
        .map_err(|e| e.to_string())
        .and_then(|r| r.map_err(|e| e.to_string()))
    } else {
        run_segment(&config, None).map_err(|e| e.to_string())
    };
    match result {
        Ok(segment) => {
            println!(
                "namd-lite: {} atoms, step {}, potential {:.6}, temperature {:.4}",
                segment.system.len(),
                segment.system.step,
                segment.potential,
                segment.temperature
            );
        }
        Err(e) => {
            eprintln!("namd-lite: {e}");
            std::process::exit(7);
        }
    }
}
