//! The relay daemon (real-process deployment).
//!
//! ```text
//! jets-relay --dispatcher HOST:PORT [--listen HOST:PORT] [--name N]
//!            [--location L] [--flush-ms MS] [--stale-ms MS]
//!            [--reconnect-attempts N] [--reconnect-base-ms MS]
//!            [--reconnect-cap-ms MS] [--reconnect-jitter F]
//!            [--reconnect-seed S] [--metrics-addr ADDR]
//!            [--flight-recorder FILE]
//! ```
//!
//! Fronts a block of workers over one dispatcher connection: point
//! `jets-worker --relay` at the printed listen address. The relay
//! aggregates registrations, coalesces heartbeats into batched liveness
//! frames every `--flush-ms`, routes assignments and results, fans gang
//! cancellation out locally, and rides out dispatcher restarts with the
//! configured reconnect policy. It exits when the dispatcher tells the
//! fleet to shut down (or when reconnect attempts are exhausted).

use jets_cli::parse_args;
use jets_relay::{Relay, RelayConfig};
use jets_worker::ReconnectPolicy;
use std::time::Duration;

fn main() {
    let args = parse_args(
        std::env::args().skip(1),
        &[
            "dispatcher",
            "listen",
            "name",
            "location",
            "flush-ms",
            "stale-ms",
            "reconnect-attempts",
            "reconnect-base-ms",
            "reconnect-cap-ms",
            "reconnect-jitter",
            "reconnect-seed",
            "metrics-addr",
            "flight-recorder",
        ],
    );
    let Some(dispatcher) = args.get("dispatcher") else {
        eprintln!(
            "usage: jets-relay --dispatcher HOST:PORT [--listen HOST:PORT] [--name N] \
             [--location L] [--flush-ms MS] [--stale-ms MS] [--reconnect-attempts N] \
             [--reconnect-base-ms MS] [--reconnect-cap-ms MS] [--reconnect-jitter F] \
             [--reconnect-seed S]"
        );
        std::process::exit(2);
    };
    let defaults = ReconnectPolicy::default();
    let mut config = RelayConfig::new(
        dispatcher,
        args.get("name")
            .map(str::to_string)
            .unwrap_or_else(|| format!("relay-{}", std::process::id())),
    );
    if let Some(listen) = args.get("listen") {
        config.listen_addr = listen.to_string();
    }
    if let Some(location) = args.get("location") {
        config.location = location.to_string();
    }
    config.liveness_flush = Duration::from_millis(args.get_parse("flush-ms", 100u64));
    config.worker_stale_after = Duration::from_millis(args.get_parse("stale-ms", 1000u64));
    config.reconnect = ReconnectPolicy {
        max_attempts: args.get_parse("reconnect-attempts", defaults.max_attempts),
        base_backoff: Duration::from_millis(args.get_parse(
            "reconnect-base-ms",
            defaults.base_backoff.as_millis() as u64,
        )),
        max_backoff: Duration::from_millis(
            args.get_parse("reconnect-cap-ms", defaults.max_backoff.as_millis() as u64),
        ),
        jitter: args.get_parse("reconnect-jitter", defaults.jitter),
        seed: args.get_parse("reconnect-seed", defaults.seed),
    };
    config.flight_recorder = args.get("flight-recorder").map(std::path::PathBuf::from);
    if let Some(path) = args.get("flight-recorder") {
        println!("jets-relay: flight recorder ring at {path}");
    }
    let name = config.name.clone();
    let relay = match Relay::start(config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("jets-relay: cannot bind listener: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "jets-relay: {name} listening on {} for dispatcher {dispatcher}",
        relay.addr()
    );
    if let Some(addr) = args.get("metrics-addr") {
        match relay.serve_metrics(addr) {
            Ok(local) => println!("jets-relay: serving http://{local}/metrics"),
            Err(e) => {
                eprintln!("jets-relay: cannot serve metrics on {addr}: {e}");
                std::process::exit(1);
            }
        }
    }
    // The daemon runs on its own threads; park this one until the
    // dispatcher's shutdown (or reconnect exhaustion) stops the relay.
    loop {
        std::thread::sleep(Duration::from_millis(200));
        if relay.is_stopped() {
            break;
        }
    }
    let stats = relay.stats();
    println!(
        "jets-relay: {name} exiting ({} members, {} batched frames, {} sessions, {} local cancels)",
        stats.members, stats.batched_frames, stats.upstream_sessions, stats.local_cancels
    );
}
