//! `jets-mpiexec` — an mpiexec with only the manual launcher.
//!
//! The MPICH2 feature at the heart of JETS: instead of exec'ing its
//! proxies, this process manager *prints* them (one line per node with
//! the PMI environment each rank needs) and keeps its PMI service running
//! so an external scheduler can place them. Exits when the job completes.
//!
//! ```text
//! jets-mpiexec -n NODES [--ppn P] [--jobid ID] [--timeout SECS] -- CMD ARGS...
//! ```

use jets_cli::parse_args;
use jets_pmi::{JobOutcome, ManualLauncher, PmiServer, PmiServerConfig, RankLayout};
use std::time::Duration;

fn main() {
    // Accept `-n N` in mpiexec style by rewriting to `--n N`.
    let argv: Vec<String> = std::env::args()
        .skip(1)
        .map(|a| if a == "-n" { "--n".to_string() } else { a })
        .collect();
    let args = parse_args(argv, &["n", "ppn", "jobid", "timeout"]);
    let nodes: u32 = args.get_parse("n", 0);
    if nodes == 0 {
        eprintln!(
            "usage: jets-mpiexec -n NODES [--ppn P] [--jobid ID] [--timeout SECS] CMD ARGS..."
        );
        std::process::exit(2);
    }
    let ppn: u32 = args.get_parse("ppn", 1);
    let jobid = args
        .get("jobid")
        .map(str::to_string)
        .unwrap_or_else(|| format!("mpiexec-{}", std::process::id()));
    let layout = RankLayout { nodes, ppn };
    let server = match PmiServer::start(PmiServerConfig::new(&jobid, layout.size())) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("jets-mpiexec: cannot start PMI service: {e}");
            std::process::exit(1);
        }
    };
    let command = args.positional.join(" ");
    println!(
        "# jets-mpiexec: PMI service for job {jobid} at {}",
        server.addr()
    );
    println!("# launcher=manual: start these proxies yourself:");
    for proxy in ManualLauncher.proxy_commands(&jobid, layout, &server.addr().to_string()) {
        for &rank in &proxy.ranks {
            let env: Vec<String> = proxy
                .env_for_rank(rank)
                .into_iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            println!(
                "node {:03}: {} {}",
                proxy.node_index,
                env.join(" "),
                command
            );
        }
    }
    let timeout = Duration::from_secs(args.get_parse("timeout", 3600));
    match server.wait(timeout) {
        JobOutcome::Success => {
            println!("# jets-mpiexec: job {jobid} completed");
        }
        JobOutcome::Aborted(reason) => {
            eprintln!("# jets-mpiexec: job {jobid} aborted: {reason}");
            std::process::exit(1);
        }
        JobOutcome::TimedOut => {
            eprintln!("# jets-mpiexec: job {jobid} timed out");
            std::process::exit(1);
        }
    }
}
