//! The stand-alone `jets` tool (paper Section 5.1).
//!
//! ```text
//! jets TASKFILE [--listen ADDR] [--simulate N] [--timeout SECS]
//!               [--events-out FILE]
//! jets events --in FILE [--nodes N] [--step-ms MS]
//! ```
//!
//! Reads a task list (`MPI: <nodes> [ppn=<k>] cmd args...` or bare
//! command lines), starts the dispatcher, and runs the batch on whatever
//! workers connect. `--simulate N` boots N in-process worker agents with
//! the standard + science application registries, so a batch of builtin
//! (`@`-prefixed) tasks runs with no external setup.
//!
//! `--events-out FILE` dumps the dispatcher's event log as JSON Lines
//! after the run; `jets events --in FILE` recomputes the paper's
//! utilization / load / availability statistics from such a dump
//! offline, with no dispatcher running.

use cluster_sim::{science_registry, Allocation, AllocationConfig};
use jets_cli::{parse_args, Args};
use jets_core::{stats, Dispatcher, DispatcherConfig, EventKind, JobStatus};
use jets_worker::Executor;
use std::collections::HashSet;
use std::io::BufReader;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("events") {
        let args = parse_args(argv.into_iter().skip(1), &["in", "nodes", "step-ms"]);
        events_main(&args);
    }
    let args = parse_args(argv, &["listen", "simulate", "timeout", "events-out"]);
    let Some(taskfile) = args.positional.first() else {
        eprintln!(
            "usage: jets TASKFILE [--listen ADDR] [--simulate N] [--timeout SECS] [--events-out FILE]\n       jets events --in FILE [--nodes N] [--step-ms MS]"
        );
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(taskfile) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("jets: cannot read {taskfile}: {e}");
            std::process::exit(2);
        }
    };
    let config = DispatcherConfig {
        bind_addr: args.get("listen").unwrap_or("127.0.0.1:0").to_string(),
        ..DispatcherConfig::default()
    };
    let dispatcher = match Dispatcher::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("jets: cannot start dispatcher: {e}");
            std::process::exit(1);
        }
    };
    println!("jets: dispatcher listening on {}", dispatcher.addr());

    let simulate: u32 = args.get_parse("simulate", 0);
    let allocation = if simulate > 0 {
        println!("jets: booting {simulate} simulated workers");
        Some(Allocation::start(
            &dispatcher.addr().to_string(),
            AllocationConfig::new(simulate),
            Arc::new(Executor::new(science_registry())),
        ))
    } else {
        println!(
            "jets: waiting for external workers (start jets-worker --dispatcher {})",
            dispatcher.addr()
        );
        None
    };

    let ids = match dispatcher.submit_input(&text) {
        Ok(ids) => ids,
        Err(e) => {
            eprintln!("jets: {taskfile}: {e}");
            std::process::exit(2);
        }
    };
    println!("jets: submitted {} jobs", ids.len());

    let timeout = Duration::from_secs(args.get_parse("timeout", 3600));
    if !dispatcher.wait_idle(timeout) {
        eprintln!(
            "jets: timed out after {timeout:?} with {} jobs outstanding",
            dispatcher.outstanding()
        );
        std::process::exit(1);
    }
    let mut ok = 0usize;
    let mut failed = 0usize;
    for id in &ids {
        match dispatcher.job_record(*id).map(|r| r.status) {
            Some(JobStatus::Succeeded) => ok += 1,
            _ => failed += 1,
        }
    }
    println!("jets: {ok} succeeded, {failed} failed");
    dispatcher.shutdown();
    if let Some(alloc) = allocation {
        alloc.join_all();
    }
    if let Some(path) = args.get("events-out") {
        match std::fs::File::create(path) {
            Ok(mut file) => match dispatcher.events().write_jsonl(&mut file) {
                Ok(()) => println!("jets: wrote {} events to {path}", dispatcher.events().len()),
                Err(e) => eprintln!("jets: cannot write events to {path}: {e}"),
            },
            Err(e) => eprintln!("jets: cannot create {path}: {e}"),
        }
    }
    std::process::exit(if failed == 0 { 0 } else { 1 });
}

/// `jets events --in FILE`: recompute run statistics from a JSONL event
/// dump, offline.
fn events_main(args: &Args) -> ! {
    let Some(path) = args.get("in") else {
        eprintln!("usage: jets events --in FILE [--nodes N] [--step-ms MS]");
        std::process::exit(2);
    };
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("jets: cannot open {path}: {e}");
            std::process::exit(2);
        }
    };
    let events = match jets_core::read_jsonl(BufReader::new(file)) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("jets: {path}: {e}");
            std::process::exit(2);
        }
    };
    if events.is_empty() {
        println!("jets: {path}: empty event log");
        std::process::exit(0);
    }
    let span = events.last().map(|e| e.t).unwrap_or_default();
    // Allocation size: given, or inferred as the distinct workers seen.
    let nodes = {
        let given: usize = args.get_parse("nodes", 0);
        if given > 0 {
            given
        } else {
            let mut seen = HashSet::new();
            for e in &events {
                if let EventKind::WorkerUp { worker } = &e.kind {
                    seen.insert(*worker);
                }
            }
            seen.len()
        }
    };
    let step = Duration::from_millis(args.get_parse("step-ms", 1000u64));
    println!(
        "jets: {path}: {} events over {:.3}s",
        events.len(),
        span.as_secs_f64()
    );
    println!("  allocation size: {nodes}");
    let done = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TaskEnded { .. }))
        .count();
    println!("  tasks ended:     {done}");
    if nodes > 0 {
        println!(
            "  utilization:     {:.1}%",
            100.0 * stats::measured_utilization(&events, nodes)
        );
    }
    let load = stats::load_series(&events, step);
    if let Some(peak) = load.iter().max_by_key(|s| s.busy_ranks) {
        println!(
            "  peak load:       {} tasks / {} busy ranks at t={:.1}s",
            peak.running_tasks,
            peak.busy_ranks,
            peak.t.as_secs_f64()
        );
    }
    let avail = stats::availability_series(&events, step);
    if let (Some(min), Some(max)) = (
        avail.iter().map(|s| s.alive).min(),
        avail.iter().map(|s| s.alive).max(),
    ) {
        println!("  workers alive:   min {min}, max {max}");
    }
    std::process::exit(0);
}
