//! The stand-alone `jets` tool (paper Section 5.1).
//!
//! ```text
//! jets TASKFILE [--listen ADDR] [--simulate N] [--timeout SECS]
//!               [--events-out FILE] [--metrics-addr ADDR]
//! jets events --in FILE [--nodes N] [--step-ms MS] [--stats]
//! jets top --metrics ADDR [--interval-ms MS] [--once]
//! ```
//!
//! Reads a task list (`MPI: <nodes> [ppn=<k>] cmd args...` or bare
//! command lines), starts the dispatcher, and runs the batch on whatever
//! workers connect. `--simulate N` boots N in-process worker agents with
//! the standard + science application registries, so a batch of builtin
//! (`@`-prefixed) tasks runs with no external setup.
//!
//! `--events-out FILE` dumps the dispatcher's event log as JSON Lines
//! after the run; `jets events --in FILE` recomputes the paper's
//! utilization / load / availability statistics from such a dump
//! offline, with no dispatcher running — `--stats` adds the per-phase
//! latency percentile table, under the same metric names a live
//! `/metrics` scrape uses.
//!
//! `--metrics-addr ADDR` serves `GET /metrics` (Prometheus text) and
//! `GET /healthz` off the running dispatcher; `jets top --metrics ADDR`
//! polls that endpoint and renders a one-screen cluster snapshot. See
//! `docs/observability.md`.

use cluster_sim::{science_registry, Allocation, AllocationConfig};
use jets_cli::prom::Scrape;
use jets_cli::{parse_args, Args};
use jets_core::{stats, Dispatcher, DispatcherConfig, EventKind, JobStatus};
use jets_obs::Histogram;
use jets_worker::Executor;
use std::collections::HashSet;
use std::io::BufReader;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("events") {
        let args = parse_args(argv.into_iter().skip(1), &["in", "nodes", "step-ms"]);
        events_main(&args);
    }
    if argv.first().map(String::as_str) == Some("top") {
        let args = parse_args(argv.into_iter().skip(1), &["metrics", "interval-ms"]);
        top_main(&args);
    }
    let args = parse_args(
        argv,
        &["listen", "simulate", "timeout", "events-out", "metrics-addr"],
    );
    let Some(taskfile) = args.positional.first() else {
        eprintln!(
            "usage: jets TASKFILE [--listen ADDR] [--simulate N] [--timeout SECS] [--events-out FILE] [--metrics-addr ADDR]\n       jets events --in FILE [--nodes N] [--step-ms MS] [--stats]\n       jets top --metrics ADDR [--interval-ms MS] [--once]"
        );
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(taskfile) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("jets: cannot read {taskfile}: {e}");
            std::process::exit(2);
        }
    };
    let config = DispatcherConfig {
        bind_addr: args.get("listen").unwrap_or("127.0.0.1:0").to_string(),
        ..DispatcherConfig::default()
    };
    let dispatcher = match Dispatcher::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("jets: cannot start dispatcher: {e}");
            std::process::exit(1);
        }
    };
    println!("jets: dispatcher listening on {}", dispatcher.addr());
    if let Some(addr) = args.get("metrics-addr") {
        match dispatcher.serve_metrics(addr) {
            Ok(local) => println!("jets: serving http://{local}/metrics"),
            Err(e) => {
                eprintln!("jets: cannot serve metrics on {addr}: {e}");
                std::process::exit(1);
            }
        }
    }

    let simulate: u32 = args.get_parse("simulate", 0);
    let allocation = if simulate > 0 {
        println!("jets: booting {simulate} simulated workers");
        Some(Allocation::start(
            &dispatcher.addr().to_string(),
            AllocationConfig::new(simulate),
            Arc::new(Executor::new(science_registry())),
        ))
    } else {
        println!(
            "jets: waiting for external workers (start jets-worker --dispatcher {})",
            dispatcher.addr()
        );
        None
    };

    let ids = match dispatcher.submit_input(&text) {
        Ok(ids) => ids,
        Err(e) => {
            eprintln!("jets: {taskfile}: {e}");
            std::process::exit(2);
        }
    };
    println!("jets: submitted {} jobs", ids.len());

    let timeout = Duration::from_secs(args.get_parse("timeout", 3600));
    if !dispatcher.wait_idle(timeout) {
        eprintln!(
            "jets: timed out after {timeout:?} with {} jobs outstanding",
            dispatcher.outstanding()
        );
        std::process::exit(1);
    }
    let mut ok = 0usize;
    let mut failed = 0usize;
    for id in &ids {
        match dispatcher.job_record(*id).map(|r| r.status) {
            Some(JobStatus::Succeeded) => ok += 1,
            _ => failed += 1,
        }
    }
    println!("jets: {ok} succeeded, {failed} failed");
    dispatcher.shutdown();
    if let Some(alloc) = allocation {
        alloc.join_all();
    }
    if let Some(path) = args.get("events-out") {
        match std::fs::File::create(path) {
            Ok(mut file) => match dispatcher.events().write_jsonl(&mut file) {
                Ok(()) => println!("jets: wrote {} events to {path}", dispatcher.events().len()),
                Err(e) => eprintln!("jets: cannot write events to {path}: {e}"),
            },
            Err(e) => eprintln!("jets: cannot create {path}: {e}"),
        }
    }
    std::process::exit(if failed == 0 { 0 } else { 1 });
}

/// `jets events --in FILE`: recompute run statistics from a JSONL event
/// dump, offline.
fn events_main(args: &Args) -> ! {
    let Some(path) = args.get("in") else {
        eprintln!("usage: jets events --in FILE [--nodes N] [--step-ms MS]");
        std::process::exit(2);
    };
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("jets: cannot open {path}: {e}");
            std::process::exit(2);
        }
    };
    let events = match jets_core::read_jsonl(BufReader::new(file)) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("jets: {path}: {e}");
            std::process::exit(2);
        }
    };
    if events.is_empty() {
        println!("jets: {path}: empty event log");
        std::process::exit(0);
    }
    let span = events.last().map(|e| e.t).unwrap_or_default();
    // Allocation size: given, or inferred as the distinct workers seen.
    let nodes = {
        let given: usize = args.get_parse("nodes", 0);
        if given > 0 {
            given
        } else {
            let mut seen = HashSet::new();
            for e in &events {
                if let EventKind::WorkerUp { worker } = &e.kind {
                    seen.insert(*worker);
                }
            }
            seen.len()
        }
    };
    let step = Duration::from_millis(args.get_parse("step-ms", 1000u64));
    println!(
        "jets: {path}: {} events over {:.3}s",
        events.len(),
        span.as_secs_f64()
    );
    println!("  allocation size: {nodes}");
    let done = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TaskEnded { .. }))
        .count();
    println!("  tasks ended:     {done}");
    if nodes > 0 {
        println!(
            "  utilization:     {:.1}%",
            100.0 * stats::measured_utilization(&events, nodes)
        );
    }
    let load = stats::load_series(&events, step);
    if let Some(peak) = load.iter().max_by_key(|s| s.busy_ranks) {
        println!(
            "  peak load:       {} tasks / {} busy ranks at t={:.1}s",
            peak.running_tasks,
            peak.busy_ranks,
            peak.t.as_secs_f64()
        );
    }
    let avail = stats::availability_series(&events, step);
    if let (Some(min), Some(max)) = (
        avail.iter().map(|s| s.alive).min(),
        avail.iter().map(|s| s.alive).max(),
    ) {
        println!("  workers alive:   min {min}, max {max}");
    }
    if args.has_flag("stats") {
        print_phase_stats(&events);
    }
    std::process::exit(0);
}

/// `jets events --stats`: per-phase latency percentiles by job size,
/// computed from `JobPhases` records through the same histogram type
/// (and under the same metric name) a live `/metrics` scrape uses.
fn print_phase_stats(events: &[jets_core::Event]) {
    use std::collections::BTreeMap;

    struct SizeRow {
        jobs: u64,
        queue: Histogram,
        launch: Histogram,
        run: Histogram,
    }
    let mut by_size: BTreeMap<u32, SizeRow> = BTreeMap::new();
    for e in events {
        if let EventKind::JobPhases {
            nodes,
            queue_us,
            launch_us,
            run_us,
            ..
        } = &e.kind
        {
            let row = by_size.entry(*nodes).or_insert_with(|| SizeRow {
                jobs: 0,
                queue: Histogram::new(),
                launch: Histogram::new(),
                run: Histogram::new(),
            });
            row.jobs += 1;
            row.queue.record(*queue_us);
            row.launch.record(*launch_us);
            row.run.record(*run_us);
        }
    }
    if by_size.is_empty() {
        println!("  no JobPhases records (log predates lifecycle tracing)");
        return;
    }
    let fmt = |s: &jets_obs::HistogramSnapshot| {
        format!(
            "{:.6}/{:.6}/{:.6}",
            s.p50 as f64 / 1e6,
            s.p95 as f64 / 1e6,
            s.p99 as f64 / 1e6
        )
    };
    println!(
        "  {} p50/p95/p99 by job size (seconds):",
        jets_core::metrics::JOB_PHASE_METRIC
    );
    println!(
        "  {:>5} {:>6}  {:<28} {:<28} {:<28}",
        "nodes", "jobs", "queue", "launch", "run"
    );
    for (nodes, row) in &by_size {
        println!(
            "  {:>5} {:>6}  {:<28} {:<28} {:<28}",
            nodes,
            row.jobs,
            fmt(&row.queue.snapshot()),
            fmt(&row.launch.snapshot()),
            fmt(&row.run.snapshot())
        );
    }
}

/// `jets top`: poll a `/metrics` endpoint and render a one-screen
/// snapshot of the dispatcher.
fn top_main(args: &Args) -> ! {
    let Some(addr) = args.get("metrics") else {
        eprintln!("usage: jets top --metrics ADDR [--interval-ms MS] [--once]");
        std::process::exit(2);
    };
    let interval = Duration::from_millis(args.get_parse("interval-ms", 1000u64));
    let once = args.has_flag("once");
    scrape_loop(addr, interval, once);
}

/// The polling loop behind `jets top`. Never panics: a failed scrape is
/// reported and retried (`--once` turns it into a nonzero exit).
fn scrape_loop(addr: &str, interval: Duration, once: bool) -> ! {
    let mut tick = 0u64;
    loop {
        tick += 1;
        match jets_obs::scrape(addr, "/metrics") {
            Ok(text) => {
                let scrape = Scrape::parse(&text);
                if !once {
                    // Clear and home, terminal-top style.
                    print!("\x1b[2J\x1b[H");
                }
                render_top(addr, tick, &scrape);
            }
            Err(e) => {
                eprintln!("jets top: scrape {addr} failed: {e}");
                if once {
                    std::process::exit(1);
                }
            }
        }
        if once {
            std::process::exit(0);
        }
        std::thread::sleep(interval);
    }
}

/// Print one `jets top` frame from a parsed scrape.
fn render_top(addr: &str, tick: u64, s: &Scrape) {
    let v = |name: &str| s.value(name).unwrap_or(0.0);
    println!("jets top — {addr} (scrape #{tick})");
    println!();
    println!(
        "  jobs     submitted {:>8}  completed {:>8}  failed {:>6}  requeued {:>6}",
        v("jets_jobs_submitted_total"),
        v("jets_jobs_completed_total"),
        v("jets_jobs_failed_total"),
        v("jets_jobs_requeued_total"),
    );
    println!(
        "  queue    depth {:>8}      running gangs {:>6}",
        v("jets_queue_depth"),
        v("jets_running_gangs"),
    );
    println!(
        "  workers  alive {:>6}  ready {:>6}  busy {:>6}  quarantined {:>4}  relays {:>4}",
        v("jets_workers_alive"),
        v("jets_workers_ready"),
        v("jets_workers_busy"),
        v("jets_quarantined_current"),
        v("jets_relays_current"),
    );
    println!(
        "  faults   reconnects {:>6}  deadline-exceeded {:>6}",
        v("jets_reconnects_total"),
        v("jets_deadline_exceeded_total"),
    );
    println!();
    println!("  phase latency (seconds)        p50         p95         p99");
    for phase in jets_core::metrics::JOB_PHASES {
        let q = s.quantiles(jets_core::metrics::JOB_PHASE_METRIC, "phase", phase);
        let get = |k: &str| q.get(k).copied().unwrap_or(0.0);
        println!(
            "    {:<8} {:>21.6} {:>11.6} {:>11.6}",
            phase,
            get("0.5"),
            get("0.95"),
            get("0.99"),
        );
    }
}
