//! The stand-alone `jets` tool (paper Section 5.1).
//!
//! ```text
//! jets TASKFILE [--listen ADDR] [--simulate N] [--timeout SECS]
//! ```
//!
//! Reads a task list (`MPI: <nodes> [ppn=<k>] cmd args...` or bare
//! command lines), starts the dispatcher, and runs the batch on whatever
//! workers connect. `--simulate N` boots N in-process worker agents with
//! the standard + science application registries, so a batch of builtin
//! (`@`-prefixed) tasks runs with no external setup.

use cluster_sim::{science_registry, Allocation, AllocationConfig};
use jets_cli::parse_args;
use jets_core::{Dispatcher, DispatcherConfig, JobStatus};
use jets_worker::Executor;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args = parse_args(std::env::args().skip(1), &["listen", "simulate", "timeout"]);
    let Some(taskfile) = args.positional.first() else {
        eprintln!("usage: jets TASKFILE [--listen ADDR] [--simulate N] [--timeout SECS]");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(taskfile) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("jets: cannot read {taskfile}: {e}");
            std::process::exit(2);
        }
    };
    let config = DispatcherConfig {
        bind_addr: args.get("listen").unwrap_or("127.0.0.1:0").to_string(),
        ..DispatcherConfig::default()
    };
    let dispatcher = match Dispatcher::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("jets: cannot start dispatcher: {e}");
            std::process::exit(1);
        }
    };
    println!("jets: dispatcher listening on {}", dispatcher.addr());

    let simulate: u32 = args.get_parse("simulate", 0);
    let allocation = if simulate > 0 {
        println!("jets: booting {simulate} simulated workers");
        Some(Allocation::start(
            &dispatcher.addr().to_string(),
            AllocationConfig::new(simulate),
            Arc::new(Executor::new(science_registry())),
        ))
    } else {
        println!("jets: waiting for external workers (start jets-worker --dispatcher {})", dispatcher.addr());
        None
    };

    let ids = match dispatcher.submit_input(&text) {
        Ok(ids) => ids,
        Err(e) => {
            eprintln!("jets: {taskfile}: {e}");
            std::process::exit(2);
        }
    };
    println!("jets: submitted {} jobs", ids.len());

    let timeout = Duration::from_secs(args.get_parse("timeout", 3600));
    if !dispatcher.wait_idle(timeout) {
        eprintln!("jets: timed out after {timeout:?} with {} jobs outstanding", dispatcher.outstanding());
        std::process::exit(1);
    }
    let mut ok = 0usize;
    let mut failed = 0usize;
    for id in &ids {
        match dispatcher.job_record(*id).map(|r| r.status) {
            Some(JobStatus::Succeeded) => ok += 1,
            _ => failed += 1,
        }
    }
    println!("jets: {ok} succeeded, {failed} failed");
    dispatcher.shutdown();
    if let Some(alloc) = allocation {
        alloc.join_all();
    }
    std::process::exit(if failed == 0 { 0 } else { 1 });
}
